//! Noise robustness analysis: how sensor noise, VTC non-idealities,
//! supply jitter and random jitter each degrade a pyrDown convolution —
//! plus the behavioural starved-inverter VTC's deviation from the ideal
//! negative-log transfer.
//!
//! ```sh
//! cargo run --release --example noise_analysis
//! ```

use temporal_conv::circuits::{NoiseModel, StarvedInverterVtc, UnitScale};
use temporal_conv::core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use temporal_conv::image::{conv, metrics, synth, Kernel};

const SIZE: usize = 80;

fn run_with(cfg: ArchConfig, seed: u64) -> Result<f64, Box<dyn std::error::Error>> {
    let image = synth::natural_image(SIZE, SIZE, 55);
    let desc = SystemDescription::new(SIZE, SIZE, vec![Kernel::pyr_down_5x5()], 2)?;
    let arch = Architecture::new(desc, cfg)?;
    let run = exec::run(&arch, &image, ArithmeticMode::DelayApproxNoisy, seed)?;
    let reference = conv::convolve(&image, &Kernel::pyr_down_5x5(), 2);
    Ok(metrics::normalized_rmse(&run.outputs[0], &reference))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = ArchConfig::fast_1ns(10, 20);
    println!("pyrDown, {SIZE}×{SIZE}, (1 ns, 10 max-terms); normalised RMSE per noise source\n");

    let ideal = ArchConfig::fast_1ns(10, 20).with_noise(NoiseModel::ideal());
    println!(
        "{:<42} {:.4}",
        "approximation only (no noise)",
        run_with(ideal, 1)?
    );
    println!(
        "{:<42} {:.4}",
        "baseline (RJ + PSIJ at 10 mV)",
        run_with(base.clone(), 1)?
    );

    for swing in [50.0, 100.0, 200.0] {
        let cfg = ArchConfig::fast_1ns(10, 20).with_noise(NoiseModel::asplos24(swing));
        println!(
            "{:<42} {:.4}",
            format!("V_DD swing {swing:.0} mV"),
            run_with(cfg, 1)?
        );
    }

    for pre in [0.05, 0.15, 0.30] {
        let cfg = base.clone().with_vtc_noise(pre, 0.0);
        println!(
            "{:<42} {:.4}",
            format!("sensor noise σ = {:.0}% of range", pre * 100.0),
            run_with(cfg, 1)?
        );
    }

    for post in [0.1, 0.3, 0.5] {
        let cfg = base.clone().with_vtc_noise(0.0, post);
        println!(
            "{:<42} {:.4}",
            format!("VTC timing noise σ = {post} ns"),
            run_with(cfg, 1)?
        );
    }

    // The starved-inverter transfer curve (Fig 8a) vs the ideal -ln.
    println!("\nstarved-inverter VTC calibration (behavioural model of Fig 8a):");
    for unit_ns in [1.0, 5.0] {
        let si = StarvedInverterVtc::calibrated(UnitScale::new(unit_ns, 50.0));
        println!(
            "  {unit_ns} ns/unit: worst deviation from -ln over the dynamic range = {:.3} units",
            si.max_deviation_units()
        );
    }
    println!("\npost-VTC noise lives in the log domain — its importance-space impact is\nexponential, which is why the 0.5 ns row degrades so much faster (§5.4).");
    Ok(())
}
