//! Edge detection with temporal arithmetic: runs the Sobel pair through
//! the delay-space engine on a synthetic scene, renders the detected edges
//! as ASCII art, and compares all four arithmetic modes.
//!
//! ```sh
//! cargo run --release --example edge_detection
//! ```

use temporal_conv::core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use temporal_conv::image::{conv, metrics, synth, Image, Kernel};

const SIZE: usize = 96;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = synth::natural_image(SIZE, SIZE, 7);
    let kernels = vec![Kernel::sobel_x(), Kernel::sobel_y()];
    let desc = SystemDescription::new(SIZE, SIZE, kernels.clone(), 1)?;
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20))?;

    let references: Vec<Image> = kernels
        .iter()
        .map(|k| conv::convolve(&image, k, 1))
        .collect();

    println!("Sobel edge detection, {SIZE}×{SIZE} frame, (1 ns, 7 max-terms, 20 inhibit-terms)\n");
    println!(
        "{:<20} {:>12} {:>12}",
        "arithmetic mode", "gx RMSE", "gy RMSE"
    );
    let mut final_run = None;
    for mode in ArithmeticMode::ALL {
        let run = exec::run(&arch, &image, mode, 7)?;
        let errs = run.normalized_rmse(&references);
        println!(
            "{:<20} {:>12.6} {:>12.6}",
            mode.to_string(),
            errs[0],
            errs[1]
        );
        if mode == ArithmeticMode::DelayApproxNoisy {
            final_run = Some(run);
        }
    }
    let run = final_run.expect("noisy mode runs last");

    // Gradient magnitude from the temporal outputs, as ASCII art.
    let gx = &run.outputs[0];
    let gy = &run.outputs[1];
    let mag = Image::from_fn(gx.width(), gx.height(), |x, y| {
        (gx.get(x, y).powi(2) + gy.get(x, y).powi(2)).sqrt()
    });
    let (_, hi) = mag.min_max();
    println!("\nedge magnitude (temporal engine output):");
    let shades = [' ', '.', ':', '+', '#', '@'];
    for y in (0..mag.height()).step_by(2) {
        let mut line = String::new();
        for x in (0..mag.width()).step_by(1) {
            let level = (mag.get(x, y) / hi * (shades.len() - 1) as f64).round() as usize;
            line.push(shades[level.min(shades.len() - 1)]);
        }
        println!("{line}");
    }

    // Same scene, reference edges, for eyeballing agreement.
    let rmag = Image::from_fn(gx.width(), gx.height(), |x, y| {
        (references[0].get(x, y).powi(2) + references[1].get(x, y).powi(2)).sqrt()
    });
    println!(
        "\nmagnitude-map agreement with software Sobel: {:.4} normalised RMSE",
        metrics::normalized_rmse(&mag, &rmag)
    );
    println!("frame energy: {}", run.energy);
    println!("timing:       {}", run.timing);
    Ok(())
}
