//! Interactive-scale design-space exploration: sweeps term counts and
//! unit scales for a kernel of your choice and prints the Pareto frontier
//! (a miniature of the paper's Fig 12 study).
//!
//! ```sh
//! cargo run --release --example design_explorer [sobel|pyrdown|gauss]
//! ```

use temporal_conv::core::dse::{explore, SweepGrid};
use temporal_conv::core::SystemDescription;
use temporal_conv::image::{synth, Kernel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "sobel".into());
    let (kernels, stride) = match which.as_str() {
        "pyrdown" => (vec![Kernel::pyr_down_5x5()], 2),
        "gauss" => (vec![Kernel::gaussian(7, 0.0)], 1),
        _ => (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1),
    };
    println!("exploring {} (stride {stride})\n", kernels[0].name());

    let size = 72;
    let desc = SystemDescription::new(size, size, kernels, stride)?;
    let images = vec![
        synth::natural_image(size, size, 100),
        synth::natural_image(size, size, 101),
    ];
    let grid = SweepGrid {
        nlse_terms: vec![5, 7, 10, 15],
        nlde_terms: vec![10, 20],
        unit_scales_ns: vec![1.0, 5.0, 10.0],
        element_multiplier: 50.0,
        seed: 9,
    };
    let mut points = explore(&desc, &images, &grid)?;
    points.sort_by(|a, b| a.energy_uj.total_cmp(&b.energy_uj));

    println!(
        "{:>9} {:>6} {:>6} {:>12} {:>9}  pareto",
        "unit (ns)", "nLSE", "nLDE", "energy (µJ)", "RMSE"
    );
    for p in &points {
        println!(
            "{:>9.0} {:>6} {:>6} {:>12.2} {:>9.4}  {}",
            p.unit_ns,
            p.nlse_terms,
            p.nlde_terms,
            p.energy_uj,
            p.rmse,
            if p.pareto { "◆" } else { "" }
        );
    }

    let best = points
        .iter()
        .filter(|p| p.pareto)
        .min_by(|a, b| a.rmse.total_cmp(&b.rmse))
        .expect("frontier is never empty");
    println!(
        "\nmost accurate frontier point: ({:.0} ns, {} nLSE terms, {} nLDE terms) at {:.2} µJ, RMSE {:.4}",
        best.unit_ns, best.nlse_terms, best.nlde_terms, best.energy_uj, best.rmse
    );
    Ok(())
}
