//! The classic race-logic computations that pre-date delay-space
//! arithmetic (paper §2): sorting by racing edges, dynamic-programming
//! shortest paths as a propagating wavefront, and decision-tree inference
//! with inhibit gates — all without a single arithmetic unit.
//!
//! ```sh
//! cargo run --release --example race_logic_classics
//! ```

use temporal_conv::delay_space::DelayValue;
use temporal_conv::race_logic::apps::{
    decision_tree_circuit, decision_tree_infer, grid_shortest_path, grid_shortest_path_reference,
    sort_times, sorting_circuit, TreeNode,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Sorting: min/max comparators are just OR/AND gates on edges.
    let times = [4.2, 1.1, 3.3, 0.7, 2.5, 0.9];
    let sorted = sort_times(&times)?;
    println!("temporal sorting network (fa/la compare-exchanges):");
    println!("  in : {times:?}");
    println!("  out: {sorted:?}");
    let stats = sorting_circuit(times.len())?.stats();
    println!(
        "  hardware: {} OR + {} AND gates, 0 delay elements, 0 arithmetic\n",
        stats.fa_gates, stats.la_gates
    );

    // 2. Shortest path: the wavefront reaches the goal exactly when the
    //    cheapest path cost has elapsed (Madhavan et al., ISCA '14).
    let (w, h) = (5, 4);
    #[rustfmt::skip]
    let costs = vec![
        1.0, 1.0, 8.0, 8.0, 8.0,
        8.0, 1.0, 1.0, 8.0, 8.0,
        8.0, 8.0, 1.0, 1.0, 8.0,
        8.0, 8.0, 8.0, 1.0, 1.0,
    ];
    let circuit = grid_shortest_path(w, h, &costs);
    let goal = circuit.evaluate(&[DelayValue::from_delay(0.0)])?[0];
    println!("grid shortest-path DP as a racing wavefront ({w}×{h}):");
    println!(
        "  goal edge fires at t = {:.1}  (software DP: {:.1})",
        goal.delay(),
        grid_shortest_path_reference(w, h, &costs)
    );
    println!(
        "  {} fa gates, {} delay elements\n",
        circuit.stats().fa_gates,
        circuit.stats().delay_elements
    );

    // 3. Decision-tree inference with inhibit gates (Tzimpragos et al.,
    //    ASPLOS '19): thresholds are reference edges, branches are races.
    let tree = TreeNode::Split {
        index: 0,
        threshold: 2.0,
        lt: Box::new(TreeNode::Leaf { class: 0 }),
        ge: Box::new(TreeNode::Split {
            index: 1,
            threshold: 3.0,
            lt: Box::new(TreeNode::Leaf { class: 1 }),
            ge: Box::new(TreeNode::Leaf { class: 2 }),
        }),
    };
    let classifier = decision_tree_circuit(&tree);
    println!("temporal decision tree (features as edge times):");
    for features in [[1.0, 0.0], [3.0, 1.0], [3.0, 4.5]] {
        println!(
            "  features {features:?} → class {}",
            decision_tree_infer(&classifier, &features)?
        );
    }
    println!(
        "  hardware: {} inhibit cells, {} fa, {} la — comparisons without subtraction",
        classifier.stats().inhibit_cells,
        classifier.stats().fa_gates,
        classifier.stats().la_gates
    );
    println!("\nthe paper's contribution starts where these end: adding *arithmetic*\n(multiply, add, subtract) to this gate repertoire via the delay-space encoding.");
    Ok(())
}
