//! Quickstart: a tour of delay-space arithmetic and the convolution
//! engine in ~60 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use temporal_conv::core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use temporal_conv::delay_space::{ops, DelayValue, SplitValue};
use temporal_conv::image::{conv, metrics, synth, Kernel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The encoding: x' = -ln(x). Bigger values arrive earlier.
    let a = DelayValue::encode(0.25)?;
    let b = DelayValue::encode(0.5)?;
    println!("0.25 encodes to a delay of {:.4} units", a.delay());
    println!(
        "0.50 encodes to a delay of {:.4} units (earlier!)",
        b.delay()
    );

    // 2. Multiplication is delay addition; addition is nLSE.
    println!("0.25 × 0.5  = {:.4}  (delays add)", (a + b).decode());
    println!(
        "0.25 + 0.5  = {:.4}  (negative log-sum-exp)",
        ops::nlse(a, b).decode()
    );

    // 3. Signed values ride dual rails; one nLDE renormalises at the end.
    let p = SplitValue::encode_signed(0.8)?;
    let n = SplitValue::encode_signed(-0.3)?;
    println!(
        "0.8 + (-0.3) = {:.4}  (split rails)",
        (p + n).normalize().decode_signed()
    );

    // 4. Hardware approximates nLSE with min/max/delay only.
    let approx = temporal_conv::approx::NlseApprox::fit(7);
    println!(
        "7 max-term hardware: 0.25 + 0.5 ≈ {:.4} (minimax slice error {:.4})",
        approx.eval(a, b).decode(),
        approx.max_slice_error()
    );

    // 5. A full rolling-shutter convolution engine.
    let image = synth::natural_image(64, 64, 42);
    let desc = SystemDescription::new(64, 64, vec![Kernel::sobel_x()], 1)?;
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20))?;
    let run = exec::run(&arch, &image, ArithmeticMode::DelayApproxNoisy, 42)?;
    let reference = conv::convolve(&image, &Kernel::sobel_x(), 1);
    println!(
        "\nSobel-x on a 64×64 frame through the temporal engine:\n  accuracy : {:.4} normalised RMSE vs software convolution\n  energy   : {}\n  timing   : {}",
        metrics::normalized_rmse(&run.outputs[0], &reference),
        run.energy,
        run.timing,
    );
    Ok(())
}
