//! Inspecting a temporal netlist: build the shared-chain nLSE unit of
//! Fig 6b at gate level, watch its edges race through a traced
//! evaluation, and export the netlist as Graphviz DOT.
//!
//! ```sh
//! cargo run --release --example inspect_circuit
//! cargo run --release --example inspect_circuit -- --dot > nlse.dot   # then: dot -Tsvg nlse.dot
//! ```

use temporal_conv::approx::NlseApprox;
use temporal_conv::delay_space::DelayValue;
use temporal_conv::race_logic::blocks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let approx = NlseApprox::fit(3);
    let k = approx.required_shift();
    let circuit = blocks::nlse_circuit(approx.terms(), k, true)?;

    if std::env::args().any(|a| a == "--dot") {
        print!("{}", circuit.to_dot());
        return Ok(());
    }

    println!(
        "3 max-term shared-chain nLSE unit (Fig 6b): K = {k:.3} units, {} gates, {} delay elements ({:.2}u of line)\n",
        {
            let s = circuit.stats();
            s.fa_gates + s.la_gates
        },
        circuit.stats().delay_elements,
        circuit.stats().total_delay_units,
    );

    // Adding 0.4 + 0.3 in delay space: x' = -ln(0.4), y' = -ln(0.3).
    let (a, b) = (0.4, 0.3);
    let x = DelayValue::encode(a)?;
    let y = DelayValue::encode(b)?;
    let (outs, trace) = circuit.evaluate_traced(&[x, y])?;

    println!(
        "computing {a} + {b}: inputs fire at {:.3}u and {:.3}u\n",
        x.delay(),
        y.delay()
    );
    println!("{}", trace.render(56));

    let result = outs[0].delayed(-k);
    println!(
        "output edge at {:.3}u; minus the K shift: {:.3}u, decoding to {:.4} (exact: {})",
        outs[0].delay(),
        result.delay(),
        result.decode(),
        a + b
    );
    println!("\ntip: `--dot` emits the netlist for graphviz.");
    Ok(())
}
