//! A two-stage temporal image pipeline: pyrDown (blur + 2× downsample)
//! followed by a Gaussian blur — demonstrating the paper's closing point
//! that keeping intermediate results in the temporal domain avoids the
//! time-to-digital conversion cost between stages.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use temporal_conv::circuits::TdcModel;
use temporal_conv::core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use temporal_conv::image::{conv, metrics, synth, Kernel};

const SIZE: usize = 128;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = synth::natural_image(SIZE, SIZE, 21);

    // Stage 1: pyrDown (5×5 binomial, stride 2).
    let pyr = Kernel::pyr_down_5x5();
    let desc1 = SystemDescription::new(SIZE, SIZE, vec![pyr.clone()], 2)?;
    let arch1 = Architecture::new(desc1, ArchConfig::fast_1ns(10, 20))?;
    let stage1 = exec::run(&arch1, &image, ArithmeticMode::DelayApproxNoisy, 1)?;
    let half = stage1.outputs[0].clamped(0.0, 1.0);
    println!(
        "stage 1 (pyrDown): {}×{} → {}×{}, energy {}",
        SIZE,
        SIZE,
        half.width(),
        half.height(),
        stage1.energy
    );

    // Stage 2: GaussianBlur (7×7) on the downsampled frame.
    let gauss = Kernel::gaussian(7, 0.0);
    let desc2 = SystemDescription::new(half.width(), half.height(), vec![gauss.clone()], 1)?;
    let arch2 = Architecture::new(desc2.clone(), ArchConfig::fast_1ns(10, 20))?;
    let stage2 = exec::run(&arch2, &half, ArithmeticMode::DelayApproxNoisy, 2)?;
    println!(
        "stage 2 (GaussianBlur): output {}×{}, energy {}",
        stage2.outputs[0].width(),
        stage2.outputs[0].height(),
        stage2.energy
    );

    // Accuracy against the all-software pipeline.
    let sw1 = conv::convolve(&image, &pyr, 2).clamped(0.0, 1.0);
    let sw2 = conv::convolve(&sw1, &gauss, 1);
    println!(
        "pipeline accuracy vs software: {:.4} normalised RMSE",
        metrics::normalized_rmse(&stage2.outputs[0], &sw2)
    );

    // The temporal-domain payoff: digitising between stages costs one TDC
    // conversion per pixel per stage (Table 3's accounting).
    let arch1_tdc = Architecture::new(
        SystemDescription::new(SIZE, SIZE, vec![pyr], 2)?,
        ArchConfig::fast_1ns(10, 20).with_tdc(TdcModel::asplos24()),
    )?;
    let arch2_tdc = Architecture::new(
        desc2,
        ArchConfig::fast_1ns(10, 20).with_tdc(TdcModel::asplos24()),
    )?;
    let temporal = stage1.energy.total_uj() + stage2.energy.total_uj();
    let digitised =
        arch1_tdc.energy_per_frame().total_uj() + arch2_tdc.energy_per_frame().total_uj();
    println!(
        "\nstaying temporal between stages: {temporal:.2} µJ\ndigitising after each stage:     {digitised:.2} µJ  ({:.1}% more)",
        (digitised / temporal - 1.0) * 100.0
    );
    Ok(())
}
