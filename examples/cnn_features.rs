//! A small temporal CNN feature extractor — the paper's closing
//! suggestion ("more convolutional layers or min/max selections" in the
//! temporal domain) made concrete: Sobel features → free dual-rail ReLU →
//! first-arrival max-pool → a smoothing convolution, with per-layer energy.
//!
//! ```sh
//! cargo run --release --example cnn_features
//! ```

use temporal_conv::core::{ArchConfig, ArithmeticMode};
use temporal_conv::image::{synth, Kernel};
use temporal_conv::nn::{Layer, TemporalConv2d, TemporalNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = TemporalNetwork::new(vec![
        // Layer 0: 1 input channel → 2 edge-feature channels.
        Layer::Conv(TemporalConv2d::new(
            vec![vec![Kernel::sobel_x()], vec![Kernel::sobel_y()]],
            1,
            ArchConfig::fast_1ns(7, 20),
        )?),
        // Layer 1: ReLU — free: the dual-rail positive wire *is* max(x,0).
        Layer::Relu,
        // Layer 2: 2×2 max-pool — one first-arrival (OR) gate per output.
        Layer::MaxPool2,
        // Layer 3: fuse the two edge channels with a smoothing kernel and
        // a small bias (one constant reference edge in hardware).
        Layer::Conv(
            TemporalConv2d::new(
                vec![vec![Kernel::gaussian(3, 0.8), Kernel::gaussian(3, 0.8)]],
                1,
                ArchConfig::fast_1ns(7, 20),
            )?
            .with_bias(vec![0.05]),
        ),
    ]);

    let input = vec![synth::natural_image(96, 96, 33)];
    println!("input: 96×96 grayscale frame, 1 channel\n");

    for mode in [ArithmeticMode::DelayExact, ArithmeticMode::DelayApproxNoisy] {
        let out = net.forward(&input, mode, 17)?;
        println!("mode {mode}:");
        println!(
            "  output: {} channel(s) of {}×{}",
            out.features.len(),
            out.features[0].width(),
            out.features[0].height()
        );
        let names = ["conv Sobel×2", "ReLU", "max-pool 2×2", "conv fuse"];
        for (name, e) in names.iter().zip(&out.per_layer_energy) {
            println!("  {name:<14} {:.4} µJ", e.total_uj());
        }
        println!("  total          {:.4} µJ", out.energy.total_uj());
        let (lo, hi) = out.features[0].min_max();
        println!("  feature range  [{lo:.3}, {hi:.3}]\n");
    }

    // Average pooling, for contrast, pays real nLSE energy (division is a
    // free ln(n) delay, but the window sum is an accumulation tree).
    let avg_variant = TemporalNetwork::new(vec![Layer::AvgPool2]);
    let pooled = avg_variant.forward(&input, ArithmeticMode::DelayExact, 0)?;
    println!(
        "for contrast, a 2×2 avg-pool of the raw frame: {}×{}, {:.4} µJ (nLSE tree + ln4 delay)\n",
        pooled.features[0].width(),
        pooled.features[0].height(),
        pooled.energy.total_uj()
    );

    println!("ReLU and pooling cost (almost) nothing: rectification drops a wire and");
    println!("max-pooling is a single OR gate racing four edges — the computations the");
    println!("temporal domain gets for free.");
    Ok(())
}
