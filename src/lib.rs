//! Umbrella crate for the `temporal-conv` workspace: energy-efficient
//! convolutions with temporal (delay-space) arithmetic.
//!
//! Re-exports every layer of the reproduction of Gretsch et al.,
//! *Energy Efficient Convolutions with Temporal Arithmetic* (ASPLOS 2024):
//!
//! * [`delay_space`] — the negative-log encoding and exact nLSE/nLDE ring.
//! * [`race_logic`] — temporal primitives and the netlist simulator.
//! * [`approx`] — min-of-max / min-of-inhibit approximations and the
//!   constant-fitting optimizer.
//! * [`circuits`] — delay elements, VTC/TDC, jitter and energy/area models.
//! * [`image`] — images, kernels, reference convolution, synthetic data.
//! * [`nn`] — temporal CNN layers (conv, free dual-rail ReLU, fa-gate pooling).
//! * [`baseline`] — the processing-in-pixel comparator model.
//! * [`core`] — the delay-space convolution architecture and simulator.
//! * [`experiments`] — drivers regenerating every paper table and figure.
//!
//! See `README.md` for a walkthrough and `examples/quickstart.rs` for the
//! fastest end-to-end tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ta_approx as approx;
pub use ta_baseline as baseline;
pub use ta_circuits as circuits;
pub use ta_core as core;
pub use ta_delay_space as delay_space;
pub use ta_experiments as experiments;
pub use ta_image as image;
pub use ta_nn as nn;
pub use ta_race_logic as race_logic;
