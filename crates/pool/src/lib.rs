//! Scoped work-stealing thread pool for the temporal-convolution stack
//! (DESIGN.md §5.10).
//!
//! The rolling-shutter frame kernel is embarrassingly parallel across
//! output rows and kernels, but the workspace is vendored-only: no rayon,
//! no crossbeam. This crate provides the minimum pool the hot path needs,
//! built from `std` alone:
//!
//! * **Chunked-index scheduling.** [`Pool::run`] splits the index range
//!   `0..n` into one contiguous chunk per worker. Each worker drains its
//!   own chunk through a shared atomic cursor, then steals from the other
//!   chunks' cursors until a full pass over every chunk yields nothing.
//!   Contiguous chunks keep cache locality on the common path; stealing
//!   bounds the tail when per-index cost is skewed.
//! * **Scoped execution.** Workers run under [`std::thread::scope`], so
//!   closures may borrow from the caller's stack and a worker panic is
//!   re-raised on the caller (no poisoned state, no lost panics). When
//!   several workers panic in one `run`, propagation is deterministic:
//!   every worker is joined first, the panic of the lowest-index
//!   panicking worker is re-raised, and the rest are counted in
//!   `ta_pool_suppressed_panics_total` and logged as
//!   `pool.panic_suppressed` trace events.
//! * **Per-worker accumulators.** `run` gives every worker a private
//!   accumulator from `init()` and returns all of them, so hot loops
//!   update plain locals and the caller merges once at join — the
//!   pattern `exec::run_delay` uses to keep profiling counters exact.
//! * **Determinism contract.** The pool guarantees each index in `0..n`
//!   is executed exactly once, but on an unspecified worker in an
//!   unspecified order. Work closures must therefore be pure functions
//!   of their index (plus shared read-only state): any RNG draws must
//!   come from a stream derived from the index, never from a stream
//!   shared across indices. Under that contract results are bit-identical
//!   at every thread count, which `ta-core`'s golden determinism tests
//!   enforce.
//! * **Nested calls inline.** A `Pool::run` issued from inside a pool
//!   worker (or a thread marked with [`enter_worker`]) executes serially
//!   on the calling thread, so layered parallelism (batch supervisor →
//!   frame engine) cannot oversubscribe the machine or deadlock.
//!
//! Telemetry: each parallel `run` sets the `ta_pool_queue_depth` gauge,
//! counts cross-chunk steals in `ta_pool_steals_total`, and records
//! per-worker busy time in the `ta_pool_worker_busy_seconds` histogram.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

/// Process-global thread-count override; 0 means "use
/// `available_parallelism`". Set once at startup by `tconv --threads`.
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Sets the process-global worker count used by [`Pool::current`].
/// `0` restores the default (`std::thread::available_parallelism`).
pub fn set_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

/// The raw configured thread count: `0` if no override is installed.
pub fn configured_threads() -> usize {
    CONFIGURED_THREADS.load(Ordering::Relaxed)
}

/// The effective default worker count: the [`set_threads`] override if
/// one is installed, otherwise `available_parallelism` (1 if unknown).
pub fn default_threads() -> usize {
    resolve(configured_threads())
}

fn resolve(requested: usize) -> usize {
    if requested != 0 {
        requested
    } else {
        thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// True when the current thread is executing inside a [`Pool::run`]
/// worker (or under an [`enter_worker`] guard). Nested pool calls test
/// this and fall back to inline serial execution.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// RAII marker that flags the current thread as a pool worker until the
/// guard drops. The pool installs it on every worker automatically; it is
/// public so code that hops to a fresh named thread mid-task (the
/// supervisor's watchdog attempt threads) can propagate the flag, keeping
/// the no-nested-parallelism guarantee across the hop.
pub struct WorkerGuard {
    was: bool,
}

/// Marks the current thread as a pool worker for the guard's lifetime.
/// See [`WorkerGuard`].
pub fn enter_worker() -> WorkerGuard {
    let was = IN_WORKER.with(|f| f.replace(true));
    WorkerGuard { was }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_WORKER.with(|f| f.set(was));
    }
}

/// A chunk of the index range: a claim cursor and an exclusive end.
/// `next` may overshoot `end` (every failed claim still increments it);
/// overshoot is harmless because claims test `i >= end`.
struct Chunk {
    next: AtomicUsize,
    end: usize,
}

/// A scoped work-stealing executor over the index range `0..n`.
///
/// `Pool` is a cheap value type — it holds only the worker count; all
/// threads are spawned per-[`run`](Pool::run) under `thread::scope`, so
/// there is no global executor state to shut down.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with `threads` workers; `0` means [`default_threads`].
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: resolve(threads),
        }
    }

    /// A pool sized from the process-global configuration
    /// ([`set_threads`], default `available_parallelism`).
    pub fn current() -> Self {
        Pool::new(0)
    }

    /// The worker count this pool will use for a sufficiently large run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `work(i, &mut acc)` for every `i` in `0..n`, each index
    /// exactly once, and returns the per-worker accumulators (one per
    /// worker that ran; a single accumulator on the serial path).
    ///
    /// Each worker starts from a private `init()` accumulator. Index
    /// order and index→worker assignment are unspecified, so `work` must
    /// be deterministic per index and accumulator merging must not
    /// depend on visit order (or must carry the index, as
    /// [`map`](Pool::map) does).
    ///
    /// Runs inline on the calling thread when only one worker is useful
    /// (`n <= 1`, `threads == 1`) or when called from inside another
    /// pool worker. A panic in any worker is re-raised on the caller.
    pub fn run<A, I, W>(&self, n: usize, init: I, work: W) -> Vec<A>
    where
        A: Send,
        I: Fn() -> A + Sync,
        W: Fn(usize, &mut A) + Sync,
    {
        let workers = self.threads.min(n).max(1);
        if workers == 1 || in_worker() {
            let mut acc = init();
            for i in 0..n {
                work(i, &mut acc);
            }
            return vec![acc];
        }

        let metrics = ta_telemetry::metrics();
        metrics.gauge("ta_pool_queue_depth").set(n as f64);
        let steals = AtomicUsize::new(0);
        let per = n.div_ceil(workers);
        let chunks: Vec<Chunk> = (0..workers)
            .map(|w| Chunk {
                next: AtomicUsize::new((w * per).min(n)),
                end: ((w + 1) * per).min(n),
            })
            .collect();

        let accs = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (chunks, steals) = (&chunks, &steals);
                    let (init, work) = (&init, &work);
                    s.spawn(move || {
                        let _guard = enter_worker();
                        let started = Instant::now();
                        let mut acc = init();
                        let mut stolen = 0usize;
                        // Drain own chunk, then sweep the others; stop
                        // once a full pass claims nothing.
                        loop {
                            let mut progressed = false;
                            for offset in 0..workers {
                                let victim = &chunks[(w + offset) % workers];
                                loop {
                                    let i = victim.next.fetch_add(1, Ordering::Relaxed);
                                    if i >= victim.end {
                                        break;
                                    }
                                    progressed = true;
                                    if offset != 0 {
                                        stolen += 1;
                                    }
                                    work(i, &mut acc);
                                }
                            }
                            if !progressed {
                                break;
                            }
                        }
                        steals.fetch_add(stolen, Ordering::Relaxed);
                        (acc, started.elapsed())
                    })
                })
                .collect();
            // Join *every* worker before re-raising anything: with the
            // short-circuiting `map(join → resume_unwind)` a panic on a
            // low-index worker unwound out of the scope body while later
            // workers were still running, and their panics were then
            // swallowed by the scope's implicit join (the body's payload
            // takes precedence). Collecting first makes propagation
            // deterministic: the panic of the lowest-index panicking
            // worker wins, every other panic is counted and logged as a
            // telemetry event, and the caller sees the same payload
            // regardless of thread scheduling.
            let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
            let mut results = Vec::with_capacity(workers);
            for (index, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(acc) => results.push(acc),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some((index, payload));
                        } else {
                            metrics.counter("ta_pool_suppressed_panics_total").inc();
                            ta_telemetry::tracer().event(
                                "pool.panic_suppressed",
                                vec![
                                    ("worker", (index as u64).into()),
                                    (
                                        "message",
                                        ta_telemetry::FieldValue::Str(panic_text(payload.as_ref())),
                                    ),
                                ],
                            );
                        }
                    }
                }
            }
            if let Some((index, payload)) = first_panic {
                ta_telemetry::tracer().event(
                    "pool.panic_propagated",
                    vec![("worker", (index as u64).into())],
                );
                resume_unwind(payload);
            }
            results
        });

        metrics.gauge("ta_pool_queue_depth").set(0.0);
        metrics
            .counter("ta_pool_steals_total")
            .add(steals.load(Ordering::Relaxed) as u64);
        let busy = metrics.histogram("ta_pool_worker_busy_seconds");
        accs.into_iter()
            .map(|(acc, elapsed)| {
                busy.observe_duration(elapsed);
                acc
            })
            .collect()
    }

    /// Applies `f` to every index in `0..n` in parallel and returns the
    /// results in index order, regardless of which worker computed each.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for pairs in self.run(n, Vec::new, |i, acc: &mut Vec<(usize, T)>| {
            acc.push((i, f(i)));
        }) {
            for (i, value) in pairs {
                slots[i] = Some(value);
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| unreachable!("pool skipped index {i}")))
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::current()
    }
}

/// Best-effort rendering of a panic payload for telemetry events.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_index_order_at_any_width() {
        let expect: Vec<u64> = (0..257u64).map(|i| i * i + 7).collect();
        for threads in [1, 2, 3, 8] {
            let got = Pool::new(threads).map(257, |i| (i as u64) * (i as u64) + 7);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let accs = Pool::new(8).run(
            n,
            || 0usize,
            |i, count| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                *count += 1;
            },
        );
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
        assert_eq!(accs.iter().sum::<usize>(), n);
    }

    #[test]
    fn skewed_work_is_stolen_not_serialized() {
        // Index 0 is enormously slower than the rest; the other workers
        // must finish the remaining indices regardless. (On a 1-core
        // host this still passes — it just runs serially.)
        let slow = AtomicU64::new(0);
        let sums = Pool::new(4).run(
            64,
            || 0u64,
            |i, acc| {
                if i == 0 {
                    for _ in 0..200_000 {
                        slow.fetch_add(1, Ordering::Relaxed);
                    }
                }
                *acc += i as u64;
            },
        );
        assert_eq!(sums.iter().sum::<u64>(), (0..64u64).sum());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let caught = std::panic::catch_unwind(|| {
            Pool::new(4).run(
                16,
                || (),
                |i, ()| {
                    if i == 9 {
                        panic!("boom at {i}");
                    }
                },
            );
        });
        assert!(caught.is_err());
    }

    #[test]
    fn multi_worker_panics_propagate_lowest_worker_index() {
        // Four workers, four chunks of 0..64; every chunk's first index
        // panics, carrying the claiming worker's chunk ownership in the
        // message. Whatever the thread scheduling, the caller must see
        // the panic of the lowest-index *worker* — the others are
        // suppressed and counted. A barrier would be nicer, but chunk 0's
        // first claimed index is always worker 0's own chunk start, so
        // pinning on the payload is sound: each worker claims its own
        // chunk's start before stealing.
        let m = ta_telemetry::metrics();
        let suppressed_before = m.counter("ta_pool_suppressed_panics_total").get();
        for trial in 0..8 {
            let caught = std::panic::catch_unwind(|| {
                Pool::new(4).run(
                    64,
                    || (),
                    |i, ()| {
                        if i % 16 == 0 {
                            // One panic per chunk: indices 0, 16, 32, 48.
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            panic!("chunk {} exploded", i / 16);
                        }
                    },
                );
            });
            let payload = match caught {
                Err(payload) => payload,
                Ok(()) => panic!("trial {trial}: the panic must propagate"),
            };
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(msg, "chunk 0 exploded", "trial {trial}: got {msg:?}");
        }
        // Suppressed panics were logged, not lost: 3 per trial whenever
        // all four chunk-owners reached their panic index. Stealing can
        // beat an owner to its chunk start, so only a lower bound is
        // deterministic — but with a 1 ms pre-panic sleep every trial has
        // all four workers panic in practice; require at least one trial's
        // worth to prove the accounting path runs.
        let suppressed_after = m.counter("ta_pool_suppressed_panics_total").get();
        assert!(
            suppressed_after >= suppressed_before + 3,
            "suppressed counter must advance: {suppressed_before} -> {suppressed_after}"
        );
    }

    #[test]
    fn nested_run_inlines_on_worker_threads() {
        let nested_parallel = Pool::new(4).map(8, |_| {
            assert!(in_worker());
            // Inner call must not spawn: it returns exactly one
            // accumulator (the inline-serial signature).
            Pool::new(4).run(32, || 0usize, |_, acc| *acc += 1).len()
        });
        assert!(nested_parallel.iter().all(|&inner_accs| inner_accs == 1));
        assert!(!in_worker());
    }

    #[test]
    fn enter_worker_guard_restores_flag() {
        assert!(!in_worker());
        {
            let _g = enter_worker();
            assert!(in_worker());
            {
                let _g2 = enter_worker();
                assert!(in_worker());
            }
            assert!(in_worker());
        }
        assert!(!in_worker());
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(Pool::new(0).threads() >= 1);
        assert_eq!(Pool::new(5).threads(), 5);
    }

    #[test]
    fn empty_range_returns_single_empty_accumulator() {
        let accs = Pool::new(4).run(0, Vec::<u8>::new, |_, _| {});
        assert_eq!(accs.len(), 1);
        assert!(accs[0].is_empty());
        assert!(Pool::new(4).map(0, |i| i).is_empty());
    }
}
