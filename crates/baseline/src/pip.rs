//! The processing-in-pixel (PIP) comparator model (Table 3's baseline).
//!
//! The PIP imager performs ternary-weighted MACs in the current domain
//! inside the pixel array and digitises accumulated columns with coarse
//! ADCs. Its published figure of merit is energy **per pixel per frame**
//! for a 1.5-bit edge-detection convolution at several shapes and strides.
//!
//! Two layers:
//!
//! * a **functional simulator** ([`PipModel::convolve`]) that actually
//!   computes the ternary convolution with the analog error mechanisms the
//!   silicon exhibits (per-weight current mismatch, readout noise, coarse
//!   ADC quantisation), reproducing the ~4.5–7.8 %RMSE band the paper
//!   reports;
//! * an **analytical energy/latency model** fitted to the published
//!   numbers, exposing the same scaling with kernel area and stride.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ta_image::{conv, Image, Kernel};

/// Analog non-ideality and cost parameters of the PIP imager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipModel {
    /// Relative σ of per-weight current mismatch.
    pub weight_mismatch_sigma: f64,
    /// Absolute σ of readout noise, in output LSB-free units.
    pub readout_noise_sigma: f64,
    /// Output ADC resolution in bits (coarse in-pixel conversion).
    pub adc_bits: u32,
    /// Energy of one in-pixel MAC, picojoules (per kernel tap per output).
    pub mac_pj: f64,
    /// Additional per-tap energy per unit of kernel area beyond 2×2 —
    /// larger kernels pay longer accumulation lines (the superlinear
    /// growth visible between Table 3's 2×2 and 4×4 rows).
    pub mac_area_penalty: f64,
    /// Per-output latency contribution, milliseconds per (ops/pixel).
    pub delay_ms_per_op: f64,
    /// Fixed frame latency floor, milliseconds.
    pub delay_floor_ms: f64,
}

impl PipModel {
    /// The model calibrated against the ISSCC '21 publication: ~17 pJ per
    /// effective op at 2×2 growing to ~26 pJ at 4×4, frame delays of a few
    /// to tens of milliseconds, and error in the 4.5–7.8 %RMSE band.
    pub fn asplos24() -> Self {
        PipModel {
            weight_mismatch_sigma: 0.14,
            readout_noise_sigma: 0.03,
            adc_bits: 3,
            mac_pj: 13.9,
            mac_area_penalty: 0.055,
            delay_ms_per_op: 9.8,
            delay_floor_ms: 2.9,
        }
    }

    /// Effective MAC operations per pixel for a kernel and stride
    /// (`k_area / stride²`).
    pub fn ops_per_pixel(kernel: &Kernel, stride: usize) -> f64 {
        assert!(stride > 0, "stride must be non-zero");
        (kernel.width() * kernel.height()) as f64 / (stride * stride) as f64
    }

    /// Energy per pixel per frame in picojoules — the figure of merit of
    /// Table 3.
    ///
    /// For the six configurations the ISSCC '21 paper publishes, the
    /// silicon measurement is returned verbatim (a measured baseline beats
    /// any model of it); other configurations fall back to the analytical
    /// scaling model.
    pub fn energy_per_pixel_pj(&self, kernel: &Kernel, stride: usize) -> f64 {
        if let Some((e, _, _)) = published_lookup(kernel, stride) {
            return e;
        }
        let k_area = (kernel.width() * kernel.height()) as f64;
        let per_op = self.mac_pj * (1.0 + self.mac_area_penalty * k_area);
        per_op * Self::ops_per_pixel(kernel, stride)
    }

    /// Frame processing delay in milliseconds. Published configurations
    /// return the silicon measurement; others use the analytical model
    /// (the in-pixel array integrates currents slowly, so latency scales
    /// with per-pixel work).
    pub fn frame_delay_ms(&self, kernel: &Kernel, stride: usize) -> f64 {
        if let Some((_, d, _)) = published_lookup(kernel, stride) {
            return d;
        }
        self.delay_floor_ms + self.delay_ms_per_op * Self::ops_per_pixel(kernel, stride)
    }

    /// Energy–delay product in pJ·ms (Table 3's E×D column).
    pub fn energy_delay_product(&self, kernel: &Kernel, stride: usize) -> f64 {
        self.energy_per_pixel_pj(kernel, stride) * self.frame_delay_ms(kernel, stride)
    }

    /// Runs the 1.5-bit convolution the way the silicon does: weights
    /// quantised to `{-1, 0, +1}`, per-weight current mismatch (static per
    /// frame, as in a real array), additive readout noise, and coarse ADC
    /// quantisation of each output. Deterministic in `seed`.
    pub fn convolve(&self, image: &Image, kernel: &Kernel, stride: usize, seed: u64) -> Image {
        let ternary = ternary_quantize(kernel);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);

        // Static mismatch pattern: one multiplicative error per kernel tap
        // (fixed-pattern, like real transistor mismatch).
        let mismatch: Vec<f64> = (0..ternary.weights().len())
            .map(|_| 1.0 + self.weight_mismatch_sigma * normal(&mut rng))
            .collect();

        let (ow, oh) = conv::output_dims(image.width(), image.height(), &ternary, stride)
            .expect("kernel must fit in the image");

        // ADC full scale: the readout chain has programmable conversion
        // gain, so the coarse ADC digitises the frame's actual signal
        // swing (with headroom), not the kernel's worst-case ±Σ|w| swing —
        // ranging to the worst case would make 3-bit quantisation noise
        // dwarf every analog error mechanism and grow with kernel area,
        // the opposite of the published error trend.
        let reference = conv::convolve(image, &ternary, stride);
        let (ref_lo, ref_hi) = reference.min_max();
        let full_scale = (ref_hi.abs().max(ref_lo.abs()) * 1.25).max(1e-6);
        let levels = (1u64 << self.adc_bits) as f64;
        let lsb = 2.0 * full_scale / levels;

        Image::from_fn(ow, oh, |ox, oy| {
            let mut acc = 0.0;
            for ky in 0..ternary.height() {
                for kx in 0..ternary.width() {
                    let w = ternary.weight(kx, ky);
                    if w != 0.0 {
                        let m = mismatch[ky * ternary.width() + kx];
                        acc += w * m * image.get(ox * stride + kx, oy * stride + ky);
                    }
                }
            }
            acc += self.readout_noise_sigma * normal(&mut rng);
            // Coarse mid-rise ADC over [-full_scale, +full_scale].
            let code = (acc / lsb).round();
            (code * lsb).clamp(-full_scale, full_scale)
        })
    }

    /// Convenience: %RMSE of the functional simulator against the exact
    /// ternary convolution (Table 3's `Error (%RMSE)` column for PIP).
    pub fn percent_rmse(&self, image: &Image, kernel: &Kernel, stride: usize, seed: u64) -> f64 {
        let reference = conv::convolve(image, &ternary_quantize(kernel), stride);
        let measured = self.convolve(image, kernel, stride, seed);
        ta_image::metrics::percent_rmse(&measured, &reference)
    }
}

impl Default for PipModel {
    fn default() -> Self {
        PipModel::asplos24()
    }
}

/// Quantises a kernel to the PIP hardware's 1.5-bit weights
/// (`sign(w) ∈ {-1, 0, +1}`).
pub fn ternary_quantize(kernel: &Kernel) -> Kernel {
    let w: Vec<f64> = kernel
        .weights()
        .iter()
        .map(|&v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect();
    Kernel::new(
        format!("{}~1.5b", kernel.name()),
        kernel.width(),
        kernel.height(),
        w,
    )
}

/// The published Table 3 PIP figures, used as calibration anchors and for
/// the paper-vs-measured comparison in EXPERIMENTS.md. Tuples are
/// `(width, height, stride, energy_pj_per_px, frame_delay_ms,
/// error_percent)`.
pub fn published_table3() -> [(usize, usize, usize, f64, f64, f64); 6] {
    [
        (2, 2, 2, 16.9, 12.8, 7.18),
        (2, 2, 4, 4.6, 5.2, 7.12),
        (2, 4, 2, 32.9, 21.9, 7.8),
        (2, 4, 4, 7.0, 7.7, 6.77),
        (4, 4, 2, 104.0, 41.3, 4.56),
        (4, 4, 4, 11.6, 1.3, 5.27),
    ]
}

/// Looks up a published `(energy_pj, delay_ms, error_pct)` row for
/// kernels matching the published edge-benchmark shapes.
fn published_lookup(kernel: &Kernel, stride: usize) -> Option<(f64, f64, f64)> {
    published_table3()
        .into_iter()
        .find(|&(w, h, s, ..)| w == kernel.width() && h == kernel.height() && s == stride)
        .map(|(_, _, _, e, d, err)| (e, d, err))
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller light: reuse the polar method locally.
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_image::synth;

    #[test]
    fn ternary_quantization() {
        let t = ternary_quantize(&Kernel::sobel_x());
        assert_eq!(
            t.weights(),
            &[-1.0, 0.0, 1.0, -1.0, 0.0, 1.0, -1.0, 0.0, 1.0]
        );
    }

    #[test]
    fn fallback_energy_scales_with_ops_per_pixel() {
        // Use an unpublished shape so the analytical model (not the
        // silicon lookup) is exercised.
        let m = PipModel::asplos24();
        let k33 = Kernel::edge_ternary(3, 3);
        let e_s1 = m.energy_per_pixel_pj(&k33, 1);
        let e_s3 = m.energy_per_pixel_pj(&k33, 3);
        assert!((e_s1 / e_s3 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn energy_superlinear_in_kernel_area() {
        let m = PipModel::asplos24();
        let per_op_22 = m.energy_per_pixel_pj(&Kernel::edge_ternary(2, 2), 2)
            / PipModel::ops_per_pixel(&Kernel::edge_ternary(2, 2), 2);
        let per_op_44 = m.energy_per_pixel_pj(&Kernel::edge_ternary(4, 4), 2)
            / PipModel::ops_per_pixel(&Kernel::edge_ternary(4, 4), 2);
        assert!(per_op_44 > per_op_22 * 1.3);
    }

    #[test]
    fn published_configs_return_silicon_measurements() {
        let m = PipModel::asplos24();
        for (w, h, s, e_pub, d_pub, _) in published_table3() {
            let k = Kernel::edge_ternary(w, h);
            assert_eq!(m.energy_per_pixel_pj(&k, s), e_pub, "{w}x{h} s{s}");
            assert_eq!(m.frame_delay_ms(&k, s), d_pub, "{w}x{h} s{s}");
        }
    }

    #[test]
    fn analytical_fallback_tracks_published_scale() {
        // An unpublished configuration (3×3, stride 3) should land between
        // the published neighbours, not orders of magnitude away.
        let m = PipModel::asplos24();
        let k = Kernel::edge_ternary(3, 3);
        let e = m.energy_per_pixel_pj(&k, 3);
        assert!(e > 2.0 && e < 60.0, "fallback energy {e:.1} pJ");
        let d = m.frame_delay_ms(&k, 3);
        assert!(d > 1.0 && d < 45.0, "fallback delay {d:.1} ms");
        // Fallback must scale with stride like the silicon does (~ops/px).
        let e_s1 = m.energy_per_pixel_pj(&k, 1);
        assert!(e_s1 > 5.0 * e);
    }

    #[test]
    fn functional_error_in_published_band() {
        // Error characterisation uses a high-contrast test chart (the
        // checkerboard drives every edge-kernel phase at full swing, like
        // the scenes silicon error figures are measured on — on a smooth
        // scene the 2×2 differencer's reference range collapses and any
        // absolute analog error looks arbitrarily large in %RMSE). A
        // single seed draws only k_area static-mismatch samples, so
        // average over seeds: the band is about the expected error.
        let m = PipModel::asplos24();
        let img = synth::scene(synth::Scene::Checkerboard { tile: 3 }, 150, 150, 0);
        for (w, h, s) in [(2, 2, 2), (2, 4, 2), (4, 4, 2), (4, 4, 4)] {
            let k = Kernel::edge_ternary(w, h);
            let err = (0..8)
                .map(|seed| m.percent_rmse(&img, &k, s, seed))
                .sum::<f64>()
                / 8.0;
            assert!(
                (2.0..12.0).contains(&err),
                "{w}x{h} s{s}: mean error {err:.2}% outside plausible band"
            );
        }
    }

    #[test]
    fn error_decreases_with_kernel_area() {
        // Larger kernels average static mismatch over more taps (the
        // paper's 4×4 rows show lower %RMSE than 2×2). Isolate the
        // mismatch mechanism with a fine ADC — with the production 3-bit
        // ADC both shapes are quantisation-limited and indistinguishable —
        // and average over seeds.
        let fine = PipModel {
            adc_bits: 12,
            ..PipModel::asplos24()
        };
        let img = synth::scene(synth::Scene::Checkerboard { tile: 3 }, 150, 150, 0);
        let avg = |w: usize, h: usize| -> f64 {
            (0..16)
                .map(|s| fine.percent_rmse(&img, &Kernel::edge_ternary(w, h), 2, s))
                .sum::<f64>()
                / 16.0
        };
        assert!(avg(4, 4) < avg(2, 2));
    }

    #[test]
    fn convolve_is_deterministic_per_seed() {
        let m = PipModel::asplos24();
        let img = synth::natural_image(40, 40, 1);
        let k = Kernel::edge_ternary(2, 2);
        assert_eq!(m.convolve(&img, &k, 2, 3), m.convolve(&img, &k, 2, 3));
        // With a fine ADC the seed-dependent analog noise is visible
        // (the production 3-bit ADC rounds most of it away).
        let fine = PipModel { adc_bits: 12, ..m };
        assert_ne!(fine.convolve(&img, &k, 2, 3), fine.convolve(&img, &k, 2, 4));
    }

    #[test]
    fn noiseless_model_matches_exact_ternary_conv() {
        let m = PipModel {
            weight_mismatch_sigma: 0.0,
            readout_noise_sigma: 0.0,
            adc_bits: 16, // fine enough to be lossless at image scale
            ..PipModel::asplos24()
        };
        let img = synth::natural_image(30, 30, 2);
        let k = Kernel::edge_ternary(2, 2);
        let got = m.convolve(&img, &k, 2, 1);
        let exact = conv::convolve(&img, &ternary_quantize(&k), 2);
        let err = ta_image::metrics::rmse(&got, &exact);
        assert!(err < 1e-3, "rmse {err}");
    }
}
