//! The reference-engine abstraction: a deterministic digital path that can
//! stand in for the temporal engine.
//!
//! Hybrid temporal accelerators are deployed with a conventional digital
//! datapath alongside the fast approximate temporal one (cf. *Enhanced
//! Hybrid Temporal Computing*, *Tempus Core*): the digital path validates
//! the temporal outputs and serves as the fallback when a frame fails.
//! [`ReferenceEngine`] is that contract — given a frame, produce the
//! outputs a trustworthy engine would — and [`DigitalReference`] is its
//! production implementation over [`DigitalModel`].

use ta_image::{Image, Kernel};

use crate::digital::DigitalModel;

/// A deterministic engine that produces trusted reference outputs for a
/// frame: one output image per kernel, in the same order the temporal
/// engine emits them.
///
/// Implementations must be pure functions of the image (same input, same
/// output) so that validation and fallback are reproducible.
pub trait ReferenceEngine: Send + Sync {
    /// Computes the reference outputs for `image`, one per kernel.
    fn reference_outputs(&self, image: &Image) -> Vec<Image>;

    /// Energy this engine would spend on one `width × height` frame, in
    /// picojoules — lets supervisors account the cost of falling back.
    fn energy_per_frame_pj(&self, width: usize, height: usize) -> f64;

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

/// The conventional digital pipeline as a reference engine: per-pixel ADC
/// plus fixed-point MACs for each kernel.
///
/// An optional pixel floor mirrors the temporal engine's VTC dynamic-range
/// clipping so that validation compares like with like (the temporal
/// engine cannot see pixels below `e^-max_delay`; without the floor every
/// true-zero pixel would count as error).
#[derive(Debug, Clone)]
pub struct DigitalReference {
    model: DigitalModel,
    kernels: Vec<Kernel>,
    stride: usize,
    pixel_floor: Option<f64>,
}

impl DigitalReference {
    /// Builds a reference engine over `model` for the given kernel set.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty or `stride` is zero — the same
    /// preconditions the temporal system description enforces with typed
    /// errors at its own boundary.
    pub fn new(model: DigitalModel, kernels: Vec<Kernel>, stride: usize) -> Self {
        assert!(!kernels.is_empty(), "at least one kernel is required");
        assert!(stride > 0, "stride must be non-zero");
        DigitalReference {
            model,
            kernels,
            stride,
            pixel_floor: None,
        }
    }

    /// Clamps input pixels to at least `floor` before convolving, mirroring
    /// the temporal engine's VTC dynamic-range floor (`e^-max_delay`).
    #[must_use]
    pub fn with_pixel_floor(mut self, floor: f64) -> Self {
        self.pixel_floor = Some(floor);
        self
    }

    /// The kernel set this reference convolves.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// The convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl ReferenceEngine for DigitalReference {
    fn reference_outputs(&self, image: &Image) -> Vec<Image> {
        let floored = self
            .pixel_floor
            .map(|floor| image.map(|p| p.clamp(0.0, 1.0).max(floor)));
        let input = floored.as_ref().unwrap_or(image);
        self.kernels
            .iter()
            .map(|k| self.model.convolve(input, k, self.stride))
            .collect()
    }

    fn energy_per_frame_pj(&self, width: usize, height: usize) -> f64 {
        let pixels = (width * height) as f64;
        self.kernels
            .iter()
            .map(|k| self.model.energy_per_pixel_pj(k, self.stride) * pixels)
            .sum()
    }

    fn name(&self) -> &str {
        "digital-adc-mac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_image::{conv, metrics, synth};

    fn engine() -> DigitalReference {
        DigitalReference::new(
            DigitalModel::conventional_65nm(),
            vec![Kernel::sobel_x(), Kernel::sobel_y()],
            1,
        )
    }

    #[test]
    fn outputs_match_digital_convolution_per_kernel() {
        let img = synth::natural_image(16, 16, 1);
        let outs = engine().reference_outputs(&img);
        assert_eq!(outs.len(), 2);
        let expect = DigitalModel::conventional_65nm().convolve(&img, &Kernel::sobel_x(), 1);
        assert_eq!(outs[0], expect);
        // 10-bit quantisation keeps the reference close to exact software
        // convolution.
        let exact = conv::convolve(&img, &Kernel::sobel_y(), 1);
        assert!(metrics::normalized_rmse(&outs[1], &exact) < 1e-2);
    }

    #[test]
    fn pixel_floor_clips_like_the_vtc() {
        let mut img = Image::zeros(8, 8);
        img.set(3, 3, 0.5);
        let floor = (-6.0_f64).exp();
        let plain = engine().reference_outputs(&img);
        let floored = engine().with_pixel_floor(floor).reference_outputs(&img);
        assert_ne!(plain[0], floored[0], "the floor must lift true zeros");
        let clipped = img.map(|p| p.clamp(0.0, 1.0).max(floor));
        let expect = DigitalModel::conventional_65nm().convolve(&clipped, &Kernel::sobel_x(), 1);
        assert_eq!(floored[0], expect);
    }

    #[test]
    fn deterministic_and_energy_positive() {
        let img = synth::natural_image(12, 12, 2);
        let e = engine();
        assert_eq!(e.reference_outputs(&img), e.reference_outputs(&img));
        assert!(e.energy_per_frame_pj(12, 12) > 0.0);
        assert!(!e.name().is_empty());
    }
}
