//! A conventional digital near-sensor pipeline: per-pixel ADC followed by
//! fixed-point MACs.
//!
//! This is the "complete analog-to-digital conversion for each pixel"
//! design point the paper's introduction argues against. It is not part of
//! Table 3, but examples and ablation benches use it to show where the
//! energy goes in a conventional design (the ADC dominates).

use ta_image::{conv, Image, Kernel};

/// Energy/accuracy model of the digital pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitalModel {
    /// ADC resolution in bits.
    pub adc_bits: u32,
    /// Energy per ADC conversion, picojoules (tens of pJ for a 10-bit
    /// SAR at 65 nm).
    pub adc_pj: f64,
    /// Energy per 8-bit MAC, picojoules.
    pub mac_pj: f64,
}

impl DigitalModel {
    /// A representative 65 nm design point: 10-bit SAR ADC at ~40 pJ per
    /// conversion, 8-bit digital MAC at ~0.4 pJ.
    pub fn conventional_65nm() -> Self {
        DigitalModel {
            adc_bits: 10,
            adc_pj: 40.0,
            mac_pj: 0.4,
        }
    }

    /// Energy per pixel per frame for one convolution, picojoules: one ADC
    /// conversion per pixel plus the amortised MAC work.
    pub fn energy_per_pixel_pj(&self, kernel: &Kernel, stride: usize) -> f64 {
        assert!(stride > 0, "stride must be non-zero");
        let ops_per_pixel = (kernel.width() * kernel.height()) as f64 / (stride * stride) as f64;
        self.adc_pj + self.mac_pj * ops_per_pixel
    }

    /// Runs the digital convolution: pixels quantised by the ADC, exact
    /// arithmetic after that.
    pub fn convolve(&self, image: &Image, kernel: &Kernel, stride: usize) -> Image {
        let levels = (1u64 << self.adc_bits) as f64;
        let quantised =
            image.map(|p| (p.clamp(0.0, 1.0) * (levels - 1.0)).round() / (levels - 1.0));
        conv::convolve(&quantised, kernel, stride)
    }
}

impl Default for DigitalModel {
    fn default() -> Self {
        DigitalModel::conventional_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_image::{metrics, synth};

    #[test]
    fn adc_dominates_energy() {
        let m = DigitalModel::conventional_65nm();
        let e = m.energy_per_pixel_pj(&Kernel::sobel_x(), 1);
        assert!(e > m.adc_pj);
        assert!(m.adc_pj / e > 0.9);
    }

    #[test]
    fn quantisation_error_is_small_at_10_bits() {
        let m = DigitalModel::conventional_65nm();
        let img = synth::natural_image(64, 64, 3);
        let k = Kernel::gaussian(5, 1.0);
        let got = m.convolve(&img, &k, 1);
        let exact = conv::convolve(&img, &k, 1);
        assert!(metrics::normalized_rmse(&got, &exact) < 1e-3);
    }

    #[test]
    fn fewer_bits_more_error() {
        let coarse = DigitalModel {
            adc_bits: 4,
            ..DigitalModel::conventional_65nm()
        };
        let fine = DigitalModel::conventional_65nm();
        let img = synth::natural_image(64, 64, 4);
        let k = Kernel::box_filter(3);
        let exact = conv::convolve(&img, &k, 1);
        let e_coarse = metrics::normalized_rmse(&coarse.convolve(&img, &k, 1), &exact);
        let e_fine = metrics::normalized_rmse(&fine.convolve(&img, &k, 1), &exact);
        assert!(e_coarse > 10.0 * e_fine);
    }
}
