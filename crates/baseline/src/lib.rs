//! Baseline comparators for the delay-space convolution architecture.
//!
//! * [`pip`] — a functional + analytical model of the state-of-the-art
//!   **processing-in-pixel (PIP)** convolutional imager SoC the paper
//!   compares against in Table 3 (Lefebvre et al., ISSCC '21): in-sensor
//!   current-domain MACs with 1.5-bit (ternary) weights, column ADC
//!   readout, and the published energy/delay figures as calibration
//!   anchors. We cannot re-measure silicon, so the model reproduces the
//!   published per-configuration behaviour and scaling (see DESIGN.md §3).
//! * [`digital`] — a conventional digital ADC + 8-bit MAC pipeline, the
//!   "full analog-to-digital conversion for each pixel" strawman of the
//!   paper's introduction, used by examples and ablations.
//! * [`mod@reference`] — the [`ReferenceEngine`] trait: a deterministic
//!   digital path usable for output validation and graceful fallback by
//!   the supervised runtime (`ta-runtime`), implemented by
//!   [`DigitalReference`] over the [`digital`] model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digital;
pub mod pip;
pub mod reference;

pub use reference::{DigitalReference, ReferenceEngine};
