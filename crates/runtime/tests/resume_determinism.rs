//! Resume determinism: interrupt a journaled 8-frame batch at *every*
//! frame boundary — clean and faulty engines — and assert the resumed
//! result is bit-for-bit equal to the uninterrupted golden run.
//!
//! The interruption is simulated at the journal level: the golden run's
//! journal holds one record per frame; a journal rebuilt from the meta
//! record plus the first `k` frame records is exactly what a crash after
//! `k` checkpoints leaves behind (the torn-tail scan of `ta-journal` has
//! already reduced any real crash artifact to such a prefix — that layer
//! is covered by the journal proptests and the kill-9 suite).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::sync::Arc;

use ta_core::{ArchConfig, Architecture, ArithmeticMode, FaultModel, SystemDescription};
use ta_image::{synth, Image, Kernel};
use ta_journal::{FsyncPolicy, Journal};
use ta_runtime::{
    hash_images, BatchJournal, BatchMeta, BatchResult, Engine, FaultyTemporalEngine, RetryPolicy,
    Supervisor, SupervisorConfig, TemporalEngine, ValidationPolicy,
};

const W: usize = 12;
const H: usize = 12;
const FRAMES: usize = 8;
const BATCH_SEED: u64 = 0xD15EA5E;

fn arch() -> Architecture {
    let desc = SystemDescription::new(W, H, vec![Kernel::sobel_x()], 1).unwrap();
    Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap()
}

fn frames() -> Vec<Image> {
    (0..FRAMES)
        .map(|i| synth::natural_image(W, H, i as u64))
        .collect()
}

fn supervisor() -> Supervisor {
    Supervisor::new(SupervisorConfig {
        validation: ValidationPolicy {
            require_finite: true,
            nrmse_tolerance: None,
        },
        timeout: None,
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff: std::time::Duration::ZERO,
            max_backoff: std::time::Duration::ZERO,
            jitter: 0.0,
        },
        workers: 2,
        seed: 3,
    })
}

fn clean_engine() -> Arc<dyn Engine> {
    Arc::new(TemporalEngine::new(
        arch(),
        ArithmeticMode::DelayApproxNoisy,
    ))
}

fn faulty_engine() -> Arc<dyn Engine> {
    Arc::new(FaultyTemporalEngine::new(
        arch(),
        ArithmeticMode::DelayApproxNoisy,
        FaultModel::with_rate(0.01).unwrap(),
        0xFA,
    ))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ta-resume-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.wal"))
}

fn meta(imgs: &[Image]) -> BatchMeta {
    BatchMeta {
        batch_seed: BATCH_SEED,
        frames: imgs.len() as u32,
        config_hash: 0xC0FFEE,
        images_hash: hash_images(imgs),
    }
}

/// Bit-level equality of two batch results: output pixel bit patterns,
/// status renderings, and attempt counts. (Latencies are wall-clock and
/// excluded by design.)
fn assert_bit_identical(golden: &BatchResult, resumed: &BatchResult, what: &str) {
    assert_eq!(golden.outputs.len(), resumed.outputs.len(), "{what}: len");
    for (i, (g, r)) in golden.outputs.iter().zip(&resumed.outputs).enumerate() {
        match (g, r) {
            (None, None) => {}
            (Some(g), Some(r)) => {
                assert_eq!(g.len(), r.len(), "{what}: frame {i} plane count");
                for (p, (gp, rp)) in g.iter().zip(r).enumerate() {
                    let gbits: Vec<u64> = gp.pixels().iter().map(|v| v.to_bits()).collect();
                    let rbits: Vec<u64> = rp.pixels().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(gbits, rbits, "{what}: frame {i} plane {p} pixel bits");
                }
            }
            _ => panic!("{what}: frame {i} presence differs"),
        }
    }
    for (g, r) in golden.reports.iter().zip(&resumed.reports) {
        assert_eq!(g.frame, r.frame, "{what}: report order");
        assert_eq!(
            g.status.to_string(),
            r.status.to_string(),
            "{what}: frame {} status",
            g.frame
        );
        assert_eq!(g.attempts, r.attempts, "{what}: frame {} attempts", g.frame);
    }
    assert_eq!(golden.health.ok, resumed.health.ok, "{what}: health.ok");
    assert_eq!(
        golden.health.degraded, resumed.health.degraded,
        "{what}: health.degraded"
    );
    assert_eq!(
        golden.health.failed, resumed.health.failed,
        "{what}: health.failed"
    );
}

/// Runs the golden journaled batch, then for every boundary `k` rebuilds
/// the journal as a crash after `k` checkpoints would leave it and
/// resumes.
fn interrupt_at_every_boundary(tag: &str, engine: &Arc<dyn Engine>) {
    let imgs = frames();
    let meta = meta(&imgs);
    let sup = supervisor();

    // Golden: one uninterrupted journaled run (itself pinned against the
    // journal-free path below).
    let golden_path = scratch(&format!("{tag}-golden"));
    let _ = std::fs::remove_file(&golden_path);
    let journal = BatchJournal::create(&golden_path, FsyncPolicy::Batch, &meta).unwrap();
    let golden = sup
        .run_batch_journaled(engine, &imgs, BATCH_SEED, &journal)
        .unwrap();
    drop(journal);

    let plain = sup.run_batch(engine, &imgs, BATCH_SEED).unwrap();
    assert_bit_identical(&plain, &golden, &format!("{tag}: journaled vs plain"));

    // The golden journal is compacted: meta + FRAMES records + done.
    let (_, recovery) = Journal::open(&golden_path, FsyncPolicy::Batch).unwrap();
    let records = recovery.records;
    assert_eq!(records.len(), FRAMES + 2);

    for k in 0..=FRAMES {
        // A crash after k checkpoints leaves meta + k frame records (the
        // done marker only exists on completion).
        let path = scratch(&format!("{tag}-cut{k}"));
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path, FsyncPolicy::Batch).unwrap();
        for payload in records.iter().take(1 + k) {
            j.append(payload).unwrap();
        }
        drop(j);

        let journal = BatchJournal::resume(&path, FsyncPolicy::Batch, &meta).unwrap();
        assert_eq!(journal.recovered().len(), k, "{tag}: cut {k} recovered");
        let resumed = sup
            .run_batch_journaled(engine, &imgs, BATCH_SEED, &journal)
            .unwrap();
        assert_bit_identical(&golden, &resumed, &format!("{tag}: resume at {k}"));

        // After the resumed run the journal is finished: resuming again
        // replays everything without executing a single frame.
        let journal = BatchJournal::resume(&path, FsyncPolicy::Batch, &meta).unwrap();
        assert!(journal.finished, "{tag}: cut {k} should finish");
        assert_eq!(journal.recovered().len(), FRAMES);
        let replayed = sup
            .run_batch_journaled(engine, &imgs, BATCH_SEED, &journal)
            .unwrap();
        assert_bit_identical(&golden, &replayed, &format!("{tag}: replay-all at {k}"));
    }
}

#[test]
fn resume_is_bit_identical_at_every_boundary_clean() {
    interrupt_at_every_boundary("clean", &clean_engine());
}

#[test]
fn resume_is_bit_identical_at_every_boundary_faulty() {
    interrupt_at_every_boundary("faulty", &faulty_engine());
}

#[test]
fn resume_with_wrong_inputs_is_refused() {
    let imgs = frames();
    let meta0 = meta(&imgs);
    let path = scratch("wrong-inputs");
    let _ = std::fs::remove_file(&path);
    drop(BatchJournal::create(&path, FsyncPolicy::Batch, &meta0).unwrap());

    let mut other = imgs.clone();
    other[3] = synth::natural_image(W, H, 777);
    let bad = BatchMeta {
        images_hash: hash_images(&other),
        ..meta0
    };
    let err = BatchJournal::resume(&path, FsyncPolicy::Batch, &bad).unwrap_err();
    assert!(err.to_string().contains("different campaign"), "{err}");
}
