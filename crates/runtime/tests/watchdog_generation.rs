//! Regression: an abandoned hung attempt must never write into a reused
//! frame slot (join-or-detach with a generation tag).
//!
//! The scenario: attempt 0 stalls past its watchdog budget and — crucially
//! — eventually *completes* with poison outputs while attempt 1 is still
//! in flight on the same frame. Before the generation-tagged
//! [`ta_runtime::AttemptSlot`], a completion path that could still reach
//! the frame's result slot would let the stale attempt's outputs overwrite
//! the retry's.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ta_core::{ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{synth, Image, Kernel};
use ta_runtime::{
    Engine, FrameStatus, RetryPolicy, Supervisor, SupervisorConfig, TemporalEngine,
    ValidationPolicy,
};

fn arch(size: usize) -> Architecture {
    let desc = SystemDescription::new(size, size, vec![Kernel::box_filter(3)], 1).unwrap();
    Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap()
}

/// Attempt 0 stalls well past the watchdog budget and then completes with
/// *poison* outputs (the frame convolved from a corrupted input). Later
/// attempts answer promptly with the true outputs, but slowly enough that
/// the stalled worker finishes mid-retry — the exact reuse window the
/// generation tag closes.
struct StallThenPoisonEngine {
    inner: TemporalEngine,
    poison: Image,
    stall: Duration,
    retry_delay: Duration,
    calls: AtomicU32,
}

impl Engine for StallThenPoisonEngine {
    fn run_frame(
        &self,
        image: &Image,
        seed: u64,
        attempt: u32,
    ) -> Result<ta_core::RunResult, ta_core::Error> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if attempt == 0 {
            thread::sleep(self.stall);
            return self.inner.run_frame(&self.poison, seed, attempt);
        }
        thread::sleep(self.retry_delay);
        self.inner.run_frame(image, seed, attempt)
    }

    fn name(&self) -> &str {
        "stall-then-poison"
    }
}

#[test]
fn abandoned_attempt_cannot_poison_the_reused_slot() {
    let size = 12;
    let arch = arch(size);
    let image = synth::natural_image(size, size, 3);
    let poison = image.map(|p| 1.0 - p);

    let engine: Arc<dyn Engine> = Arc::new(StallThenPoisonEngine {
        inner: TemporalEngine::new(arch.clone(), ArithmeticMode::DelayExact),
        poison,
        // The stalled worker completes ~50 ms after its 100 ms budget
        // expired, i.e. squarely inside attempt 1's ~80 ms runtime
        // (attempt 1 runs from ~t=102 to ~t=182; the stale completion
        // lands at ~t=150).
        stall: Duration::from_millis(150),
        retry_delay: Duration::from_millis(80),
        calls: AtomicU32::new(0),
    });

    let stale = ta_telemetry::metrics().counter("ta_runtime_stale_attempts_total");
    let stale_before = stale.get();

    let supervisor = Supervisor::new(SupervisorConfig {
        validation: ValidationPolicy::default(),
        timeout: Some(Duration::from_millis(100)),
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: 0.0,
        },
        workers: 1,
        seed: 9,
    });

    let (outputs, report) = supervisor.run_one(&engine, &image, 0, 9).unwrap();

    // Attempt 0 timed out; attempt 1 served the frame.
    assert_eq!(report.status, FrameStatus::Ok, "log: {:?}", report.log);
    assert_eq!(report.attempts, 2, "log: {:?}", report.log);
    assert!(
        report.log[0].contains("timeout"),
        "attempt 0 must be a watchdog timeout: {:?}",
        report.log
    );

    // The outputs are bit-identical to a clean attempt-1 run on the true
    // image — the stale poison completion did not leak into the slot.
    let expect = TemporalEngine::new(arch, ArithmeticMode::DelayExact)
        .run_frame(&image, ta_runtime::derive_seed(9, 0), 1)
        .unwrap();
    assert_eq!(outputs.unwrap(), expect.outputs);

    // The abandoned worker eventually finished and was discarded as
    // stale, observably.
    let deadline = Instant::now() + Duration::from_secs(2);
    while stale.get() < stale_before + 1 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    assert!(
        stale.get() > stale_before,
        "the stalled worker's completion must be counted stale"
    );
}
