//! End-to-end supervision scenarios: hung jobs, panics, poisoned outputs,
//! drift rejection, graceful degradation, and reproducibility.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ta_baseline::{DigitalReference, ReferenceEngine};
use ta_core::{
    exec, ArchConfig, Architecture, ArithmeticMode, FaultModel, RunResult, SystemDescription,
};
use ta_image::{synth, Image, Kernel};
use ta_runtime::{
    Engine, FailureKind, Fallback, FaultyTemporalEngine, FrameStatus, RetryPolicy, Supervisor,
    SupervisorConfig, TemporalEngine, ValidationPolicy,
};

const W: usize = 12;
const H: usize = 12;

fn arch() -> Architecture {
    let desc = SystemDescription::new(W, H, vec![Kernel::sobel_x()], 1).unwrap();
    Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap()
}

fn reference() -> Arc<DigitalReference> {
    let floor = (-arch().vtc().max_delay_units()).exp();
    Arc::new(
        DigitalReference::new(
            ta_baseline::digital::DigitalModel::conventional_65nm(),
            vec![Kernel::sobel_x()],
            1,
        )
        .with_pixel_floor(floor),
    )
}

fn good_result() -> RunResult {
    let img = synth::natural_image(W, H, 0);
    exec::run(&arch(), &img, ArithmeticMode::DelayApprox, 0).unwrap()
}

fn frames(n: usize) -> Vec<Image> {
    (0..n)
        .map(|i| synth::natural_image(W, H, i as u64))
        .collect()
}

/// What a scripted engine does on a given attempt.
#[derive(Clone, Copy)]
enum Behaviour {
    Ok,
    Nan,
    Panic,
    Err,
    Hang,
}

/// A deterministic engine whose behaviour is scripted per attempt index;
/// attempts beyond the script succeed.
struct Scripted {
    script: Vec<Behaviour>,
    good: RunResult,
    calls: AtomicU32,
}

impl Scripted {
    fn new(script: Vec<Behaviour>) -> Arc<Self> {
        Arc::new(Scripted {
            script,
            good: good_result(),
            calls: AtomicU32::new(0),
        })
    }
}

impl Engine for Scripted {
    fn run_frame(
        &self,
        _image: &Image,
        _seed: u64,
        attempt: u32,
    ) -> Result<RunResult, ta_core::Error> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        match self
            .script
            .get(attempt as usize)
            .copied()
            .unwrap_or(Behaviour::Ok)
        {
            Behaviour::Ok => Ok(self.good.clone()),
            Behaviour::Nan => {
                let mut r = self.good.clone();
                r.outputs[0].set(0, 0, f64::NAN);
                Ok(r)
            }
            Behaviour::Panic => panic!("scripted panic on attempt {attempt}"),
            Behaviour::Err => Err(ta_core::exec::ExecError::DimensionMismatch {
                expected: (W, H),
                got: (0, 0),
            }
            .into()),
            Behaviour::Hang => {
                std::thread::sleep(Duration::from_secs(30));
                Ok(self.good.clone())
            }
        }
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        jitter: 0.0,
    }
}

#[test]
fn watchdog_cancels_hung_job_at_deadline() {
    let sup = Supervisor::new(SupervisorConfig {
        timeout: Some(Duration::from_millis(50)),
        retry: fast_retry(0),
        ..SupervisorConfig::default()
    });
    let engine: Arc<dyn Engine> = Scripted::new(vec![Behaviour::Hang]);
    let img = synth::natural_image(W, H, 1);
    let started = Instant::now();
    let (out, report) = sup.run_one(&engine, &img, 0, 7).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the hung job must be abandoned at its deadline, not joined"
    );
    assert!(out.is_none());
    assert_eq!(
        report.status,
        FrameStatus::Failed {
            cause: FailureKind::Timeout {
                budget: Duration::from_millis(50)
            }
        }
    );
    assert_eq!(report.attempts, 1);
}

#[test]
fn timed_out_attempt_records_the_watchdog_budget_as_its_latency() {
    // The worker is abandoned at the deadline, so the attempt's cost to
    // the frame is exactly the budget — not zero (the old behaviour lost
    // per-attempt timing for timeouts) and not the hung worker's runtime.
    let budget = Duration::from_millis(40);
    let sup = Supervisor::new(SupervisorConfig {
        timeout: Some(budget),
        retry: fast_retry(0),
        ..SupervisorConfig::default()
    });
    let engine: Arc<dyn Engine> = Scripted::new(vec![Behaviour::Hang]);
    let img = synth::natural_image(W, H, 1);
    let (_, report) = sup.run_one(&engine, &img, 0, 7).unwrap();
    assert_eq!(report.attempt_latencies, vec![budget]);
    assert!(report.latency >= budget);
}

#[test]
fn successful_attempts_record_their_own_latencies() {
    let sup = Supervisor::new(SupervisorConfig {
        retry: fast_retry(2),
        ..SupervisorConfig::default()
    });
    let engine: Arc<dyn Engine> = Scripted::new(vec![Behaviour::Err, Behaviour::Ok]);
    let img = synth::natural_image(W, H, 1);
    let (_, report) = sup.run_one(&engine, &img, 0, 7).unwrap();
    assert_eq!(report.attempts, 2);
    assert_eq!(report.attempt_latencies.len(), 2);
    let total: Duration = report.attempt_latencies.iter().sum();
    assert!(total <= report.latency);
}

#[test]
fn panics_are_isolated_and_retried_to_success() {
    let sup = Supervisor::new(SupervisorConfig {
        retry: fast_retry(2),
        ..SupervisorConfig::default()
    });
    let engine: Arc<dyn Engine> = Scripted::new(vec![Behaviour::Panic, Behaviour::Ok]);
    let img = synth::natural_image(W, H, 1);
    let (out, report) = sup.run_one(&engine, &img, 0, 7).unwrap();
    assert!(out.is_some());
    assert_eq!(report.status, FrameStatus::Ok);
    assert_eq!(report.attempts, 2);
    assert!(report.log[0].contains("panic"), "log: {:?}", report.log);
}

#[test]
fn nan_outputs_are_rejected_then_retried() {
    let sup = Supervisor::new(SupervisorConfig {
        retry: fast_retry(1),
        ..SupervisorConfig::default()
    });
    let engine: Arc<dyn Engine> = Scripted::new(vec![Behaviour::Nan, Behaviour::Ok]);
    let img = synth::natural_image(W, H, 1);
    let (out, report) = sup.run_one(&engine, &img, 0, 7).unwrap();
    assert_eq!(report.status, FrameStatus::Ok);
    assert_eq!(report.attempts, 2);
    assert!(out.unwrap()[0].pixels().iter().all(|p| p.is_finite()));
    assert!(report.log[0].contains("NaN"), "log: {:?}", report.log);
}

#[test]
fn exhausted_budget_falls_back_to_reference() {
    let sup = Supervisor::new(SupervisorConfig {
        retry: fast_retry(1),
        ..SupervisorConfig::default()
    })
    .with_reference(reference())
    .with_fallback(Fallback::Reference);
    let engine: Arc<dyn Engine> =
        Scripted::new(vec![Behaviour::Err, Behaviour::Err, Behaviour::Err]);
    let imgs = frames(3);
    let batch = sup.run_batch(&engine, &imgs, 7).unwrap();
    assert_eq!(batch.health.degraded, 3);
    assert_eq!(batch.health.failed, 0);
    assert!(batch.health.all_served());
    for (i, out) in batch.outputs.iter().enumerate() {
        let out = out.as_ref().expect("degraded frames still carry outputs");
        assert_eq!(out, &reference().reference_outputs(&imgs[i]));
        assert!(matches!(
            &batch.reports[i].status,
            FrameStatus::Degraded {
                cause: FailureKind::Engine(_),
                ..
            }
        ));
    }
}

#[test]
fn exhausted_budget_falls_back_to_exact_engine() {
    let fallback: Arc<dyn Engine> =
        Arc::new(TemporalEngine::new(arch(), ArithmeticMode::DelayExact));
    let sup = Supervisor::new(SupervisorConfig {
        retry: fast_retry(0),
        ..SupervisorConfig::default()
    })
    .with_fallback(Fallback::Engine(fallback));
    let engine: Arc<dyn Engine> = Scripted::new(vec![Behaviour::Nan, Behaviour::Nan]);
    let img = synth::natural_image(W, H, 2);
    let (out, report) = sup.run_one(&engine, &img, 0, 7).unwrap();
    let FrameStatus::Degraded { fallback, cause } = &report.status else {
        panic!("expected degraded, got {:?}", report.status)
    };
    assert_eq!(fallback, "temporal");
    assert!(matches!(cause, FailureKind::Validation(_)));
    let exact = exec::run(&arch(), &img, ArithmeticMode::DelayExact, 0).unwrap();
    assert_eq!(out.unwrap(), exact.outputs);
}

#[test]
fn no_fallback_means_failed_but_never_aborts() {
    let sup = Supervisor::new(SupervisorConfig {
        retry: fast_retry(1),
        ..SupervisorConfig::default()
    });
    let engine: Arc<dyn Engine> =
        Scripted::new(vec![Behaviour::Panic, Behaviour::Panic, Behaviour::Panic]);
    let batch = sup.run_batch(&engine, &frames(2), 7).unwrap();
    assert_eq!(batch.health.failed, 2);
    assert_eq!(batch.health.retried, 2);
    assert!(batch.outputs.iter().all(Option::is_none));
    for r in &batch.reports {
        assert!(matches!(
            &r.status,
            FrameStatus::Failed {
                cause: FailureKind::Panic(_)
            }
        ));
        assert_eq!(r.attempts, 2);
        assert_eq!(r.log.len(), 2);
    }
}

#[test]
fn drift_beyond_tolerance_is_degraded_via_reference() {
    // A heavy transient fault environment pushes many frames past a tight
    // tolerance; every one of them must be served by the reference.
    let model = FaultModel::with_rate(0.02).unwrap();
    let engine: Arc<dyn Engine> = Arc::new(FaultyTemporalEngine::new(
        arch(),
        ArithmeticMode::DelayApprox,
        model,
        0xFA,
    ));
    let sup = Supervisor::new(SupervisorConfig {
        validation: ValidationPolicy {
            require_finite: true,
            nrmse_tolerance: Some(1e-6),
        },
        retry: fast_retry(1),
        ..SupervisorConfig::default()
    })
    .with_reference(reference())
    .with_fallback(Fallback::Reference);
    let batch = sup.run_batch(&engine, &frames(4), 21).unwrap();
    assert!(batch.health.all_served());
    assert!(
        batch.health.degraded > 0,
        "a 2% transient fault rate should exceed a 1e-6 tolerance: {:?}",
        batch.health
    );
    assert!(batch.outputs.iter().all(Option::is_some));
}

#[test]
fn health_counts_reproduce_across_runs_and_worker_counts() {
    let model = FaultModel::with_rate(0.01).unwrap();
    let engine: Arc<dyn Engine> = Arc::new(FaultyTemporalEngine::new(
        arch(),
        ArithmeticMode::DelayApproxNoisy,
        model,
        0xFA,
    ));
    let sup_for = |workers: usize| {
        Supervisor::new(SupervisorConfig {
            validation: ValidationPolicy {
                require_finite: true,
                nrmse_tolerance: Some(0.05),
            },
            retry: fast_retry(2),
            workers,
            seed: 5,
            ..SupervisorConfig::default()
        })
        .with_reference(reference())
        .with_fallback(Fallback::Reference)
    };
    let imgs = frames(6);
    let a = sup_for(1).run_batch(&engine, &imgs, 99).unwrap();
    let b = sup_for(4).run_batch(&engine, &imgs, 99).unwrap();
    let c = sup_for(4).run_batch(&engine, &imgs, 99).unwrap();
    // Counts and per-frame statuses are a pure function of (inputs,
    // config, seed) — thread scheduling must not leak in.
    let statuses = |r: &ta_runtime::BatchResult| {
        r.reports
            .iter()
            .map(|f| (f.status.clone(), f.attempts))
            .collect::<Vec<_>>()
    };
    assert_eq!(statuses(&a), statuses(&b));
    assert_eq!(statuses(&b), statuses(&c));
    assert_eq!(a.health.ok, b.health.ok);
    assert_eq!(a.health.degraded, b.health.degraded);
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        assert_eq!(x, y);
    }
}

#[test]
fn clean_batch_is_all_ok_with_sane_latency_stats() {
    let engine: Arc<dyn Engine> =
        Arc::new(TemporalEngine::new(arch(), ArithmeticMode::DelayApprox));
    let sup = Supervisor::new(SupervisorConfig::default());
    let batch = sup.run_batch(&engine, &frames(5), 3).unwrap();
    assert_eq!(batch.health.ok, 5);
    assert_eq!(batch.health.retried, 0);
    assert_eq!(batch.health.total_attempts, 5);
    assert!(batch.health.latency.max_s >= batch.health.latency.p50_s);
    assert!(batch.health.latency.p50_s > 0.0);
    let display = format!("{}", batch.health);
    assert!(display.contains("ok 5"), "{display}");
}

#[test]
fn empty_batch_is_healthy() {
    let engine: Arc<dyn Engine> =
        Arc::new(TemporalEngine::new(arch(), ArithmeticMode::DelayApprox));
    let sup = Supervisor::new(SupervisorConfig::default());
    let batch = sup.run_batch(&engine, &[], 3).unwrap();
    assert_eq!(batch.health.frames, 0);
    assert!(batch.health.all_served());
}
