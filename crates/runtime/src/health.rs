//! Per-frame outcome reports and per-batch health aggregation.

use std::fmt;
use std::time::Duration;

use ta_image::Image;

use crate::supervisor::FailureKind;

/// Final disposition of one supervised frame.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameStatus {
    /// The primary engine produced validated outputs (possibly after
    /// retries — see [`FrameReport::attempts`]).
    Ok,
    /// The retry budget was exhausted and the frame's outputs come from a
    /// fallback engine instead.
    Degraded {
        /// Name of the fallback that produced the outputs.
        fallback: String,
        /// The failure that exhausted the primary engine's budget.
        cause: FailureKind,
    },
    /// No usable output: the retry budget was exhausted and no fallback
    /// was configured (or the fallback itself failed validation).
    Failed {
        /// The final failure.
        cause: FailureKind,
    },
}

impl FrameStatus {
    /// True for [`FrameStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, FrameStatus::Ok)
    }

    /// True for [`FrameStatus::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, FrameStatus::Degraded { .. })
    }

    /// True for [`FrameStatus::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, FrameStatus::Failed { .. })
    }
}

impl fmt::Display for FrameStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameStatus::Ok => write!(f, "ok"),
            FrameStatus::Degraded { fallback, cause } => {
                write!(f, "degraded via {fallback} (after {cause})")
            }
            FrameStatus::Failed { cause } => write!(f, "FAILED: {cause}"),
        }
    }
}

/// What happened to one frame under supervision.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// Index of the frame within the batch.
    pub frame: usize,
    /// Final disposition.
    pub status: FrameStatus,
    /// Attempts made on the primary engine (1 = no retries).
    pub attempts: u32,
    /// Wall-clock time from first attempt to final disposition, including
    /// backoff sleeps and any fallback run.
    pub latency: Duration,
    /// Wall-clock time of each primary-engine attempt, in attempt order.
    /// A timed-out attempt records exactly its watchdog budget: the worker
    /// is abandoned at the deadline, so the budget *is* what the attempt
    /// cost the frame (the thread's own runtime is off the books).
    pub attempt_latencies: Vec<Duration>,
    /// One line per failed attempt, for diagnostics.
    pub log: Vec<String>,
}

/// Latency percentiles over a batch, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Median frame latency.
    pub p50_s: f64,
    /// 90th-percentile frame latency.
    pub p90_s: f64,
    /// 99th-percentile frame latency.
    pub p99_s: f64,
    /// Worst frame latency.
    pub max_s: f64,
    /// Mean frame latency.
    pub mean_s: f64,
}

impl LatencyStats {
    /// Nearest-rank percentiles over `latencies` (empty input → zeros),
    /// computed on the shared [`ta_telemetry::ExactHistogram`] so every
    /// layer of the stack derives percentiles the same way.
    pub fn from_durations(latencies: &[Duration]) -> Self {
        let hist = ta_telemetry::ExactHistogram::from_durations(latencies);
        if hist.is_empty() {
            return LatencyStats::default();
        }
        let ranks = hist.percentiles(&[0.50, 0.90, 0.99]);
        LatencyStats {
            p50_s: ranks[0],
            p90_s: ranks[1],
            p99_s: ranks[2],
            max_s: hist.max(),
            mean_s: hist.mean(),
        }
    }
}

/// Aggregated health of one supervised batch.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Frames in the batch.
    pub frames: usize,
    /// Frames whose primary engine succeeded (first try or after retry).
    pub ok: usize,
    /// Frames that needed more than one attempt, whatever their final
    /// disposition.
    pub retried: usize,
    /// Frames served by the fallback engine.
    pub degraded: usize,
    /// Frames with no usable output.
    pub failed: usize,
    /// Total attempts made on the primary engine across the batch.
    pub total_attempts: u64,
    /// Latency distribution across frames.
    pub latency: LatencyStats,
}

impl HealthReport {
    /// Aggregates per-frame reports into batch health.
    pub fn from_reports(reports: &[FrameReport]) -> Self {
        let latencies: Vec<Duration> = reports.iter().map(|r| r.latency).collect();
        HealthReport {
            frames: reports.len(),
            ok: reports.iter().filter(|r| r.status.is_ok()).count(),
            retried: reports.iter().filter(|r| r.attempts > 1).count(),
            degraded: reports.iter().filter(|r| r.status.is_degraded()).count(),
            failed: reports.iter().filter(|r| r.status.is_failed()).count(),
            total_attempts: reports.iter().map(|r| u64::from(r.attempts)).sum(),
            latency: LatencyStats::from_durations(&latencies),
        }
    }

    /// True when every frame produced usable output (ok or degraded).
    pub fn all_served(&self) -> bool {
        self.failed == 0
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "frames {}: ok {}, retried {}, degraded {}, failed {} ({} attempts total)",
            self.frames, self.ok, self.retried, self.degraded, self.failed, self.total_attempts
        )?;
        write!(
            f,
            "latency p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
            self.latency.p50_s * 1e3,
            self.latency.p90_s * 1e3,
            self.latency.p99_s * 1e3,
            self.latency.max_s * 1e3,
        )
    }
}

/// Everything a supervised batch produced.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-frame outputs (one image per kernel); `None` only for frames
    /// whose status is [`FrameStatus::Failed`].
    pub outputs: Vec<Option<Vec<Image>>>,
    /// Per-frame dispositions, in frame order.
    pub reports: Vec<FrameReport>,
    /// Aggregated batch health.
    pub health: HealthReport,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn report(frame: usize, status: FrameStatus, attempts: u32, ms: u64) -> FrameReport {
        FrameReport {
            frame,
            status,
            attempts,
            latency: Duration::from_millis(ms),
            attempt_latencies: vec![Duration::from_millis(ms)],
            log: vec![],
        }
    }

    #[test]
    fn health_counts_partition_the_batch() {
        let cause = FailureKind::Timeout {
            budget: Duration::from_millis(5),
        };
        let reports = vec![
            report(0, FrameStatus::Ok, 1, 10),
            report(1, FrameStatus::Ok, 3, 30),
            report(
                2,
                FrameStatus::Degraded {
                    fallback: "digital".into(),
                    cause: cause.clone(),
                },
                4,
                40,
            ),
            report(3, FrameStatus::Failed { cause }, 4, 20),
        ];
        let h = HealthReport::from_reports(&reports);
        assert_eq!(
            (h.frames, h.ok, h.retried, h.degraded, h.failed),
            (4, 2, 3, 1, 1)
        );
        assert_eq!(h.total_attempts, 12);
        assert!(!h.all_served());
        assert!(format!("{h}").contains("ok 2"));
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let d: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencyStats::from_durations(&d);
        assert!((s.p50_s - 0.050).abs() < 1e-12);
        assert!((s.p90_s - 0.090).abs() < 1e-12);
        assert!((s.p99_s - 0.099).abs() < 1e-12);
        assert!((s.max_s - 0.100).abs() < 1e-12);
        assert_eq!(LatencyStats::from_durations(&[]), LatencyStats::default());
    }
}
