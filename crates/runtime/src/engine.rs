//! The [`Engine`] contract and its temporal implementations.

use ta_core::{exec, Architecture, ArithmeticMode, FaultModel, RunResult};
use ta_image::Image;

/// Mixes an attempt (or frame) index into a base seed.
///
/// The same splitmix-style constants the fault campaigns use, so derived
/// streams are decorrelated from each other and from the base stream while
/// remaining a pure function of `(base, index)` — the property that makes
/// supervised retry counts reproducible regardless of thread scheduling.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    base ^ (index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (index.wrapping_add(1)).wrapping_mul(0xd1b5_4a32_d192_ed03)
}

/// One frame's worth of work that the supervisor can run, time-bound,
/// retry and validate.
///
/// `seed` is the frame's derived seed and `attempt` the zero-based retry
/// index; implementations should fold `attempt` into their stochastic
/// state so a retry re-rolls transient noise/faults instead of replaying
/// the identical failure.
pub trait Engine: Send + Sync {
    /// Runs one frame and returns its result.
    ///
    /// # Errors
    ///
    /// Any [`ta_core::Error`] the underlying engine reports; the
    /// supervisor treats an error as a failed attempt.
    fn run_frame(
        &self,
        image: &Image,
        seed: u64,
        attempt: u32,
    ) -> Result<RunResult, ta_core::Error>;

    /// Short name for health reports and logs.
    fn name(&self) -> &str {
        "engine"
    }
}

/// The production temporal engine: [`exec::run`] over a compiled
/// [`Architecture`] in a fixed [`ArithmeticMode`].
#[derive(Debug, Clone)]
pub struct TemporalEngine {
    arch: Architecture,
    mode: ArithmeticMode,
}

impl TemporalEngine {
    /// Wraps `arch` running in `mode`.
    pub fn new(arch: Architecture, mode: ArithmeticMode) -> Self {
        TemporalEngine { arch, mode }
    }

    /// The compiled architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The arithmetic mode every frame runs in.
    pub fn mode(&self) -> ArithmeticMode {
        self.mode
    }
}

impl Engine for TemporalEngine {
    fn run_frame(
        &self,
        image: &Image,
        seed: u64,
        attempt: u32,
    ) -> Result<RunResult, ta_core::Error> {
        // Re-roll the stochastic elements (VTC noise, jitter) on retry:
        // a transient glitch should not recur deterministically.
        let seed = derive_seed(seed, u64::from(attempt));
        exec::run(&self.arch, image, self.mode, seed).map_err(Into::into)
    }

    fn name(&self) -> &str {
        "temporal"
    }
}

/// A temporal engine under fault injection: every attempt samples a fresh
/// [`FaultMap`](ta_core::FaultMap) from the model, so faults are
/// *transient* — a retry sees a different fault realisation, which is
/// exactly the scenario supervised retry exists for.
#[derive(Debug, Clone)]
pub struct FaultyTemporalEngine {
    arch: Architecture,
    mode: ArithmeticMode,
    model: FaultModel,
    fault_seed: u64,
}

impl FaultyTemporalEngine {
    /// Wraps `arch` in `mode` with transient faults drawn from `model`.
    ///
    /// `fault_seed` decorrelates the fault stream from the arithmetic
    /// noise stream.
    pub fn new(
        arch: Architecture,
        mode: ArithmeticMode,
        model: FaultModel,
        fault_seed: u64,
    ) -> Self {
        FaultyTemporalEngine {
            arch,
            mode,
            model,
            fault_seed,
        }
    }

    /// The compiled architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }
}

impl Engine for FaultyTemporalEngine {
    fn run_frame(
        &self,
        image: &Image,
        seed: u64,
        attempt: u32,
    ) -> Result<RunResult, ta_core::Error> {
        let attempt = u64::from(attempt);
        let map = self
            .model
            .sample(&self.arch, derive_seed(self.fault_seed ^ seed, attempt));
        let run_seed = derive_seed(seed, attempt);
        exec::run_faulty(&self.arch, image, self.mode, run_seed, &map).map_err(Into::into)
    }

    fn name(&self) -> &str {
        "temporal+faults"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use ta_core::{ArchConfig, SystemDescription};
    use ta_image::{synth, Kernel};

    fn arch() -> Architecture {
        let desc = SystemDescription::new(12, 12, vec![Kernel::sobel_x()], 1).unwrap();
        Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap()
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(7, 0), derive_seed(7, 0));
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn temporal_engine_runs_and_reseeds_attempts() {
        let e = TemporalEngine::new(arch(), ArithmeticMode::DelayApproxNoisy);
        let img = synth::natural_image(12, 12, 3);
        let a = e.run_frame(&img, 1, 0).unwrap();
        let b = e.run_frame(&img, 1, 0).unwrap();
        let c = e.run_frame(&img, 1, 1).unwrap();
        assert_eq!(a.outputs, b.outputs, "same attempt, same stream");
        assert_ne!(a.outputs, c.outputs, "retry re-rolls the noise");
    }

    #[test]
    fn faulty_engine_rerolls_faults_per_attempt() {
        let model = FaultModel::with_rate(0.05).unwrap();
        let e = FaultyTemporalEngine::new(arch(), ArithmeticMode::DelayApprox, model, 99);
        let img = synth::natural_image(12, 12, 4);
        let a = e.run_frame(&img, 1, 0).unwrap();
        let b = e.run_frame(&img, 1, 1).unwrap();
        // Different fault realisations will essentially never agree on
        // every injected-fault count.
        assert!(a.fault_stats != b.fault_stats || a.outputs != b.outputs);
    }
}
