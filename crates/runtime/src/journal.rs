//! Batch checkpoint/resume on the write-ahead journal.
//!
//! `tconv batch --journal PATH` records a campaign-identity record
//! ([`BatchMeta`]) followed by one [`RecordedFrame`] per completed frame
//! — outputs included — as frames finish on the pool. After a crash,
//! `--resume` re-opens the journal, verifies the meta record matches the
//! campaign being resumed (same inputs, same config, same seed), replays
//! the recorded frames verbatim, and executes only the unfinished ones.
//! Because every frame's seed derives from `(batch_seed, index)`
//! ([`crate::derive_seed`]), a resumed batch is bit-identical to an
//! uninterrupted run — recovery is replay, not approximation.
//!
//! On success the journal is compacted (duplicates and torn garbage
//! dropped, one record per frame plus a done marker), so a finished
//! journal re-opens instantly with every frame served from the snapshot.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ta_image::Image;
use ta_journal::{FsyncPolicy, Journal, JournalError};

use crate::health::{FrameReport, FrameStatus};
use crate::supervisor::FailureKind;

/// Journal format version for batch records (inside the payloads; the
/// file-level framing has its own version in `ta-journal`).
pub const BATCH_RECORD_VERSION: u32 = 1;

const KIND_META: u8 = 0x01;
const KIND_FRAME: u8 = 0x02;
const KIND_DONE: u8 = 0x03;

const STATUS_OK: u8 = 0;
const STATUS_DEGRADED: u8 = 1;
const STATUS_FAILED: u8 = 2;

/// Everything that can go wrong opening or writing a batch journal.
#[derive(Debug)]
#[non_exhaustive]
pub enum BatchJournalError {
    /// The underlying journal failed (I/O, version, not-a-journal).
    Journal(JournalError),
    /// A CRC-valid record did not decode as a batch record — a logic or
    /// version mismatch, not a torn write, so it fails loud.
    Corrupt {
        /// What did not parse.
        what: String,
    },
    /// The journal's meta record does not match the campaign being
    /// resumed: different inputs, config, seed, or frame count.
    MetaMismatch {
        /// Which identity field diverged.
        what: &'static str,
    },
    /// `--resume` was asked for but the journal file does not exist.
    NothingToResume {
        /// The missing path.
        path: PathBuf,
    },
}

impl fmt::Display for BatchJournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchJournalError::Journal(e) => write!(f, "{e}"),
            BatchJournalError::Corrupt { what } => {
                write!(f, "journal record corrupt: {what}")
            }
            BatchJournalError::MetaMismatch { what } => write!(
                f,
                "journal belongs to a different campaign ({what} differs); \
                 refusing to resume"
            ),
            BatchJournalError::NothingToResume { path } => {
                write!(f, "--resume: journal {} does not exist", path.display())
            }
        }
    }
}

impl std::error::Error for BatchJournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchJournalError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for BatchJournalError {
    fn from(e: JournalError) -> Self {
        BatchJournalError::Journal(e)
    }
}

// ---------------------------------------------------------------------
// FNV-1a fingerprinting for campaign identity
// ---------------------------------------------------------------------

/// Order-sensitive FNV-1a fingerprint builder used for the campaign
/// identity hashes in [`BatchMeta`].
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        self
    }

    /// Mixes a length-delimited string.
    #[must_use]
    pub fn str(self, s: &str) -> Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Mixes a u64.
    #[must_use]
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Mixes an f64 by bit pattern.
    #[must_use]
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// The fingerprint value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Content hash over the input frames (dimensions + pixel bit patterns).
pub fn hash_images(frames: &[Image]) -> u64 {
    let mut fp = Fingerprint::new().u64(frames.len() as u64);
    for img in frames {
        fp = fp.u64(img.width() as u64).u64(img.height() as u64);
        for &p in img.pixels() {
            fp = fp.f64(p);
        }
    }
    fp.finish()
}

// ---------------------------------------------------------------------
// Record model
// ---------------------------------------------------------------------

/// Campaign identity, written as the journal's first record and verified
/// on resume. Two runs with the same meta are guaranteed (by the
/// deterministic-execution contract) to produce identical outputs, which
/// is what makes replay sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMeta {
    /// Seed every frame seed derives from.
    pub batch_seed: u64,
    /// Frames in the campaign.
    pub frames: u32,
    /// Fingerprint of the execution config (kernel, mode, arch, retry
    /// and validation policy — everything that steers outputs).
    pub config_hash: u64,
    /// Fingerprint of the input frames ([`hash_images`]).
    pub images_hash: u64,
}

/// One completed frame as recorded in (or replayed from) the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedFrame {
    /// Frame index within the batch.
    pub frame: usize,
    /// Disposition code (ok / degraded / failed).
    status: u8,
    /// Fallback engine name (degraded only).
    fallback: String,
    /// Failure cause display string (degraded/failed only).
    cause: String,
    /// Primary-engine attempts.
    pub attempts: u32,
    /// The frame outputs (absent for failed frames).
    pub outputs: Option<Vec<Image>>,
}

impl RecordedFrame {
    /// Captures a completed frame for the journal.
    pub fn from_result(frame: usize, outputs: &Option<Vec<Image>>, report: &FrameReport) -> Self {
        let (status, fallback, cause) = match &report.status {
            FrameStatus::Ok => (STATUS_OK, String::new(), String::new()),
            FrameStatus::Degraded { fallback, cause } => {
                (STATUS_DEGRADED, fallback.clone(), cause.to_string())
            }
            FrameStatus::Failed { cause } => (STATUS_FAILED, String::new(), cause.to_string()),
        };
        RecordedFrame {
            frame,
            status,
            fallback,
            cause,
            attempts: report.attempts,
            outputs: outputs.clone(),
        }
    }

    /// Reconstructs the frame disposition. Causes round-trip as their
    /// display strings via [`FailureKind::Recovered`], so a replayed
    /// report renders identically to the original.
    pub fn status(&self) -> FrameStatus {
        match self.status {
            STATUS_DEGRADED => FrameStatus::Degraded {
                fallback: self.fallback.clone(),
                cause: FailureKind::Recovered(self.cause.clone()),
            },
            STATUS_FAILED => FrameStatus::Failed {
                cause: FailureKind::Recovered(self.cause.clone()),
            },
            _ => FrameStatus::Ok,
        }
    }
}

// ---------------------------------------------------------------------
// Payload codec (journal payloads are opaque to ta-journal)
// ---------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new(kind: u8) -> Self {
        Enc(vec![kind])
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.u32(bytes.len() as u32);
        self.0.extend_from_slice(bytes);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], BatchJournalError> {
        if self.buf.len() - self.pos < n {
            return Err(BatchJournalError::Corrupt {
                what: format!("{what}: truncated payload"),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self, what: &str) -> Result<u8, BatchJournalError> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &str) -> Result<u32, BatchJournalError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self, what: &str) -> Result<u64, BatchJournalError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn str(&mut self, what: &str) -> Result<String, BatchJournalError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BatchJournalError::Corrupt {
            what: format!("{what}: invalid UTF-8"),
        })
    }
}

fn encode_meta(meta: &BatchMeta) -> Vec<u8> {
    let mut e = Enc::new(KIND_META);
    e.u32(BATCH_RECORD_VERSION);
    e.u64(meta.batch_seed);
    e.u32(meta.frames);
    e.u64(meta.config_hash);
    e.u64(meta.images_hash);
    e.0
}

fn encode_frame(rec: &RecordedFrame) -> Vec<u8> {
    let mut e = Enc::new(KIND_FRAME);
    e.u32(rec.frame as u32);
    e.u8(rec.status);
    e.str(&rec.fallback);
    e.str(&rec.cause);
    e.u32(rec.attempts);
    match &rec.outputs {
        None => e.u32(0),
        Some(planes) => {
            e.u32(planes.len() as u32);
            for img in planes {
                e.u32(img.width() as u32);
                e.u32(img.height() as u32);
                for &p in img.pixels() {
                    e.u64(p.to_bits());
                }
            }
        }
    }
    e.0
}

enum BatchRecord {
    Meta(BatchMeta),
    Frame(RecordedFrame),
    Done,
}

fn decode_record(payload: &[u8]) -> Result<BatchRecord, BatchJournalError> {
    let mut d = Dec::new(payload);
    match d.u8("record kind")? {
        KIND_META => {
            let version = d.u32("meta.version")?;
            if version != BATCH_RECORD_VERSION {
                return Err(BatchJournalError::Corrupt {
                    what: format!(
                        "meta record version {version} (this build reads {BATCH_RECORD_VERSION})"
                    ),
                });
            }
            Ok(BatchRecord::Meta(BatchMeta {
                batch_seed: d.u64("meta.batch_seed")?,
                frames: d.u32("meta.frames")?,
                config_hash: d.u64("meta.config_hash")?,
                images_hash: d.u64("meta.images_hash")?,
            }))
        }
        KIND_FRAME => {
            let frame = d.u32("frame.index")? as usize;
            let status = d.u8("frame.status")?;
            if status > STATUS_FAILED {
                return Err(BatchJournalError::Corrupt {
                    what: format!("frame.status: no variant {status}"),
                });
            }
            let fallback = d.str("frame.fallback")?;
            let cause = d.str("frame.cause")?;
            let attempts = d.u32("frame.attempts")?;
            let nplanes = d.u32("frame.planes")? as usize;
            let outputs = if nplanes == 0 {
                None
            } else {
                let mut planes = Vec::with_capacity(nplanes);
                for _ in 0..nplanes {
                    let w = d.u32("plane.width")? as usize;
                    let h = d.u32("plane.height")? as usize;
                    let n = w.checked_mul(h).ok_or_else(|| BatchJournalError::Corrupt {
                        what: "plane dimensions overflow".to_string(),
                    })?;
                    let mut pixels = Vec::with_capacity(n);
                    for _ in 0..n {
                        pixels.push(f64::from_bits(d.u64("plane.pixel")?));
                    }
                    let img = Image::from_pixels(w, h, pixels).map_err(|e| {
                        BatchJournalError::Corrupt {
                            what: format!("plane: {e}"),
                        }
                    })?;
                    planes.push(img);
                }
                Some(planes)
            };
            Ok(BatchRecord::Frame(RecordedFrame {
                frame,
                status,
                fallback,
                cause,
                attempts,
                outputs,
            }))
        }
        KIND_DONE => Ok(BatchRecord::Done),
        kind => Err(BatchJournalError::Corrupt {
            what: format!("unknown batch record kind {kind:#04x}"),
        }),
    }
}

// ---------------------------------------------------------------------
// BatchJournal
// ---------------------------------------------------------------------

/// A batch campaign's write-ahead journal: meta verified, completed
/// frames recoverable, appends thread-safe (pool workers checkpoint
/// concurrently; record order does not matter because every record
/// carries its frame index).
#[derive(Debug)]
pub struct BatchJournal {
    inner: Mutex<Journal>,
    meta: BatchMeta,
    recovered: BTreeMap<usize, RecordedFrame>,
    /// Bytes the torn-tail scan discarded at open.
    pub truncated_bytes: u64,
    /// True when the journal already carries a completion marker.
    pub finished: bool,
}

impl BatchJournal {
    /// Starts a fresh journal for a new campaign, replacing any existing
    /// file at `path` (a journal without `--resume` is a new campaign).
    ///
    /// # Errors
    ///
    /// [`BatchJournalError`] on I/O failure.
    pub fn create(
        path: &Path,
        policy: FsyncPolicy,
        meta: &BatchMeta,
    ) -> Result<BatchJournal, BatchJournalError> {
        if path.exists() {
            std::fs::remove_file(path).map_err(|source| {
                BatchJournalError::Journal(JournalError::Io {
                    op: "replace journal",
                    source,
                })
            })?;
        }
        let (mut journal, _) = Journal::open(path, policy)?;
        journal.append(&encode_meta(meta))?;
        journal.sync()?;
        Ok(BatchJournal {
            inner: Mutex::new(journal),
            meta: meta.clone(),
            recovered: BTreeMap::new(),
            truncated_bytes: 0,
            finished: false,
        })
    }

    /// Re-opens an existing journal for `--resume`: verifies the meta
    /// record against the campaign being run and loads every recorded
    /// frame for replay.
    ///
    /// # Errors
    ///
    /// [`BatchJournalError::NothingToResume`] when the file is missing,
    /// [`BatchJournalError::MetaMismatch`] when it belongs to a different
    /// campaign, [`BatchJournalError::Corrupt`] on undecodable records,
    /// and I/O / format errors from the journal layer.
    pub fn resume(
        path: &Path,
        policy: FsyncPolicy,
        meta: &BatchMeta,
    ) -> Result<BatchJournal, BatchJournalError> {
        if !path.exists() {
            return Err(BatchJournalError::NothingToResume {
                path: path.to_path_buf(),
            });
        }
        let (journal, recovery) = Journal::open(path, policy)?;
        let mut records = recovery.records.iter();
        let first = records.next().ok_or(BatchJournalError::Corrupt {
            what: "journal has no meta record".to_string(),
        })?;
        let BatchRecord::Meta(found) = decode_record(first)? else {
            return Err(BatchJournalError::Corrupt {
                what: "first record is not the campaign meta".to_string(),
            });
        };
        for (what, ours, theirs) in [
            (
                "frame count",
                u64::from(meta.frames),
                u64::from(found.frames),
            ),
            ("batch seed", meta.batch_seed, found.batch_seed),
            ("config", meta.config_hash, found.config_hash),
            ("input images", meta.images_hash, found.images_hash),
        ] {
            if ours != theirs {
                return Err(BatchJournalError::MetaMismatch { what });
            }
        }
        let mut recovered = BTreeMap::new();
        let mut finished = false;
        for payload in records {
            match decode_record(payload)? {
                BatchRecord::Frame(rec) => {
                    if rec.frame < meta.frames as usize {
                        // Duplicates (a checkpoint retried across a crash)
                        // collapse by index; replay is idempotent.
                        recovered.insert(rec.frame, rec);
                    }
                }
                BatchRecord::Done => finished = true,
                BatchRecord::Meta(_) => {
                    return Err(BatchJournalError::Corrupt {
                        what: "duplicate meta record".to_string(),
                    })
                }
            }
        }
        Ok(BatchJournal {
            inner: Mutex::new(journal),
            meta: meta.clone(),
            recovered,
            truncated_bytes: recovery.truncated_bytes,
            finished,
        })
    }

    /// Frames recovered from the journal, keyed by index.
    pub fn recovered(&self) -> &BTreeMap<usize, RecordedFrame> {
        &self.recovered
    }

    /// True when `frame` is already checkpointed.
    pub fn has_frame(&self, frame: usize) -> bool {
        self.recovered.contains_key(&frame)
    }

    /// Checkpoints one completed frame (thread-safe).
    ///
    /// # Errors
    ///
    /// [`BatchJournalError`] on I/O failure or an oversized record.
    pub fn append_frame(&self, rec: &RecordedFrame) -> Result<(), BatchJournalError> {
        let payload = encode_frame(rec);
        let mut journal = self.inner.lock().map_err(|_| BatchJournalError::Corrupt {
            what: "journal lock poisoned".to_string(),
        })?;
        journal.append(&payload)?;
        Ok(())
    }

    /// Marks the campaign complete and compacts the journal to its
    /// snapshot: meta, one record per frame, and the done marker —
    /// duplicates and torn garbage gone. A finished journal re-opens with
    /// every frame replayable and nothing left to execute.
    ///
    /// # Errors
    ///
    /// [`BatchJournalError`] on I/O failure during compaction.
    pub fn finish(&self, frames: &BTreeMap<usize, RecordedFrame>) -> Result<(), BatchJournalError> {
        let mut payloads = Vec::with_capacity(frames.len() + 2);
        payloads.push(encode_meta(&self.meta));
        for rec in frames.values() {
            payloads.push(encode_frame(rec));
        }
        payloads.push(vec![KIND_DONE]);
        let mut journal = self.inner.lock().map_err(|_| BatchJournalError::Corrupt {
            what: "journal lock poisoned".to_string(),
        })?;
        journal.compact(payloads.iter().map(Vec::as_slice))?;
        journal.sync()?;
        Ok(())
    }

    /// Forces buffered appends to stable storage.
    ///
    /// # Errors
    ///
    /// [`BatchJournalError`] when fsync fails.
    pub fn sync(&self) -> Result<(), BatchJournalError> {
        let mut journal = self.inner.lock().map_err(|_| BatchJournalError::Corrupt {
            what: "journal lock poisoned".to_string(),
        })?;
        journal.sync()?;
        Ok(())
    }

    /// Current journal size counters.
    pub fn stats(&self) -> ta_journal::JournalStats {
        match self.inner.lock() {
            Ok(j) => j.stats(),
            Err(_) => ta_journal::JournalStats {
                records: 0,
                bytes: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::time::Duration;

    fn meta() -> BatchMeta {
        BatchMeta {
            batch_seed: 7,
            frames: 4,
            config_hash: 11,
            images_hash: 13,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ta-batch-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    fn frame_record(i: usize) -> RecordedFrame {
        let img = Image::from_pixels(2, 2, vec![0.0, 1.0, -3.5, 42.0]).unwrap();
        let report = FrameReport {
            frame: i,
            status: FrameStatus::Ok,
            attempts: 1,
            latency: Duration::from_millis(1),
            attempt_latencies: vec![Duration::from_millis(1)],
            log: vec![],
        };
        RecordedFrame::from_result(i, &Some(vec![img]), &report)
    }

    #[test]
    fn create_then_resume_replays_frames() {
        let path = scratch("roundtrip");
        let _ = std::fs::remove_file(&path);
        let j = BatchJournal::create(&path, FsyncPolicy::Batch, &meta()).unwrap();
        j.append_frame(&frame_record(0)).unwrap();
        j.append_frame(&frame_record(2)).unwrap();
        j.sync().unwrap();
        drop(j);

        let j2 = BatchJournal::resume(&path, FsyncPolicy::Batch, &meta()).unwrap();
        assert!(!j2.finished);
        assert_eq!(
            j2.recovered().keys().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
        let rec = &j2.recovered()[&0];
        assert_eq!(rec.attempts, 1);
        assert!(rec.status().is_ok());
        let out = rec.outputs.as_ref().unwrap();
        assert_eq!(out[0].pixels(), &[0.0, 1.0, -3.5, 42.0]);
    }

    #[test]
    fn meta_mismatch_is_refused() {
        let path = scratch("mismatch");
        let _ = std::fs::remove_file(&path);
        drop(BatchJournal::create(&path, FsyncPolicy::Batch, &meta()).unwrap());
        let mut other = meta();
        other.batch_seed = 8;
        assert!(matches!(
            BatchJournal::resume(&path, FsyncPolicy::Batch, &other),
            Err(BatchJournalError::MetaMismatch { what: "batch seed" })
        ));
    }

    #[test]
    fn resume_without_file_is_typed() {
        let path = scratch("absent");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            BatchJournal::resume(&path, FsyncPolicy::Batch, &meta()),
            Err(BatchJournalError::NothingToResume { .. })
        ));
    }

    #[test]
    fn finish_compacts_to_snapshot() {
        let path = scratch("finish");
        let _ = std::fs::remove_file(&path);
        let j = BatchJournal::create(&path, FsyncPolicy::Batch, &meta()).unwrap();
        let mut all = BTreeMap::new();
        for i in 0..4 {
            let rec = frame_record(i);
            j.append_frame(&rec).unwrap();
            // Simulate a duplicate checkpoint surviving a crash window.
            j.append_frame(&rec).unwrap();
            all.insert(i, rec);
        }
        j.finish(&all).unwrap();
        drop(j);

        let j2 = BatchJournal::resume(&path, FsyncPolicy::Batch, &meta()).unwrap();
        assert!(j2.finished);
        assert_eq!(j2.recovered().len(), 4);
        // Compaction dropped the duplicates: meta + 4 frames + done.
        assert_eq!(j2.stats().records, 6);
    }

    #[test]
    fn degraded_and_failed_statuses_roundtrip_display() {
        let path = scratch("status");
        let _ = std::fs::remove_file(&path);
        let j = BatchJournal::create(&path, FsyncPolicy::Batch, &meta()).unwrap();
        let degraded = FrameReport {
            frame: 0,
            status: FrameStatus::Degraded {
                fallback: "digital-reference".to_string(),
                cause: FailureKind::Panic("kaboom".to_string()),
            },
            attempts: 3,
            latency: Duration::from_millis(9),
            attempt_latencies: vec![],
            log: vec![],
        };
        let failed = FrameReport {
            frame: 1,
            status: FrameStatus::Failed {
                cause: FailureKind::Panic("dead".to_string()),
            },
            attempts: 4,
            latency: Duration::from_millis(9),
            attempt_latencies: vec![],
            log: vec![],
        };
        let img = Image::from_pixels(1, 1, vec![0.5]).unwrap();
        j.append_frame(&RecordedFrame::from_result(0, &Some(vec![img]), &degraded))
            .unwrap();
        j.append_frame(&RecordedFrame::from_result(1, &None, &failed))
            .unwrap();
        j.sync().unwrap();
        drop(j);

        let j2 = BatchJournal::resume(&path, FsyncPolicy::Batch, &meta()).unwrap();
        assert_eq!(
            j2.recovered()[&0].status().to_string(),
            degraded.status.to_string()
        );
        assert_eq!(
            j2.recovered()[&1].status().to_string(),
            failed.status.to_string()
        );
        assert!(j2.recovered()[&1].outputs.is_none());
    }
}
