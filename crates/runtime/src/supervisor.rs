//! The supervisor: validation, watchdog timeouts, seeded retry with
//! exponential backoff, panic isolation, and graceful degradation.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::{rngs::SmallRng, Rng, SeedableRng};
use ta_baseline::ReferenceEngine;
use ta_core::seed::{derive_seed as derive_stream_seed, Domain as SeedDomain};
use ta_core::{RunResult, ValidationError};
use ta_image::Image;

use crate::engine::{derive_seed, Engine};
use crate::health::{BatchResult, FrameReport, FrameStatus, HealthReport};
use crate::watchdog::{AttemptSlot, AttemptWait};

/// Why one attempt (or a whole frame) failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FailureKind {
    /// The attempt missed its watchdog deadline and was abandoned.
    Timeout {
        /// The per-attempt budget that was exceeded.
        budget: Duration,
    },
    /// The attempt panicked; the payload's message, if printable.
    Panic(String),
    /// The engine returned a typed error.
    Engine(ta_core::Error),
    /// The outputs were produced but rejected by validation.
    Validation(ValidationError),
    /// The frame was replayed from a journal; the original cause survives
    /// only as its display string, which this variant renders verbatim so
    /// replayed reports read identically to the originals.
    Recovered(String),
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Timeout { budget } => {
                write!(f, "timeout (budget {:.1} ms)", budget.as_secs_f64() * 1e3)
            }
            FailureKind::Panic(msg) => write!(f, "panic: {msg}"),
            FailureKind::Engine(e) => write!(f, "engine error: {e}"),
            FailureKind::Validation(e) => write!(f, "validation rejected output: {e}"),
            FailureKind::Recovered(text) => f.write_str(text),
        }
    }
}

/// Output-acceptance rules applied to every attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPolicy {
    /// Reject outputs containing NaN/Inf pixels.
    pub require_finite: bool,
    /// Reject outputs whose per-kernel nRMSE against the digital
    /// reference exceeds this tolerance. Requires a reference engine to
    /// be attached to the supervisor.
    pub nrmse_tolerance: Option<f64>,
}

impl Default for ValidationPolicy {
    fn default() -> Self {
        ValidationPolicy {
            require_finite: true,
            nrmse_tolerance: None,
        }
    }
}

/// Retry budget and backoff shape.
///
/// Attempt `k` (zero-based) that fails sleeps
/// `min(base_backoff · 2^k, max_backoff)` scaled by a jitter factor drawn
/// uniformly from `[1 − jitter, 1 + jitter)` before the next attempt. All
/// jitter derives from the batch seed, so schedules are reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = no retry).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Cap on the exponentially growing backoff.
    pub max_backoff: Duration,
    /// Relative jitter amplitude in `[0, 1]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            jitter: 0.5,
        }
    }
}

/// Where a frame's outputs come from once the retry budget is exhausted.
#[derive(Clone)]
pub enum Fallback {
    /// Re-run the frame through a trusted engine (typically the temporal
    /// engine in an exact arithmetic mode).
    Engine(Arc<dyn Engine>),
    /// Serve the attached [`ReferenceEngine`]'s outputs directly.
    Reference,
}

impl fmt::Debug for Fallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fallback::Engine(e) => write!(f, "Fallback::Engine({})", e.name()),
            Fallback::Reference => write!(f, "Fallback::Reference"),
        }
    }
}

/// Supervisor knobs. `Default` gives finite-only validation, no timeout,
/// two retries, and one worker per available core.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SupervisorConfig {
    /// Output-acceptance rules.
    pub validation: ValidationPolicy,
    /// Per-attempt watchdog budget; `None` disables the watchdog (and the
    /// per-attempt worker thread it needs).
    pub timeout: Option<Duration>,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Worker threads for batch execution; `0` = one per available core.
    pub workers: usize,
    /// Base seed for backoff jitter (frame seeds derive from the batch
    /// seed passed to [`Supervisor::run_batch`]).
    pub seed: u64,
}

/// Supervisor misconfiguration detected before any frame runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A feature needing the digital reference was enabled without
    /// attaching a reference engine.
    MissingReference(&'static str),
    /// A journaled batch could not checkpoint (I/O failure mid-run). The
    /// display string carries the underlying journal error.
    Journal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::MissingReference(what) => write!(
                f,
                "{what} requires a reference engine (Supervisor::with_reference)"
            ),
            RuntimeError::Journal(what) => write!(f, "journal checkpoint failed: {what}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The supervised batch executor. See the crate docs for the contract.
#[derive(Clone)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    reference: Option<Arc<dyn ReferenceEngine>>,
    fallback: Option<Fallback>,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("cfg", &self.cfg)
            .field("reference", &self.reference.as_ref().map(|r| r.name()))
            .field("fallback", &self.fallback)
            .finish()
    }
}

impl Supervisor {
    /// Builds a supervisor with the given configuration and no reference
    /// engine or fallback.
    pub fn new(cfg: SupervisorConfig) -> Self {
        Supervisor {
            cfg,
            reference: None,
            fallback: None,
        }
    }

    /// Attaches the trusted digital reference used for nRMSE validation
    /// and [`Fallback::Reference`].
    #[must_use]
    pub fn with_reference(mut self, reference: Arc<dyn ReferenceEngine>) -> Self {
        self.reference = Some(reference);
        self
    }

    /// Configures graceful degradation once the retry budget is spent.
    #[must_use]
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    fn check_config(&self) -> Result<(), RuntimeError> {
        if self.cfg.validation.nrmse_tolerance.is_some() && self.reference.is_none() {
            return Err(RuntimeError::MissingReference("nRMSE validation"));
        }
        if matches!(self.fallback, Some(Fallback::Reference)) && self.reference.is_none() {
            return Err(RuntimeError::MissingReference("reference fallback"));
        }
        Ok(())
    }

    /// Supervises one frame: attempts, validation, retry, fallback.
    ///
    /// `frame` indexes the frame within its batch; the frame's engine seed
    /// is `derive_seed(batch_seed, frame)`, so single-frame and batch runs
    /// agree.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] if the configuration needs a reference engine
    /// that was not attached. Per-frame failures are *not* errors: they
    /// are reported in the returned [`FrameReport`].
    pub fn run_one(
        &self,
        engine: &Arc<dyn Engine>,
        image: &Image,
        frame: usize,
        batch_seed: u64,
    ) -> Result<(Option<Vec<Image>>, FrameReport), RuntimeError> {
        self.check_config()?;
        Ok(self.supervise_frame(engine, image, frame, batch_seed))
    }

    /// Runs a batch of frames across the configured worker pool.
    ///
    /// Every frame gets a seed derived from `batch_seed` and its index,
    /// and backoff jitter derives from the configuration seed and the
    /// index — so ok/retried/degraded/failed counts are a pure function
    /// of `(inputs, config, seeds)`, independent of thread scheduling.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on misconfiguration (detected before any frame
    /// runs). Per-frame failures are reported in the [`BatchResult`],
    /// never as process aborts.
    pub fn run_batch(
        &self,
        engine: &Arc<dyn Engine>,
        frames: &[Image],
        batch_seed: u64,
    ) -> Result<BatchResult, RuntimeError> {
        self.check_config()?;
        let n = frames.len();
        // The shared pool supplies the worker fan-out (cfg.workers == 0
        // means the pool default) and hands results back in frame order.
        // Frame-level parallelism composes with the engine's own row
        // parallelism: inside a pool worker the nested frame kernel runs
        // inline, so the machine is never oversubscribed.
        let results = ta_pool::Pool::new(self.cfg.workers).map(n, |i| {
            self.supervise_frame(engine, &frames[i], i, batch_seed)
        });

        let mut outputs = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for (out, report) in results {
            outputs.push(out);
            reports.push(report);
        }
        let health = HealthReport::from_reports(&reports);
        Ok(BatchResult {
            outputs,
            reports,
            health,
        })
    }

    /// Runs a batch with write-ahead checkpointing: frames already in the
    /// journal are replayed verbatim (zero compute), the rest execute on
    /// the pool and are appended to the journal as they finish. Because
    /// frame seeds derive from `(batch_seed, index)`, the merged result
    /// is bit-identical to an uninterrupted [`Supervisor::run_batch`] of
    /// the same campaign — a crash costs only the unfinished frames.
    ///
    /// On completion the journal is compacted to its snapshot and marked
    /// done.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on misconfiguration, or
    /// [`RuntimeError::Journal`] when a checkpoint cannot be written —
    /// durability failures are loud, not silently skipped.
    pub fn run_batch_journaled(
        &self,
        engine: &Arc<dyn Engine>,
        frames: &[Image],
        batch_seed: u64,
        journal: &crate::journal::BatchJournal,
    ) -> Result<BatchResult, RuntimeError> {
        use crate::journal::RecordedFrame;

        self.check_config()?;
        let n = frames.len();
        let pending: Vec<usize> = (0..n).filter(|i| !journal.has_frame(*i)).collect();
        let replayed = n - pending.len();
        ta_telemetry::metrics()
            .counter("ta_runtime_frames_replayed_total")
            .add(replayed as u64);

        // Checkpoint concurrently with execution: each worker appends its
        // frame record the moment the frame is supervised, so a crash
        // loses at most the frames still in flight. Append errors are
        // collected, not panicked, and fail the batch afterwards.
        let fresh = ta_pool::Pool::new(self.cfg.workers).map(pending.len(), |j| {
            let i = pending[j];
            let (out, report) = self.supervise_frame(engine, &frames[i], i, batch_seed);
            let rec = RecordedFrame::from_result(i, &out, &report);
            let append = journal.append_frame(&rec);
            (rec, out, report, append)
        });

        let mut records = journal.recovered().clone();
        let mut fresh_map = std::collections::BTreeMap::new();
        let mut checkpoint_failure: Option<String> = None;
        for (rec, out, report, append) in fresh {
            if let Err(e) = append {
                checkpoint_failure.get_or_insert(e.to_string());
            }
            records.insert(rec.frame, rec);
            fresh_map.insert(report.frame, (out, report));
        }
        if let Some(e) = checkpoint_failure {
            return Err(RuntimeError::Journal(e));
        }

        let mut outputs = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for i in 0..n {
            if let Some((out, report)) = fresh_map.remove(&i) {
                outputs.push(out);
                reports.push(report);
            } else if let Some(rec) = journal.recovered().get(&i) {
                let report = FrameReport {
                    frame: i,
                    status: rec.status(),
                    attempts: rec.attempts,
                    latency: Duration::ZERO,
                    attempt_latencies: Vec::new(),
                    log: vec!["replayed from journal".to_string()],
                };
                publish_report(&report);
                outputs.push(rec.outputs.clone());
                reports.push(report);
            } else {
                unreachable!("every frame is either pending or recovered")
            }
        }

        journal
            .finish(&records)
            .map_err(|e| RuntimeError::Journal(e.to_string()))?;
        let stats = journal.stats();
        let m = ta_telemetry::metrics();
        m.gauge("ta_runtime_journal_bytes").set(stats.bytes as f64);
        m.gauge("ta_runtime_journal_records")
            .set(stats.records as f64);

        let health = HealthReport::from_reports(&reports);
        Ok(BatchResult {
            outputs,
            reports,
            health,
        })
    }

    fn supervise_frame(
        &self,
        engine: &Arc<dyn Engine>,
        image: &Image,
        frame: usize,
        batch_seed: u64,
    ) -> (Option<Vec<Image>>, FrameReport) {
        let (out, report) = self.supervise_frame_inner(engine, image, frame, batch_seed);
        publish_report(&report);
        (out, report)
    }

    fn supervise_frame_inner(
        &self,
        engine: &Arc<dyn Engine>,
        image: &Image,
        frame: usize,
        batch_seed: u64,
    ) -> (Option<Vec<Image>>, FrameReport) {
        let started = Instant::now();
        // One generation-tagged result slot serves every attempt of this
        // frame (and the fallback run): an abandoned hung worker from an
        // earlier attempt is invalidated at its timeout and cannot write
        // into the slot once it has been reused.
        let slot = AttemptSlot::new();
        let frame_seed = derive_seed(batch_seed, frame as u64);
        // Backoff jitter draws from its own domain-separated stream: the
        // old `derive_seed(self.cfg.seed, frame)` collided with the frame
        // seeds whenever `cfg.seed == batch_seed`, coupling retry timing
        // to the engine's noise.
        let mut jitter_rng = SmallRng::seed_from_u64(derive_stream_seed(
            self.cfg.seed,
            SeedDomain::Backoff,
            frame as u64,
        ));
        let references = self.references_for(image);
        let mut log = Vec::new();
        let mut attempts = 0;
        let mut attempt_latencies = Vec::new();
        let mut last_failure = None;

        while attempts <= self.cfg.retry.max_retries {
            let attempt = attempts;
            attempts += 1;
            let (outcome, took) = self.attempt(&slot, engine, image, frame_seed, attempt);
            attempt_latencies.push(took);
            let failure = match outcome {
                Ok(run) => match self.validate(&run, references.as_deref()) {
                    Ok(()) => {
                        return (
                            Some(run.outputs),
                            FrameReport {
                                frame,
                                status: FrameStatus::Ok,
                                attempts,
                                latency: started.elapsed(),
                                attempt_latencies,
                                log,
                            },
                        );
                    }
                    Err(v) => FailureKind::Validation(v),
                },
                Err(f) => f,
            };
            // Failure paths are rare by construction, so they can afford
            // a trace event (carrying the current trace scope, so a
            // flight-recorder bundle ties the attempt to its request)
            // and an anomaly report.
            ta_telemetry::tracer().event(
                "supervisor.attempt_failed",
                vec![
                    ("frame", frame.into()),
                    ("attempt", u64::from(attempt).into()),
                    (
                        "failure",
                        ta_telemetry::FieldValue::Str(failure.to_string()),
                    ),
                ],
            );
            match &failure {
                FailureKind::Timeout { .. } => {
                    ta_telemetry::metrics()
                        .counter("ta_runtime_timeouts_total")
                        .inc();
                    ta_telemetry::report_anomaly(
                        ta_telemetry::AnomalyKind::WatchdogTimeout,
                        vec![
                            ("frame", frame.into()),
                            ("attempt", u64::from(attempt).into()),
                        ],
                    );
                }
                FailureKind::Panic(_) => {
                    ta_telemetry::report_anomaly(
                        ta_telemetry::AnomalyKind::Panic,
                        vec![
                            ("frame", frame.into()),
                            ("attempt", u64::from(attempt).into()),
                        ],
                    );
                }
                _ => {}
            }
            log.push(format!("attempt {attempt}: {failure}"));
            last_failure = Some(failure);
            if attempts <= self.cfg.retry.max_retries {
                thread::sleep(self.backoff(attempt, &mut jitter_rng));
            }
        }

        let Some(cause) = last_failure else {
            unreachable!("the loop records a failure before exiting")
        };
        let (out, status) = self.degrade(&slot, image, references, cause, &mut log);
        (
            out,
            FrameReport {
                frame,
                status,
                attempts,
                latency: started.elapsed(),
                attempt_latencies,
                log,
            },
        )
    }

    /// Reference outputs for validation / fallback, if either needs them.
    fn references_for(&self, image: &Image) -> Option<Vec<Image>> {
        let needed = self.cfg.validation.nrmse_tolerance.is_some()
            || matches!(self.fallback, Some(Fallback::Reference));
        if !needed {
            return None;
        }
        self.reference.as_ref().map(|r| r.reference_outputs(image))
    }

    /// One attempt, panic-isolated and (when configured) watchdogged.
    /// Returns the outcome together with what the attempt cost the frame
    /// in wall-clock time; a timed-out attempt costs exactly its watchdog
    /// budget (the abandoned worker's further runtime is not the frame's).
    ///
    /// All watchdogged attempts of one frame share `slot`: the slot's
    /// generation tag guarantees an abandoned worker from an earlier
    /// attempt can never publish into a later attempt's result
    /// (see [`crate::watchdog`]).
    fn attempt(
        &self,
        slot: &AttemptSlot,
        engine: &Arc<dyn Engine>,
        image: &Image,
        seed: u64,
        attempt: u32,
    ) -> (Result<RunResult, FailureKind>, Duration) {
        let clock = Instant::now();
        match self.cfg.timeout {
            None => {
                let out = unwind_to_failure(catch_unwind(AssertUnwindSafe(|| {
                    engine.run_frame(image, seed, attempt)
                })));
                (out, clock.elapsed())
            }
            Some(budget) => {
                let worker_engine = Arc::clone(engine);
                let worker_image = image.clone();
                // Thread-locals do not inherit: if this supervision is
                // already running on a pool worker, hand the marker to
                // the watchdogged attempt thread so the engine's nested
                // frame parallelism stays inline there too.
                let in_pool = ta_pool::in_worker();
                let wait = slot.run_with_budget(
                    format!("ta-runtime-attempt-{attempt}"),
                    budget,
                    in_pool,
                    move || worker_engine.run_frame(&worker_image, seed, attempt),
                );
                match wait {
                    AttemptWait::Completed(Ok(out)) => {
                        (out.map_err(FailureKind::Engine), clock.elapsed())
                    }
                    AttemptWait::Completed(Err(payload)) => (
                        Err(FailureKind::Panic(panic_message(payload.as_ref()))),
                        clock.elapsed(),
                    ),
                    // The attempt thread is abandoned: the slot bumped its
                    // generation first, so whatever the worker eventually
                    // produces is discarded at the slot, and the frame's
                    // budget is spent.
                    AttemptWait::TimedOut => (Err(FailureKind::Timeout { budget }), budget),
                    AttemptWait::SpawnFailed(e) => (
                        Err(FailureKind::Panic(format!("failed to spawn worker: {e}"))),
                        clock.elapsed(),
                    ),
                }
            }
        }
    }

    fn validate(
        &self,
        run: &RunResult,
        references: Option<&[Image]>,
    ) -> Result<(), ValidationError> {
        match (self.cfg.validation.nrmse_tolerance, references) {
            (Some(tol), Some(refs)) => run.validate_against(refs, tol),
            _ => {
                if self.cfg.validation.require_finite {
                    run.validate_finite()
                } else {
                    Ok(())
                }
            }
        }
    }

    fn backoff(&self, failed_attempt: u32, rng: &mut SmallRng) -> Duration {
        let r = &self.cfg.retry;
        let base = r.base_backoff.as_secs_f64();
        let cap = r.max_backoff.as_secs_f64();
        let exp = base * 2f64.powi(failed_attempt.min(30) as i32);
        let jitter = if r.jitter > 0.0 {
            // Drawn even when the backoff is zero so the jitter stream
            // stays aligned across configurations.
            1.0 + r.jitter.min(1.0) * rng.gen_range(-1.0..1.0)
        } else {
            1.0
        };
        Duration::from_secs_f64((exp.min(cap) * jitter).max(0.0))
    }

    /// Retry budget exhausted: produce fallback output if configured.
    fn degrade(
        &self,
        slot: &AttemptSlot,
        image: &Image,
        references: Option<Vec<Image>>,
        cause: FailureKind,
        log: &mut Vec<String>,
    ) -> (Option<Vec<Image>>, FrameStatus) {
        match &self.fallback {
            None => (None, FrameStatus::Failed { cause }),
            Some(Fallback::Reference) => {
                ta_telemetry::metrics()
                    .counter("ta_runtime_fallback_runs_total")
                    .inc();
                let refs = references
                    .or_else(|| self.reference.as_ref().map(|r| r.reference_outputs(image)));
                let Some(outs) = refs else {
                    // check_config guarantees a reference is attached.
                    unreachable!("Fallback::Reference without a reference engine")
                };
                let name = self
                    .reference
                    .as_ref()
                    .map_or_else(|| "reference".to_owned(), |r| r.name().to_owned());
                log.push(format!("fallback: served by {name}"));
                (
                    Some(outs),
                    FrameStatus::Degraded {
                        fallback: name,
                        cause,
                    },
                )
            }
            Some(Fallback::Engine(fb)) => {
                // The fallback engine is trusted by configuration, so it
                // gets one panic-isolated, watchdogged attempt and only a
                // finite-ness safety net — not the drift tolerance, which
                // may be unsatisfiable under the fault that got us here.
                let seed = derive_seed(self.cfg.seed, 0xfb);
                ta_telemetry::metrics()
                    .counter("ta_runtime_fallback_runs_total")
                    .inc();
                match self.attempt(slot, fb, image, seed, 0).0 {
                    Ok(run) => {
                        if self.cfg.validation.require_finite {
                            if let Err(v) = run.validate_finite() {
                                log.push(format!("fallback {} rejected: {v}", fb.name()));
                                return (
                                    None,
                                    FrameStatus::Failed {
                                        cause: FailureKind::Validation(v),
                                    },
                                );
                            }
                        }
                        log.push(format!("fallback: served by {}", fb.name()));
                        (
                            Some(run.outputs),
                            FrameStatus::Degraded {
                                fallback: fb.name().to_owned(),
                                cause,
                            },
                        )
                    }
                    Err(f) => {
                        log.push(format!("fallback {} failed: {f}", fb.name()));
                        (None, FrameStatus::Failed { cause: f })
                    }
                }
            }
        }
    }
}

/// Publishes one frame's disposition into the global telemetry: a handful
/// of atomic counter/histogram updates per *frame* unconditionally, plus
/// per-frame and per-attempt spans when a live trace sink is installed.
fn publish_report(report: &FrameReport) {
    let m = ta_telemetry::metrics();
    m.counter("ta_runtime_frames_total").inc();
    m.counter("ta_runtime_attempts_total")
        .add(u64::from(report.attempts));
    if report.attempts > 1 {
        m.counter("ta_runtime_retries_total")
            .add(u64::from(report.attempts - 1));
    }
    match &report.status {
        FrameStatus::Ok => {}
        FrameStatus::Degraded { .. } => {
            m.counter("ta_runtime_degraded_total").inc();
            ta_telemetry::report_anomaly(
                ta_telemetry::AnomalyKind::DegradedFrame,
                vec![
                    ("frame", report.frame.into()),
                    ("attempts", u64::from(report.attempts).into()),
                ],
            );
        }
        FrameStatus::Failed { .. } => {
            m.counter("ta_runtime_failed_total").inc();
            ta_telemetry::report_anomaly(
                ta_telemetry::AnomalyKind::FailedFrame,
                vec![
                    ("frame", report.frame.into()),
                    ("attempts", u64::from(report.attempts).into()),
                ],
            );
        }
    }
    let attempt_hist = m.histogram("ta_runtime_attempt_seconds");
    for &took in &report.attempt_latencies {
        attempt_hist.observe_duration(took);
    }
    m.histogram("ta_runtime_frame_seconds")
        .observe_duration(report.latency);

    let tracer = ta_telemetry::tracer();
    if !tracer.active() {
        return;
    }
    for (i, &took) in report.attempt_latencies.iter().enumerate() {
        tracer.record_span(
            "supervisor.attempt",
            took,
            vec![("frame", report.frame.into()), ("attempt", i.into())],
        );
    }
    tracer.record_span(
        "supervisor.frame",
        report.latency,
        vec![
            ("frame", report.frame.into()),
            ("attempts", u64::from(report.attempts).into()),
            (
                "status",
                ta_telemetry::FieldValue::Str(report.status.to_string()),
            ),
        ],
    );
}

/// Collapses `catch_unwind`'s nesting into the supervisor's failure type.
fn unwind_to_failure(
    out: Result<Result<RunResult, ta_core::Error>, Box<dyn std::any::Any + Send>>,
) -> Result<RunResult, FailureKind> {
    match out {
        Ok(Ok(run)) => Ok(run),
        Ok(Err(e)) => Err(FailureKind::Engine(e)),
        Err(payload) => Err(FailureKind::Panic(panic_message(payload.as_ref()))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn backoff_grows_caps_and_reproduces() {
        let sup = Supervisor::new(SupervisorConfig {
            retry: RetryPolicy {
                max_retries: 5,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(40),
                jitter: 0.0,
            },
            ..SupervisorConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(sup.backoff(0, &mut rng), Duration::from_millis(10));
        assert_eq!(sup.backoff(1, &mut rng), Duration::from_millis(20));
        assert_eq!(sup.backoff(2, &mut rng), Duration::from_millis(40));
        assert_eq!(
            sup.backoff(3, &mut rng),
            Duration::from_millis(40),
            "capped"
        );

        let jittered = Supervisor::new(SupervisorConfig {
            retry: RetryPolicy {
                jitter: 0.5,
                ..RetryPolicy::default()
            },
            ..SupervisorConfig::default()
        });
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(jittered.backoff(0, &mut a), jittered.backoff(0, &mut b));
    }

    #[test]
    fn backoff_jitter_stream_never_aliases_frame_seeds() {
        // Regression: the jitter RNG used to seed from the same
        // `derive_seed(seed, frame)` as the frame seeds, so running with
        // `cfg.seed == batch_seed` made retry timing draw from the exact
        // stream driving the engine's noise. The jitter stream now lives
        // in its own derivation domain.
        for seed in [0u64, 7, 42, u64::MAX] {
            for frame in 0..64u64 {
                assert_ne!(
                    derive_stream_seed(seed, SeedDomain::Backoff, frame),
                    derive_seed(seed, frame),
                    "seed {seed} frame {frame}"
                );
            }
        }
    }

    #[test]
    fn misconfiguration_is_reported_before_running() {
        let sup = Supervisor::new(SupervisorConfig {
            validation: ValidationPolicy {
                require_finite: true,
                nrmse_tolerance: Some(0.1),
            },
            ..SupervisorConfig::default()
        });
        assert_eq!(
            sup.check_config(),
            Err(RuntimeError::MissingReference("nRMSE validation"))
        );
        let sup = Supervisor::new(SupervisorConfig::default()).with_fallback(Fallback::Reference);
        assert!(matches!(
            sup.check_config(),
            Err(RuntimeError::MissingReference(_))
        ));
        assert!(!format!("{}", RuntimeError::MissingReference("x")).is_empty());
    }

    #[test]
    fn panic_messages_are_extracted() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_owned()), "boom");
        assert_eq!(panic_message(&42_u32), "opaque panic payload");
    }
}
