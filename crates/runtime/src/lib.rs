//! Supervised execution runtime for temporal convolution jobs.
//!
//! The temporal engine is an *approximate* accelerator: its outputs carry
//! mode- and noise-dependent error, its hardware model can be subjected to
//! fault injection, and in a deployment it shares the pipeline with a
//! conventional digital path (DESIGN.md §5.8). This crate is the layer
//! that makes batch execution dependable anyway:
//!
//! * **Validation** — every frame's outputs are checked for NaN/Inf and,
//!   when a [`ReferenceEngine`](ta_baseline::ReferenceEngine) is attached,
//!   for nRMSE drift beyond a configured tolerance
//!   ([`ValidationPolicy`]).
//! * **Watchdog timeouts** — each attempt runs on its own worker thread;
//!   if it misses its deadline the supervisor abandons it and moves on
//!   ([`SupervisorConfig::timeout`]).
//! * **Seeded retry** — failed attempts are retried with exponential
//!   backoff plus deterministic jitter; all randomness derives from the
//!   batch seed, so retried/degraded counts reproduce exactly
//!   ([`RetryPolicy`]).
//! * **Panic isolation** — a panicking job is caught per attempt and
//!   treated as one more failure, never aborting the batch.
//! * **Graceful degradation** — once the retry budget is exhausted, the
//!   frame falls back to a trusted engine (exact-mode temporal or the
//!   digital reference) and is marked [`FrameStatus::Degraded`] rather
//!   than lost ([`Fallback`]).
//! * **Health reporting** — per-batch ok/retried/degraded/failed counts
//!   and latency percentiles ([`HealthReport`]).
//!
//! The entry point is [`Supervisor::run_batch`]; [`TemporalEngine`] and
//! [`FaultyTemporalEngine`] adapt `ta_core::exec` to the [`Engine`]
//! contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod health;
pub mod journal;
pub mod supervisor;
pub mod watchdog;

pub use engine::{derive_seed, Engine, FaultyTemporalEngine, TemporalEngine};
pub use health::{BatchResult, FrameReport, FrameStatus, HealthReport, LatencyStats};
pub use journal::{
    hash_images, BatchJournal, BatchJournalError, BatchMeta, Fingerprint, RecordedFrame,
};
pub use supervisor::{
    FailureKind, Fallback, RetryPolicy, RuntimeError, Supervisor, SupervisorConfig,
    ValidationPolicy,
};
pub use watchdog::{AttemptSlot, AttemptWait};
