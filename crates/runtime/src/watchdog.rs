//! Generation-tagged watchdog slot for supervised attempts.
//!
//! The supervisor gives every attempt a wall-clock budget. When the
//! budget expires the attempt's worker thread is *abandoned* — it may
//! still be deep inside the engine and cannot be cancelled. The hazard is
//! what happens when that hung worker eventually finishes: if the
//! completion path can still reach the frame's result slot, a stale
//! attempt can overwrite the output of the attempt (or fallback) that
//! legitimately served the frame, corrupting a frame that was already
//! reported healthy.
//!
//! [`AttemptSlot`] closes that window with a generation tag. One slot
//! lives for the whole supervised frame and is reused by every attempt
//! (and the fallback run):
//!
//! * each [`AttemptSlot::run_with_budget`] call bumps the generation and
//!   clears the slot before spawning its worker;
//! * the worker re-checks the generation *under the slot lock* before
//!   publishing: a worker whose generation is no longer current discards
//!   its result, counts itself in `ta_runtime_stale_attempts_total`, and
//!   exits without touching the slot;
//! * a timeout bumps the generation at the moment of abandonment
//!   (join-or-detach: completed workers are joined, abandoned ones are
//!   detached *after* being invalidated, so there is no interleaving in
//!   which a stale write lands).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// A stale or live attempt's payload: `Ok` carries the closure's return
/// value, `Err` the panic payload.
type Published = Result<Box<dyn Any + Send>, Box<dyn Any + Send>>;

#[derive(Default)]
struct State {
    /// Current attempt generation; bumped on every run and on timeout.
    generation: u64,
    /// The current generation's published outcome, if it finished in
    /// budget.
    outcome: Option<Published>,
}

struct Inner {
    state: Mutex<State>,
    done: Condvar,
}

/// How one budgeted attempt ended.
pub enum AttemptWait<T> {
    /// The worker finished within budget: its return value, or the panic
    /// payload it died with.
    Completed(Result<T, Box<dyn Any + Send>>),
    /// The budget expired; the worker was invalidated and detached. Its
    /// eventual completion cannot write into this slot.
    TimedOut,
    /// The worker thread could not be spawned at all.
    SpawnFailed(std::io::Error),
}

/// A reusable, generation-tagged result slot for watchdogged attempts.
/// See the module docs for the protocol.
pub struct AttemptSlot {
    inner: Arc<Inner>,
}

impl Default for AttemptSlot {
    fn default() -> Self {
        AttemptSlot::new()
    }
}

impl AttemptSlot {
    /// A fresh slot at generation zero.
    pub fn new() -> Self {
        AttemptSlot {
            inner: Arc::new(Inner {
                state: Mutex::new(State::default()),
                done: Condvar::new(),
            }),
        }
    }

    /// Runs `work` on a named worker thread and waits up to `budget` for
    /// it to publish. `mark_pool_worker` propagates the caller's
    /// [`ta_pool`] worker flag onto the worker thread (thread-locals do
    /// not inherit), preserving the no-nested-parallelism guarantee
    /// across the hop.
    pub fn run_with_budget<T: Send + 'static>(
        &self,
        thread_name: String,
        budget: Duration,
        mark_pool_worker: bool,
        work: impl FnOnce() -> T + Send + 'static,
    ) -> AttemptWait<T> {
        let generation = {
            let mut state = lock_clean(&self.inner.state);
            state.generation += 1;
            state.outcome = None;
            state.generation
        };

        let inner = Arc::clone(&self.inner);
        let spawned = thread::Builder::new().name(thread_name).spawn(move || {
            let _pool_marker = mark_pool_worker.then(ta_pool::enter_worker);
            let out = catch_unwind(AssertUnwindSafe(work));
            let published: Published = match out {
                Ok(v) => Ok(Box::new(v) as Box<dyn Any + Send>),
                Err(payload) => Err(payload),
            };
            let mut state = lock_clean(&inner.state);
            if state.generation == generation {
                state.outcome = Some(published);
                drop(state);
                inner.done.notify_all();
            } else {
                // This worker was abandoned by a timeout: its slot has
                // been reused (or invalidated). Dropping the result here,
                // under the lock that guards the generation, is what
                // makes a stale write impossible.
                drop(state);
                ta_telemetry::metrics()
                    .counter("ta_runtime_stale_attempts_total")
                    .inc();
                let tracer = ta_telemetry::tracer();
                if tracer.active() {
                    tracer.event(
                        "supervisor.stale_attempt",
                        vec![("generation", generation.into())],
                    );
                }
            }
        });
        let handle = match spawned {
            Ok(h) => h,
            Err(e) => return AttemptWait::SpawnFailed(e),
        };

        let state = lock_clean(&self.inner.state);
        let (mut state, wait) = match self
            .inner
            .done
            .wait_timeout_while(state, budget, |s| s.outcome.is_none())
        {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(published) = state.outcome.take() {
            drop(state);
            // The worker has published and is exiting; join it so a
            // completed-in-budget attempt never leaves a detached thread.
            let _ = handle.join();
            return AttemptWait::Completed(reclaim::<T>(published));
        }
        debug_assert!(wait.timed_out());
        // Invalidate *before* detaching: any later completion by this
        // worker sees a newer generation and discards itself.
        state.generation += 1;
        drop(state);
        drop(handle);
        AttemptWait::TimedOut
    }
}

/// Downcasts a published outcome back to the caller's concrete type.
fn reclaim<T: 'static>(published: Published) -> Result<T, Box<dyn Any + Send>> {
    match published {
        Ok(boxed) => match boxed.downcast::<T>() {
            Ok(v) => Ok(*v),
            // The slot is cleared before each run and writes are
            // generation-checked, so the published value is always the
            // type this very call stored.
            Err(_) => unreachable!("attempt slot published a foreign type"),
        },
        Err(payload) => Err(payload),
    }
}

/// Poison-tolerant lock: the state is a plain value that is always left
/// consistent, so a panicking peer must not wedge the watchdog.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn completion_within_budget_returns_the_value() {
        let slot = AttemptSlot::new();
        match slot.run_with_budget("t".into(), Duration::from_secs(5), false, || 41 + 1) {
            AttemptWait::Completed(Ok(v)) => assert_eq!(v, 42),
            _ => panic!("expected completion"),
        }
    }

    #[test]
    fn panic_is_reported_not_propagated() {
        let slot = AttemptSlot::new();
        match slot
            .run_with_budget::<()>("t".into(), Duration::from_secs(5), false, || panic!("boom"))
        {
            AttemptWait::Completed(Err(payload)) => {
                assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
            }
            _ => panic!("expected a caught panic"),
        }
    }

    #[test]
    fn timeout_detaches_and_stale_write_is_discarded() {
        let slot = AttemptSlot::new();
        let stale = ta_telemetry::metrics().counter("ta_runtime_stale_attempts_total");
        let before = stale.get();

        // Attempt 1 stalls far past its budget, then "completes" with a
        // poison value.
        match slot.run_with_budget("stall".into(), Duration::from_millis(20), false, || {
            thread::sleep(Duration::from_millis(120));
            0xdead_u64
        }) {
            AttemptWait::TimedOut => {}
            _ => panic!("expected timeout"),
        }

        // Attempt 2 reuses the same slot and takes long enough that the
        // stalled worker finishes *while attempt 2 is in flight* — the
        // reuse window the generation tag exists to close.
        match slot.run_with_budget("retry".into(), Duration::from_secs(5), false, || {
            thread::sleep(Duration::from_millis(150));
            0xf00d_u64
        }) {
            AttemptWait::Completed(Ok(v)) => assert_eq!(v, 0xf00d, "stale write must not win"),
            _ => panic!("expected completion"),
        }

        // The stalled worker observed its invalidation and counted
        // itself stale (it finished ~30 ms into attempt 2).
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while stale.get() < before + 1 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(stale.get() > before, "stale completion must be counted");
    }

    #[test]
    fn generations_are_monotonic_across_reuse() {
        let slot = AttemptSlot::new();
        let seen = Arc::new(AtomicU64::new(0));
        for i in 0..5u64 {
            let seen = Arc::clone(&seen);
            match slot.run_with_budget("g".into(), Duration::from_secs(5), false, move || {
                seen.fetch_add(1, Ordering::Relaxed);
                i
            }) {
                AttemptWait::Completed(Ok(v)) => assert_eq!(v, i),
                _ => panic!("expected completion"),
            }
        }
        assert_eq!(seen.load(Ordering::Relaxed), 5);
    }
}
