//! Criterion bench harness for the temporal-arithmetic reproduction.
//!
//! Each bench target regenerates one paper table/figure at a reduced size
//! (printing its rows before measurement, so `cargo bench` doubles as a
//! results run) and then times the computation that dominates it. The
//! `micro` target times the arithmetic kernels themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a banner followed by an experiment's rendered output, once per
/// bench process, so `cargo bench` output contains the regenerated rows.
pub fn print_experiment(name: &str, rendered: &str) {
    println!("\n===== {name} (regenerated at bench scale) =====");
    println!("{rendered}");
}
