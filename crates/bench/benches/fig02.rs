//! Fig 2 bench: exact nLSE surface evaluation.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = ta_experiments::fig02::compute(17);
    ta_bench::print_experiment("Fig 2", &ta_experiments::fig02::render(&data));
    c.bench_function("fig02/nlse_surface_17x17", |b| {
        b.iter(|| ta_experiments::fig02::compute(black_box(17)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
