//! Fig 13 bench: the VTC-noise sensitivity sweep (quick grid).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let params = ta_experiments::fig13::Params::quick(1);
    let data = ta_experiments::fig13::compute(&params);
    ta_bench::print_experiment("Fig 13 (quick grid)", &ta_experiments::fig13::render(&data));
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("vtc_noise_quick_grid", |b| {
        b.iter(|| ta_experiments::fig13::compute(&params))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
