//! Fig 6 bench: gate-level netlist evaluation of the shared-chain unit.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ta_approx::NlseApprox;
use ta_delay_space::DelayValue;
use ta_race_logic::blocks;

fn bench(c: &mut Criterion) {
    let rows = ta_experiments::fig06::compute(&[2, 4, 7]);
    ta_bench::print_experiment("Fig 6", &ta_experiments::fig06::render(&rows));
    let approx = NlseApprox::fit(7);
    let k = approx.required_shift();
    let naive = blocks::nlse_circuit(approx.terms(), k, false).unwrap();
    let shared = blocks::nlse_circuit(approx.terms(), k, true).unwrap();
    let x = DelayValue::from_delay(1.2);
    let y = DelayValue::from_delay(0.4);
    c.bench_function("fig06/netlist_naive_7terms", |b| {
        b.iter(|| naive.evaluate(black_box(&[x, y])).unwrap())
    });
    c.bench_function("fig06/netlist_shared_7terms", |b| {
        b.iter(|| shared.evaluate(black_box(&[x, y])).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
