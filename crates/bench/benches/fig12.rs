//! Fig 12 bench: the design-space exploration sweep (quick grid).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let params = ta_experiments::fig12::Params::quick(1);
    let points = ta_experiments::fig12::compute(&params);
    ta_bench::print_experiment(
        "Fig 12 (quick grid)",
        &ta_experiments::fig12::render(&points),
    );
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("dse_quick_grid", |b| {
        b.iter(|| ta_experiments::fig12::compute(&params))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
