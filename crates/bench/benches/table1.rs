//! Table 1 bench: kernel construction.
use criterion::{criterion_group, criterion_main, Criterion};
use ta_image::Kernel;

fn bench(c: &mut Criterion) {
    ta_bench::print_experiment("Table 1", &ta_experiments::table1::render());
    c.bench_function("table1/build_benchmark_kernels", |b| {
        b.iter(|| {
            (
                Kernel::sobel_x(),
                Kernel::sobel_y(),
                Kernel::pyr_down_5x5(),
                Kernel::gaussian(7, 0.0),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
