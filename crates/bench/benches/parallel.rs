//! Parallel-scaling bench for the work-stealing frame engine (DESIGN.md
//! §5.10): frame throughput at 1/2/4 workers on a 256×256 sobel frame,
//! plus the 1-thread pool dispatch overhead against a bare serial loop.
//!
//! Results land in `BENCH_parallel.json` at the repository root — the
//! start of the perf trajectory the ROADMAP asks for. Two knobs:
//!
//! * `--bench` (criterion's own flag): full-size frames and the JSON
//!   artifact; without it (plain `cargo test`) everything shrinks to a
//!   single smoke iteration and no file is written.
//! * `TA_BENCH_SMOKE=1`: CI smoke mode — 64×64 frames and fewer rounds,
//!   still writing the JSON artifact so the job can upload it.
//!
//! The 1-thread overhead check is a hard assertion (<5%): the pool's
//! inline path *is* the serial engine, so regressing it would tax every
//! single-core user for parallelism they never asked for. The multi-
//! thread speedups are recorded, not asserted — they depend on the host,
//! and entries measured with more workers than the host has cores are
//! written as `null` (with a `note`) rather than as fabricated ratios.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{synth, Image, Kernel};

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn smoke_mode() -> bool {
    std::env::var("TA_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn arch_for(size: usize) -> Architecture {
    let desc = SystemDescription::new(size, size, vec![Kernel::sobel_x()], 1)
        .expect("sobel fits the frame");
    Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("feasible schedule")
}

/// Best-of-`rounds` seconds per frame at the given worker count.
fn frame_seconds(arch: &Architecture, img: &Image, threads: usize, rounds: usize) -> f64 {
    ta_pool::set_threads(threads);
    // Warmup outside the clock.
    black_box(exec::run(arch, img, ArithmeticMode::DelayApprox, 0).expect("clean run"));
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        black_box(exec::run(arch, img, ArithmeticMode::DelayApprox, 0).expect("clean run"));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Row-scale synthetic work item: enough floating point that dispatch
/// cost is a perturbation, little enough that 5% is measurable.
fn synthetic_row(i: usize) -> f64 {
    let mut acc = i as f64 + 1.0;
    for k in 0..4000 {
        acc = (acc + k as f64).ln().exp().sqrt() * 1.000_1 + 0.1;
    }
    acc
}

/// Best-of-`rounds` seconds for `n` synthetic rows: bare serial loop vs
/// the 1-worker pool path (which must run inline, within 5%).
fn dispatch_overhead(n: usize, rounds: usize) -> (f64, f64) {
    let bare = || {
        let mut sum = 0.0;
        for i in 0..n {
            sum += synthetic_row(i);
        }
        sum
    };
    let pooled = || {
        let pool = ta_pool::Pool::new(1);
        pool.run(n, || 0.0f64, |i, acc| *acc += synthetic_row(i))
            .into_iter()
            .sum::<f64>()
    };
    black_box(bare());
    black_box(pooled());
    let (mut bare_s, mut pool_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(bare());
        bare_s = bare_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(pooled());
        pool_s = pool_s.min(t.elapsed().as_secs_f64());
    }
    (bare_s, pool_s)
}

fn bench(c: &mut Criterion) {
    let full = bench_mode();
    let smoke = smoke_mode();
    let (size, rounds) = match (full, smoke) {
        (_, true) => (64, 3),
        (true, false) => (256, 5),
        (false, false) => (32, 1),
    };
    let arch = arch_for(size);
    let img = synth::natural_image(size, size, 1);

    let t1 = frame_seconds(&arch, &img, 1, rounds);
    let t2 = frame_seconds(&arch, &img, 2, rounds);
    let t4 = frame_seconds(&arch, &img, 4, rounds);
    ta_pool::set_threads(0);

    let (bare_s, pool_s) = dispatch_overhead(if full || smoke { 256 } else { 16 }, rounds.max(3));
    let overhead_raw_pct = (pool_s / bare_s - 1.0) * 100.0;
    // Readings below this magnitude are indistinguishable from timer
    // noise on the harness (best-of-N over ~ms-scale loops routinely
    // jitters by about a percent), and a *negative* overhead — the
    // pooled path beating the bare serial loop it wraps — is noise by
    // construction at any magnitude. The recorded headline is clamped to
    // zero below the floor so the <5% CI gate reads a physical quantity
    // instead of crediting noise; the raw signed reading is preserved
    // alongside it.
    const OVERHEAD_NOISE_FLOOR_PCT: f64 = 1.0;
    let overhead_pct = if overhead_raw_pct < OVERHEAD_NOISE_FLOOR_PCT {
        0.0
    } else {
        overhead_raw_pct
    };
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    ta_bench::print_experiment(
        "Parallel frame scaling",
        &format!(
            "sobel-x approx {size}×{size}, best of {rounds} rounds, {cores} core(s)\n\
             1 thread   {:9.3} ms/frame\n\
             2 threads  {:9.3} ms/frame  ({:.2}×)\n\
             4 threads  {:9.3} ms/frame  ({:.2}×)\n\
             pool dispatch overhead at 1 thread: {overhead_pct:.2}% \
             (raw {overhead_raw_pct:+.2}%, noise floor {OVERHEAD_NOISE_FLOOR_PCT}%, budget 5%)\n",
            t1 * 1e3,
            t2 * 1e3,
            t1 / t2,
            t4 * 1e3,
            t1 / t4,
        ),
    );

    if full || smoke {
        // A speedup measured with more workers than the host has cores is
        // an artifact of timeslicing, not a scaling result: report `null`
        // for those entries (and for the whole field on a 1-core host)
        // instead of a fabricated ratio, plus a note saying why. The raw
        // ms/frame numbers stay — they are real measurements either way.
        let speedup_entry = |threads: usize, t: f64| {
            if cores >= threads {
                format!("{:.4}", t1 / t)
            } else {
                "null".to_owned()
            }
        };
        let speedup = if cores >= 2 {
            format!(
                "{{\"2\": {}, \"4\": {}}}",
                speedup_entry(2, t2),
                speedup_entry(4, t4)
            )
        } else {
            "null".to_owned()
        };
        let note = if cores < 4 {
            format!(
                ",\n  \"note\": \"host has {cores} core(s); speedups at thread counts \
                 above the core count are reported as null\""
            )
        } else {
            String::new()
        };
        let json = format!(
            "{{\n  \"bench\": \"parallel_scaling\",\n  \"kernel\": \"sobel_x\",\n  \
             \"mode\": \"DelayApprox\",\n  \"frame\": {size},\n  \"rounds\": {rounds},\n  \
             \"host_cores\": {cores},\n  \"smoke\": {smoke},\n  \
             \"ms_per_frame\": {{\"1\": {:.6}, \"2\": {:.6}, \"4\": {:.6}}},\n  \
             \"speedup\": {speedup},\n  \
             \"pool_overhead_1thread_pct\": {overhead_pct:.4},\n  \
             \"pool_overhead_1thread_pct_raw\": {overhead_raw_pct:.4},\n  \
             \"overhead_note\": \"readings below the {OVERHEAD_NOISE_FLOOR_PCT}% noise floor \
             (including negative ones, which are physically impossible) are clamped to 0; \
             the raw field keeps the signed measurement\"{note}\n}}\n",
            t1 * 1e3,
            t2 * 1e3,
            t4 * 1e3,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
        std::fs::write(path, json).expect("write BENCH_parallel.json");
        // The 1-thread contract is host-independent; the speedups are
        // not, so they are recorded above rather than asserted here. The
        // gate reads the raw measurement: the clamp exists so the
        // *artifact* cannot under-report overhead as a negative number,
        // not to loosen the assertion.
        assert!(
            overhead_raw_pct < 5.0,
            "1-thread pool path must stay within 5% of the bare serial loop, \
             got {overhead_raw_pct:.2}%"
        );
    }

    c.bench_function(&format!("parallel/frame_{size}x{size}_1t"), |b| {
        ta_pool::set_threads(1);
        b.iter(|| exec::run(&arch, black_box(&img), ArithmeticMode::DelayApprox, 0));
    });
    c.bench_function(&format!("parallel/frame_{size}x{size}_4t"), |b| {
        ta_pool::set_threads(4);
        b.iter(|| exec::run(&arch, black_box(&img), ArithmeticMode::DelayApprox, 0));
    });
    ta_pool::set_threads(0);
}

criterion_group!(benches, bench);
criterion_main!(benches);
