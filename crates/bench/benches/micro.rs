//! Micro-benches of the arithmetic kernels: exact vs approximate vs noisy
//! nLSE, the nLDE staircase, split-value MACs, and the VTC.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use ta_circuits::{NlseUnit, NoiseModel, UnitScale, VtcModel};
use ta_delay_space::{ops, DelayValue, SplitValue};

fn bench(c: &mut Criterion) {
    let x = DelayValue::from_delay(0.8);
    let y = DelayValue::from_delay(1.7);
    c.bench_function("micro/nlse_exact", |b| {
        b.iter(|| ops::nlse(black_box(x), black_box(y)))
    });

    let unit = NlseUnit::with_terms(7, UnitScale::new(1.0, 50.0));
    c.bench_function("micro/nlse_approx_7terms", |b| {
        b.iter(|| unit.eval_ideal(black_box(x), black_box(y)))
    });

    let model = NoiseModel::asplos24(10.0);
    let mut rng = SmallRng::seed_from_u64(3);
    c.bench_function("micro/nlse_noisy_7terms", |b| {
        b.iter(|| {
            let r = model.begin_eval(UnitScale::new(1.0, 50.0), &mut rng);
            unit.eval_noisy(black_box(x), black_box(y), &r, &mut rng)
        })
    });

    let a = SplitValue::encode_signed(0.6).unwrap();
    let w = SplitValue::encode_signed(-0.25).unwrap();
    c.bench_function("micro/split_mac", |b| {
        b.iter(|| (black_box(a) * black_box(w) + black_box(a)).normalize())
    });

    let vtc = VtcModel::ideal(UnitScale::new(1.0, 50.0));
    c.bench_function("micro/vtc_convert", |b| {
        b.iter(|| vtc.convert_ideal(black_box(0.37)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
