//! Fig 11 bench: Monte-Carlo accuracy evaluation of the noisy unit.
use criterion::{criterion_group, criterion_main, Criterion};
use ta_circuits::{NoiseModel, UnitScale};

fn bench(c: &mut Criterion) {
    let terms = [1, 4, 7, 10];
    let data = ta_experiments::fig11::compute(&terms, 4_000, 1);
    ta_bench::print_experiment("Fig 11", &ta_experiments::fig11::render(&terms, &data));
    c.bench_function("fig11/noisy_accuracy_1k_samples", |b| {
        b.iter(|| {
            ta_experiments::fig11::noisy_nlse_accuracy(
                7,
                NoiseModel::asplos24(10.0),
                UnitScale::new(1.0, 50.0),
                1_000,
                9,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
