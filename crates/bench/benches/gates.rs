//! Gate-level netlist-optimizer bench (DESIGN.md §5.16): ms/frame of the
//! unoptimized full-sweep [`ta_core::GateEngine`] against the optimized
//! engine — constant folding, hash-consing, dead-gate elimination, and
//! event-driven evaluation — on the split-rail Sobel netlists.
//!
//! Event-driven evaluation is activity-dependent, so the bench times two
//! frames: the headline `speedup` uses [`Scene::VerticalBars`] — the
//! repo's "drives Sobel-x hard" scene, whose piecewise-constant columns
//! give the rolling-shutter scan the input coherence the evaluator is
//! built to exploit — and `speedup_natural` reports the same ratio on the
//! multi-octave natural-statistics image (every pixel distinct; the
//! worst case, where the win comes from gate elimination alone).
//!
//! Results land in `BENCH_gates.json` at the repository root. Knobs match
//! `sequential.rs`:
//!
//! * `--bench` (criterion's own flag): full-size frames and the JSON
//!   artifact; without it (plain `cargo test`) everything shrinks to a
//!   single smoke iteration and no file is written.
//! * `TA_BENCH_SMOKE=1`: CI smoke mode — small frames and fewer rounds,
//!   still writing the JSON artifact so the job can upload it.
//!
//! Three hard assertions whenever the artifact is written:
//!
//! * the optimized engine is bit-identical to the full-sweep golden
//!   engine on both benched frames — a perf win bought with different
//!   bits would be a bug, not an optimisation;
//! * the optimized engine is no slower than the sweep on either frame
//!   (>= 1.0×; the acceptance target at bench geometry is >= 5× on the
//!   coherent frame, and the measured ratios land in the artifact as
//!   `speedup` / `speedup_natural`);
//! * the optimizer eliminates at least 30% of Sobel's gates (the
//!   zero-weight column folds a third of every weight-matrix row away).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use ta_core::{ArchConfig, Architecture, GateEngine, SystemDescription};
use ta_image::synth::Scene;
use ta_image::{synth, Image, Kernel};

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn smoke_mode() -> bool {
    std::env::var("TA_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn arch_for(size: usize) -> Architecture {
    let desc = SystemDescription::new(size, size, vec![Kernel::sobel_x()], 1)
        .expect("sobel fits the frame");
    Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("feasible schedule")
}

/// Best-of-`rounds` seconds per frame plus the gate evaluations of one
/// frame for either engine flavour.
fn engine_seconds(
    engine: &GateEngine,
    arch: &Architecture,
    img: &Image,
    rounds: usize,
) -> (f64, u64) {
    let (_, stats) = engine.run_counted(arch, img).expect("gate run");
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        black_box(engine.run_counted(arch, black_box(img)).expect("gate run"));
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, stats.gate_evals)
}

fn bit_identical(
    optimized: &GateEngine,
    golden: &GateEngine,
    arch: &Architecture,
    img: &Image,
) -> bool {
    let opt = optimized.run(arch, img).expect("optimized run");
    let swp = golden.run(arch, img).expect("sweep run");
    opt.iter().zip(&swp).all(|(a, b)| {
        a.pixels()
            .iter()
            .zip(b.pixels())
            .all(|(pa, pb)| pa.to_bits() == pb.to_bits())
    })
}

fn bench(c: &mut Criterion) {
    let full = bench_mode();
    let smoke = smoke_mode();
    let (size, rounds) = match (full, smoke) {
        (_, true) => (48, 3),
        (true, false) => (96, 5),
        (false, false) => (16, 1),
    };
    let arch = arch_for(size);
    let bars = synth::scene(Scene::VerticalBars { period: 8 }, size, size, 1);
    let natural = synth::natural_image(size, size, 1);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let optimized = GateEngine::compile(&arch);
    let golden = GateEngine::compile_unoptimized(&arch);
    let summary = optimized.opt_summary().expect("compile() optimizes");
    let identical = bit_identical(&optimized, &golden, &arch, &bars)
        && bit_identical(&optimized, &golden, &arch, &natural);
    let (sweep_s, sweep_evals) = engine_seconds(&golden, &arch, &bars, rounds);
    let (opt_s, opt_evals) = engine_seconds(&optimized, &arch, &bars, rounds);
    let (nat_sweep_s, _) = engine_seconds(&golden, &arch, &natural, rounds);
    let (nat_opt_s, nat_opt_evals) = engine_seconds(&optimized, &arch, &natural, rounds);
    let speedup = sweep_s / opt_s;
    let speedup_natural = nat_sweep_s / nat_opt_s;
    let reduction = summary.reduction();
    let skipped = 1.0 - opt_evals as f64 / sweep_evals as f64;

    ta_bench::print_experiment(
        "Gate-level netlist optimizer + event-driven evaluation",
        &format!(
            "sobel-x gate engine {size}×{size}, best of {rounds} rounds\n\
             full-sweep golden     {:9.3} ms/frame  ({sweep_evals} gate evals)\n\
             optimized (bars)      {:9.3} ms/frame  ({opt_evals} gate evals, \
             {:.1}% skipped; {speedup:.2}×)\n\
             optimized (natural)   {:9.3} ms/frame  ({nat_opt_evals} gate evals; \
             {speedup_natural:.2}×)\n\
             netlists: {} -> {} gates ({:.1}% eliminated; {} folded, {} shared, \
             {} dead), {} deduped of {}\n\
             bit-identical outputs: {identical}\n",
            sweep_s * 1e3,
            opt_s * 1e3,
            skipped * 100.0,
            nat_opt_s * 1e3,
            summary.gates_pre,
            summary.gates_post,
            reduction * 100.0,
            summary.folded,
            summary.shared,
            summary.dead,
            summary.netlists_deduped,
            summary.netlists,
        ),
    );

    if full || smoke {
        let json = format!(
            "{{\n  \"bench\": \"gate_opt\",\n  \"kernel\": \"sobel_x\",\n  \
             \"scene\": \"vertical_bars_p8\",\n  \
             \"frame\": {size},\n  \"rounds\": {rounds},\n  \
             \"host_cores\": {cores},\n  \"smoke\": {smoke},\n  \
             \"gates\": {{\"pre\": {}, \"post\": {}, \"reduction\": {reduction:.4}, \
             \"folded\": {}, \"shared\": {}, \"dead\": {}}},\n  \
             \"netlists\": {{\"total\": {}, \"deduped\": {}}},\n  \
             \"gate_evals\": {{\"full_sweep\": {sweep_evals}, \
             \"event_driven\": {opt_evals}, \"event_driven_natural\": {nat_opt_evals}, \
             \"skipped_frac\": {skipped:.4}}},\n  \
             \"ms_per_frame\": {{\"full_sweep\": {:.6}, \"optimized\": {:.6}, \
             \"full_sweep_natural\": {:.6}, \"optimized_natural\": {:.6}}},\n  \
             \"speedup\": {speedup:.4},\n  \"speedup_natural\": {speedup_natural:.4},\n  \
             \"bit_identical\": {identical}\n}}\n",
            summary.gates_pre,
            summary.gates_post,
            summary.folded,
            summary.shared,
            summary.dead,
            summary.netlists,
            summary.netlists_deduped,
            sweep_s * 1e3,
            opt_s * 1e3,
            nat_sweep_s * 1e3,
            nat_opt_s * 1e3,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gates.json");
        std::fs::write(path, json).expect("write BENCH_gates.json");
        assert!(
            identical,
            "optimized gate engine must match the sweep bit-for-bit"
        );
        assert!(
            speedup >= 1.0,
            "optimized gate engine regressed vs full sweep: {speedup:.3}x"
        );
        assert!(
            speedup_natural >= 1.0,
            "optimized gate engine regressed on the natural frame: {speedup_natural:.3}x"
        );
        assert!(
            reduction >= 0.30,
            "optimizer eliminated only {:.1}% of Sobel's gates (floor 30%)",
            reduction * 100.0
        );
    }

    c.bench_function(&format!("gates/optimized_{size}x{size}"), |b| {
        b.iter(|| optimized.run(&arch, black_box(&bars)));
    });
    c.bench_function(&format!("gates/full_sweep_{size}x{size}"), |b| {
        b.iter(|| golden.run(&arch, black_box(&bars)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
