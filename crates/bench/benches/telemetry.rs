//! Telemetry-overhead bench: `exec::run_uninstrumented` (no telemetry
//! epilogue at all) versus the normal instrumented `exec::run` with a
//! no-op trace sink installed. Both execute the *same* hot-kernel
//! monomorphisation — the per-leaf counters and stage clocks live only in
//! the profiling twin, and the common path takes its op counts from the
//! closed form — so the measured difference is exactly the always-on
//! telemetry work (census fill, wall clock, metric publication). The
//! budget documented in DESIGN.md §5.9 is <2%.
//!
//! Under `--bench` the 2% budget is *asserted*, so a regression that
//! makes the disabled-telemetry path expensive fails CI rather than
//! drifting in silently. (Under `cargo test` the vendored criterion runs
//! single smoke iterations, far too noisy to gate on, so the assertion
//! is skipped.)
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{synth, Kernel};

const SIZE: usize = 32;

fn arch() -> Architecture {
    let desc = SystemDescription::new(SIZE, SIZE, vec![Kernel::sobel_x()], 1)
        .expect("sobel fits the frame");
    Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("feasible schedule")
}

fn bench(c: &mut Criterion) {
    // A no-op sink: wants_records() is false, so the tracer's fast path
    // (two relaxed atomic loads) short-circuits every span and event.
    // This is the configuration the 2% budget is defined against.
    ta_telemetry::tracer().install(Arc::new(ta_telemetry::NullSink));
    ta_telemetry::tracer().set_profiling(false);

    let round = |f: &mut dyn FnMut(), iters: usize| {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_secs_f64() / iters as f64
    };
    // This bench resolves a single-digit-percent delta, which is below
    // the bias ASLR-dependent data placement alone introduces (an A/A
    // comparison of the same function against itself swings ~±1%). So:
    // several independent repetitions, each with freshly allocated
    // architecture and frame (new heap placement), each interleaving
    // best-of-8 rounds per path, and the reported overhead is the median
    // across repetitions.
    let mut samples = Vec::new();
    let (mut bare_best, mut instrumented_best) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..7u64 {
        let arch = arch();
        let img = synth::natural_image(SIZE, SIZE, 1 + rep);
        let mut run_bare = || {
            black_box(
                exec::run_uninstrumented(&arch, &img, ArithmeticMode::DelayApprox, 0)
                    .expect("clean run"),
            );
        };
        let mut run_instrumented = || {
            black_box(exec::run(&arch, &img, ArithmeticMode::DelayApprox, 0).expect("clean run"));
        };
        round(&mut run_bare, 5);
        round(&mut run_instrumented, 5);
        let (mut bare_s, mut instrumented_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..8 {
            bare_s = bare_s.min(round(&mut run_bare, 15));
            instrumented_s = instrumented_s.min(round(&mut run_instrumented, 15));
        }
        samples.push(instrumented_s / bare_s - 1.0);
        bare_best = bare_best.min(bare_s);
        instrumented_best = instrumented_best.min(instrumented_s);
    }
    samples.sort_by(f64::total_cmp);
    let overhead = samples[samples.len() / 2];
    let bare_s = bare_best;
    let instrumented_s = instrumented_best;
    ta_bench::print_experiment(
        "Telemetry overhead (no-op sink)",
        &format!(
            "uninstrumented twin  {:8.3} ms/frame\ninstrumented run     {:8.3} ms/frame\noverhead             {:+8.2}%  (budget <2%)\n",
            bare_s * 1e3,
            instrumented_s * 1e3,
            overhead * 100.0,
        ),
    );
    let bench_mode = std::env::args().any(|a| a == "--bench");
    assert!(
        !bench_mode || overhead < 0.02,
        "telemetry overhead budget blown: {:.2}% >= 2% (bare {:.3} ms, instrumented {:.3} ms)",
        overhead * 100.0,
        bare_s * 1e3,
        instrumented_s * 1e3,
    );

    let arch = arch();
    let img = synth::natural_image(SIZE, SIZE, 1);
    c.bench_function("telemetry/uninstrumented_32x32", |b| {
        b.iter(|| exec::run_uninstrumented(&arch, black_box(&img), ArithmeticMode::DelayApprox, 0))
    });
    c.bench_function("telemetry/instrumented_nullsink_32x32", |b| {
        b.iter(|| exec::run(&arch, black_box(&img), ArithmeticMode::DelayApprox, 0))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
