//! Fig 5 bench: nLDE staircase evaluation.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ta_approx::NldeApprox;

fn bench(c: &mut Criterion) {
    let data = ta_experiments::fig05::compute(4, 40);
    ta_bench::print_experiment("Fig 5", &ta_experiments::fig05::render(&data));
    c.bench_function("fig05/eval_slice_4terms", |b| {
        let approx = NldeApprox::fit(4);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..256 {
                let v = approx.eval_slice(black_box(i as f64 * 0.01));
                if v.is_finite() {
                    acc += v;
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
