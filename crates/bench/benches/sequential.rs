//! Sequential-throughput bench for the compiled plan executor (DESIGN.md
//! §5.11): ms/frame of the serial recursive reference engine
//! (`ta_core::reference`, the pre-plan evaluation strategy kept as an
//! oracle) against the planned executor with rolling-shutter row reuse,
//! both pinned to 1 worker so the comparison isolates the plan/cache win
//! from pool scaling.
//!
//! Results land in `BENCH_core.json` at the repository root. Knobs match
//! `parallel.rs`:
//!
//! * `--bench` (criterion's own flag): full-size frames and the JSON
//!   artifact; without it (plain `cargo test`) everything shrinks to a
//!   single smoke iteration and no file is written.
//! * `TA_BENCH_SMOKE=1`: CI smoke mode — 64×64 frames and fewer rounds,
//!   still writing the JSON artifact so the job can upload it.
//!
//! Three hard assertions whenever the artifact is written:
//!
//! * the engines are bit-identical on the benched frame — including the
//!   SIMD identical-mode leg (a perf win bought with different bits
//!   would be a bug, not an optimisation);
//! * the planned path is no slower than the reference (>= 1.0× in full
//!   mode, >= 0.9× in smoke mode where frames are small enough for timer
//!   noise to matter);
//! * the SIMD identical-mode leg is no slower than the forced-scalar
//!   planned leg (>= 1.0×; the measured ratio lands in the artifact as
//!   `simd_speedup`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use ta_core::fault::FaultMap;
use ta_core::{exec, reference, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{synth, Image, Kernel};

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn smoke_mode() -> bool {
    std::env::var("TA_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn arch_for(size: usize) -> Architecture {
    let desc = SystemDescription::new(size, size, vec![Kernel::sobel_x()], 1)
        .expect("sobel fits the frame");
    Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("feasible schedule")
}

/// Best-of-`rounds` seconds per frame for the planned executor at 1
/// worker, under the given SIMD dispatch mode.
fn planned_seconds(
    arch: &Architecture,
    img: &Image,
    rounds: usize,
    simd: ta_simd::SimdMode,
) -> f64 {
    ta_pool::set_threads(1);
    ta_simd::set_mode(simd);
    black_box(exec::run(arch, img, ArithmeticMode::DelayApprox, 0).expect("clean run"));
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        black_box(exec::run(arch, img, ArithmeticMode::DelayApprox, 0).expect("clean run"));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`rounds` seconds per frame for the serial recursive reference.
fn reference_seconds(arch: &Architecture, img: &Image, rounds: usize) -> f64 {
    let clean = FaultMap::new();
    black_box(
        reference::run_frame(arch, img, ArithmeticMode::DelayApprox, 0, &clean)
            .expect("reference run"),
    );
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        black_box(
            reference::run_frame(arch, img, ArithmeticMode::DelayApprox, 0, &clean)
                .expect("reference run"),
        );
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Bitwise comparison of the two engines' outputs on the benched frame,
/// with the SIMD identical mode active on the planned side.
fn bit_identical(arch: &Architecture, img: &Image) -> bool {
    ta_pool::set_threads(1);
    ta_simd::set_mode(ta_simd::SimdMode::Identical);
    let planned = exec::run(arch, img, ArithmeticMode::DelayApprox, 0).expect("planned run");
    let oracle = reference::run_frame(arch, img, ArithmeticMode::DelayApprox, 0, &FaultMap::new())
        .expect("reference run");
    planned.ops == oracle.ops
        && planned.fault_stats == oracle.fault_stats
        && planned.outputs.iter().zip(&oracle.outputs).all(|(a, b)| {
            a.pixels()
                .iter()
                .zip(b.pixels())
                .all(|(pa, pb)| pa.to_bits() == pb.to_bits())
        })
}

fn bench(c: &mut Criterion) {
    let full = bench_mode();
    let smoke = smoke_mode();
    let (size, rounds) = match (full, smoke) {
        (_, true) => (64, 3),
        (true, false) => (256, 5),
        (false, false) => (32, 1),
    };
    let arch = arch_for(size);
    let img = synth::natural_image(size, size, 1);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let identical = bit_identical(&arch, &img);
    let ref_s = reference_seconds(&arch, &img, rounds);
    let scalar_s = planned_seconds(&arch, &img, rounds, ta_simd::SimdMode::Off);
    let simd_s = planned_seconds(&arch, &img, rounds, ta_simd::SimdMode::Identical);
    ta_pool::set_threads(0);
    let simd_tier = ta_simd::active_tier().as_str();
    let speedup = ref_s / simd_s;
    let simd_speedup = scalar_s / simd_s;

    ta_bench::print_experiment(
        "Sequential plan-executor throughput",
        &format!(
            "sobel-x approx {size}×{size}, 1 worker, best of {rounds} rounds\n\
             recursive reference   {:9.3} ms/frame\n\
             planned, SIMD off     {:9.3} ms/frame\n\
             planned, SIMD {simd_tier:<7} {:9.3} ms/frame  ({speedup:.2}× vs reference, \
             {simd_speedup:.2}× vs scalar)\n\
             bit-identical outputs: {identical}\n",
            ref_s * 1e3,
            scalar_s * 1e3,
            simd_s * 1e3,
        ),
    );

    if full || smoke {
        let json = format!(
            "{{\n  \"bench\": \"sequential_plan\",\n  \"kernel\": \"sobel_x\",\n  \
             \"mode\": \"DelayApprox\",\n  \"frame\": {size},\n  \"rounds\": {rounds},\n  \
             \"host_cores\": {cores},\n  \"smoke\": {smoke},\n  \
             \"simd_tier\": \"{simd_tier}\",\n  \
             \"ms_per_frame\": {{\"reference\": {:.6}, \"planned_scalar\": {:.6}, \
             \"planned_simd\": {:.6}}},\n  \
             \"speedup\": {speedup:.4},\n  \"simd_speedup\": {simd_speedup:.4},\n  \
             \"bit_identical\": {identical}\n}}\n",
            ref_s * 1e3,
            scalar_s * 1e3,
            simd_s * 1e3,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
        std::fs::write(path, json).expect("write BENCH_core.json");
        assert!(
            identical,
            "planned executor must match the reference bit-for-bit"
        );
        // Smoke frames are small enough that timer noise can eat a few
        // percent; full-size frames must show the plan at least breaking
        // even at 1 thread (the row cache should put it well ahead).
        let floor = if smoke { 0.9 } else { 1.0 };
        assert!(
            speedup >= floor,
            "planned executor regressed vs reference: {speedup:.3}x (floor {floor}x)"
        );
        // The identical-mode SIMD path must never lose to forced-scalar
        // dispatch: same bits, so any regression is pure overhead. The
        // full-size run is expected well above this floor (the measured
        // value is what the artifact records).
        assert!(
            simd_speedup >= 1.0,
            "SIMD identical mode regressed vs forced scalar: {simd_speedup:.3}x"
        );
    }

    c.bench_function(&format!("sequential/planned_{size}x{size}"), |b| {
        ta_pool::set_threads(1);
        b.iter(|| exec::run(&arch, black_box(&img), ArithmeticMode::DelayApprox, 0));
    });
    c.bench_function(&format!("sequential/reference_{size}x{size}"), |b| {
        b.iter(|| {
            reference::run_frame(
                &arch,
                black_box(&img),
                ArithmeticMode::DelayApprox,
                0,
                &FaultMap::new(),
            )
        });
    });
    ta_pool::set_threads(0);
}

criterion_group!(benches, bench);
criterion_main!(benches);
