//! Fig 7 bench: staged/recurrent accumulation.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = ta_experiments::fig07::compute(9, 7);
    ta_bench::print_experiment("Fig 7", &ta_experiments::fig07::render(&data));
    c.bench_function("fig07/accumulate_9_inputs", |b| {
        b.iter(|| ta_experiments::fig07::compute(black_box(9), black_box(7)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
