//! Supervisor-overhead bench: raw `exec::run` versus the same frame
//! through `ta_runtime::Supervisor` (finite-validation, no timeout, no
//! retry pressure). The supervised path's cost over raw execution is the
//! price of dependability; the target is <10% on a clean frame.
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{synth, Kernel};
use ta_runtime::{Engine, Supervisor, SupervisorConfig, TemporalEngine};

const SIZE: usize = 32;

fn arch() -> Architecture {
    let desc = SystemDescription::new(SIZE, SIZE, vec![Kernel::sobel_x()], 1)
        .expect("sobel fits the frame");
    Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("feasible schedule")
}

fn bench(c: &mut Criterion) {
    let arch = arch();
    let img = synth::natural_image(SIZE, SIZE, 1);
    let engine: Arc<dyn Engine> = Arc::new(TemporalEngine::new(
        arch.clone(),
        ArithmeticMode::DelayApprox,
    ));
    let supervisor = Supervisor::new(SupervisorConfig::default());

    // Side-by-side single-frame timing summary (the <10% overhead check
    // documented in DESIGN.md §5.8), printed like the other benches.
    // Interleaved rounds with a warmup, best round per path: robust to
    // frequency scaling and scheduling noise.
    let mut run_raw = || {
        black_box(exec::run(&arch, &img, ArithmeticMode::DelayApprox, 0).expect("clean run"));
    };
    let mut run_supervised = || {
        black_box(
            supervisor
                .run_one(&engine, &img, 0, 0)
                .expect("valid configuration"),
        );
    };
    let round = |f: &mut dyn FnMut(), iters: usize| {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_secs_f64() / iters as f64
    };
    round(&mut run_raw, 5);
    round(&mut run_supervised, 5);
    let (mut raw_s, mut supervised_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..8 {
        raw_s = raw_s.min(round(&mut run_raw, 10));
        supervised_s = supervised_s.min(round(&mut run_supervised, 10));
    }
    ta_bench::print_experiment(
        "Supervisor overhead",
        &format!(
            "raw exec::run        {:8.3} ms/frame\nsupervised run_one   {:8.3} ms/frame\noverhead             {:+8.1}%\n",
            raw_s * 1e3,
            supervised_s * 1e3,
            (supervised_s / raw_s - 1.0) * 100.0,
        ),
    );

    c.bench_function("supervisor/raw_exec_32x32", |b| {
        b.iter(|| exec::run(&arch, black_box(&img), ArithmeticMode::DelayApprox, 0))
    });
    c.bench_function("supervisor/supervised_32x32", |b| {
        b.iter(|| supervisor.run_one(&engine, black_box(&img), 0, 0))
    });
    c.bench_function("supervisor/batch8_32x32", |b| {
        let frames: Vec<_> = (0..8)
            .map(|i| synth::natural_image(SIZE, SIZE, i))
            .collect();
        b.iter(|| supervisor.run_batch(&engine, black_box(&frames), 0))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
