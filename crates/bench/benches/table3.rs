//! Table 3 bench: the PIP comparison at bench scale.
use criterion::{criterion_group, criterion_main, Criterion};
use ta_baseline::pip::PipModel;
use ta_image::{synth, Kernel};

fn bench(c: &mut Criterion) {
    let rows = ta_experiments::table3::compute(48, 1);
    ta_bench::print_experiment(
        "Table 3 (48x48 frames)",
        &ta_experiments::table3::render(&rows),
    );
    let img = synth::natural_image(48, 48, 2);
    let pip = PipModel::asplos24();
    let k = Kernel::edge_ternary(4, 4);
    c.bench_function("table3/pip_functional_frame_48x48", |b| {
        b.iter(|| pip.convolve(&img, &k, 2, 5))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
