//! Fig 3 bench: slice sampling with the hand-picked max-term.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = ta_experiments::fig03::compute(41);
    ta_bench::print_experiment("Fig 3", &ta_experiments::fig03::render(&rows));
    c.bench_function("fig03/slice_41pts", |b| {
        b.iter(|| ta_experiments::fig03::compute(black_box(41)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
