//! Table 2 bench: one noisy benchmark frame through the architecture.
use criterion::{criterion_group, criterion_main, Criterion};
use ta_circuits::UnitScale;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{synth, Kernel};

fn bench(c: &mut Criterion) {
    let rows = ta_experiments::table2::compute(48, 1, 1);
    ta_bench::print_experiment(
        "Table 2 (48x48 frames)",
        &ta_experiments::table2::render(&rows),
    );
    let desc = SystemDescription::new(48, 48, vec![Kernel::pyr_down_5x5()], 2).unwrap();
    let arch = Architecture::new(desc, ArchConfig::new(UnitScale::new(1.0, 50.0), 7, 20)).unwrap();
    let img = synth::natural_image(48, 48, 3);
    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.bench_function("pyr_down_noisy_frame_48x48", |b| {
        b.iter(|| exec::run(&arch, &img, ArithmeticMode::DelayApproxNoisy, 7).unwrap())
    });
    g.bench_function("pyr_down_exact_frame_48x48", |b| {
        b.iter(|| exec::run(&arch, &img, ArithmeticMode::DelayExact, 7).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
