//! Fig 4 bench: the Chebyshev nLSE curve fit itself.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ta_approx::NlseApprox;

fn bench(c: &mut Criterion) {
    let data = ta_experiments::fig04::compute(4, 41);
    ta_bench::print_experiment("Fig 4", &ta_experiments::fig04::render(&data));
    // Time the fit by bypassing the cache (from_terms on a fresh eval).
    c.bench_function("fig04/eval_slice_4terms", |b| {
        let approx = NlseApprox::fit(4);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..256 {
                acc += approx.eval_slice(black_box(i as f64 * 0.01));
            }
            acc
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
