//! Portable graymap (PGM) I/O — real images in and out of the engine with
//! no external dependencies.
//!
//! Both the ASCII (`P2`) and binary (`P5`, 8-bit) variants are supported
//! for reading; writing emits binary `P5`. Pixels are normalised to
//! `[0, 1]` on read (dividing by `maxval`) and quantised back on write.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;

use crate::Image;

/// Errors raised by PGM parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum PgmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a P2/P5 graymap or violates the format.
    Format(String),
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::Io(e) => write!(f, "i/o error: {e}"),
            PgmError::Format(why) => write!(f, "malformed PGM: {why}"),
        }
    }
}

impl Error for PgmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PgmError::Io(e) => Some(e),
            PgmError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PgmError {
    fn from(e: std::io::Error) -> Self {
        PgmError::Io(e)
    }
}

/// Reads a PGM image (P2 or P5) from a reader.
///
/// # Errors
///
/// Returns [`PgmError`] on I/O failure or malformed content.
pub fn read_pgm<R: BufRead>(mut reader: R) -> Result<Image, PgmError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    let mut cursor = 0usize;

    let magic = read_token(&bytes, &mut cursor)
        .ok_or_else(|| PgmError::Format("missing magic number".into()))?;
    let binary = match magic.as_str() {
        "P5" => true,
        "P2" => false,
        other => {
            return Err(PgmError::Format(format!(
                "unsupported magic {other:?} (want P2 or P5)"
            )))
        }
    };

    let mut dims = [0usize; 3];
    for d in &mut dims {
        let tok = read_token(&bytes, &mut cursor)
            .ok_or_else(|| PgmError::Format("truncated header".into()))?;
        *d = tok
            .parse()
            .map_err(|_| PgmError::Format(format!("bad header number {tok:?}")))?;
    }
    let [width, height, maxval] = dims;
    if width == 0 || height == 0 {
        return Err(PgmError::Format("zero dimension".into()));
    }
    if maxval == 0 || maxval > 65535 {
        return Err(PgmError::Format(format!("maxval {maxval} out of range")));
    }

    let count = width
        .checked_mul(height)
        .ok_or_else(|| PgmError::Format("image dimensions overflow".into()))?;
    // Every raster pixel needs at least one byte in either encoding, so a
    // forged header promising more pixels than the file holds (e.g.
    // "999999999 999999999") must fail here, cleanly, before the pixel
    // buffer is allocated — not exhaust memory.
    let remaining = bytes.len().saturating_sub(cursor);
    if count > remaining {
        return Err(PgmError::Format(format!(
            "header promises {count} pixels but only {remaining} bytes follow"
        )));
    }
    let mut pixels = Vec::with_capacity(count);
    if binary {
        if maxval > 255 {
            return Err(PgmError::Format("16-bit binary PGM not supported".into()));
        }
        // Exactly one whitespace byte separates the header from the raster.
        if cursor < bytes.len() && bytes[cursor].is_ascii_whitespace() {
            cursor += 1;
        }
        let raster = &bytes
            .get(cursor..cursor.saturating_add(count))
            .ok_or_else(|| PgmError::Format("truncated raster".into()))?;
        if let Some(&bad) = raster.iter().find(|&&b| b as usize > maxval) {
            return Err(PgmError::Format(format!("pixel {bad} exceeds maxval")));
        }
        pixels.extend(raster.iter().map(|&b| b as f64 / maxval as f64));
    } else {
        for _ in 0..count {
            let tok = read_token(&bytes, &mut cursor)
                .ok_or_else(|| PgmError::Format("truncated raster".into()))?;
            let v: u32 = tok
                .parse()
                .map_err(|_| PgmError::Format(format!("bad pixel {tok:?}")))?;
            if v as usize > maxval {
                return Err(PgmError::Format(format!("pixel {v} exceeds maxval")));
            }
            pixels.push(v as f64 / maxval as f64);
        }
    }
    Image::from_pixels(width, height, pixels).map_err(|e| PgmError::Format(e.to_string()))
}

/// Reads a PGM file from disk.
///
/// # Errors
///
/// Returns [`PgmError`] on I/O failure or malformed content.
pub fn load_pgm(path: impl AsRef<Path>) -> Result<Image, PgmError> {
    let file = std::fs::File::open(path)?;
    read_pgm(std::io::BufReader::new(file))
}

/// Writes an image as binary `P5` PGM (8-bit); pixels are clamped to
/// `[0, 1]` and quantised to 255 levels. A mut reference works as the
/// writer.
///
/// # Errors
///
/// Returns [`PgmError::Io`] on write failure.
pub fn write_pgm<W: Write>(image: &Image, mut writer: W) -> Result<(), PgmError> {
    write!(writer, "P5\n{} {}\n255\n", image.width(), image.height())?;
    let raster: Vec<u8> = image
        .pixels()
        .iter()
        .map(|&p| (p.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    writer.write_all(&raster)?;
    Ok(())
}

/// Writes an image to a PGM file on disk.
///
/// # Errors
///
/// Returns [`PgmError::Io`] on write failure.
pub fn save_pgm(image: &Image, path: impl AsRef<Path>) -> Result<(), PgmError> {
    let file = std::fs::File::create(path)?;
    write_pgm(image, std::io::BufWriter::new(file))
}

/// Reads one whitespace-delimited token, skipping `#` comments.
fn read_token(bytes: &[u8], cursor: &mut usize) -> Option<String> {
    // Skip whitespace and comments.
    loop {
        while *cursor < bytes.len() && bytes[*cursor].is_ascii_whitespace() {
            *cursor += 1;
        }
        if *cursor < bytes.len() && bytes[*cursor] == b'#' {
            while *cursor < bytes.len() && bytes[*cursor] != b'\n' {
                *cursor += 1;
            }
        } else {
            break;
        }
    }
    let start = *cursor;
    while *cursor < bytes.len() && !bytes[*cursor].is_ascii_whitespace() {
        *cursor += 1;
    }
    if *cursor > start {
        Some(String::from_utf8_lossy(&bytes[start..*cursor]).into_owned())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_roundtrip_through_binary_writer() {
        let src = b"P2\n# a comment\n3 2\n255\n0 128 255\n64 32 16\n";
        let img = read_pgm(&src[..]).unwrap();
        assert_eq!((img.width(), img.height()), (3, 2));
        assert!((img.get(1, 0) - 128.0 / 255.0).abs() < 1e-12);

        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(&buf[..]).unwrap();
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            assert!((a - b).abs() <= 1.0 / 255.0);
        }
    }

    #[test]
    fn binary_p5_reads() {
        let mut src = b"P5\n2 2\n255\n".to_vec();
        src.extend_from_slice(&[0, 255, 128, 64]);
        let img = read_pgm(&src[..]).unwrap();
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(1, 0), 1.0);
        assert!((img.get(0, 1) - 128.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            read_pgm(&b"P6\n1 1\n255\nxxx"[..]),
            Err(PgmError::Format(_))
        ));
        assert!(matches!(
            read_pgm(&b"P2\n2 2\n255\n0 1 2"[..]), // missing a pixel
            Err(PgmError::Format(_))
        ));
        assert!(matches!(
            read_pgm(&b"P5\n2 2\n255\n\x00\x01"[..]), // truncated raster
            Err(PgmError::Format(_))
        ));
        assert!(matches!(
            read_pgm(&b"P2\n0 2\n255\n"[..]),
            Err(PgmError::Format(_))
        ));
        assert!(matches!(
            read_pgm(&b"P2\n2 2\n255\n0 1 2 999"[..]), // pixel > maxval
            Err(PgmError::Format(_))
        ));
    }

    #[test]
    fn truncated_headers_error_not_panic() {
        for src in [
            &b""[..],
            &b"P2"[..],
            &b"P2\n3"[..],
            &b"P2\n3 2"[..],
            &b"P5\n2 2\n"[..],
            &b"P2\n# only a comment"[..],
        ] {
            assert!(
                matches!(read_pgm(src), Err(PgmError::Format(_))),
                "accepted truncated header {src:?}"
            );
        }
    }

    #[test]
    fn zero_and_oversized_maxval_rejected() {
        assert!(matches!(
            read_pgm(&b"P2\n1 1\n0\n0"[..]),
            Err(PgmError::Format(_))
        ));
        assert!(matches!(
            read_pgm(&b"P2\n1 1\n70000\n0"[..]),
            Err(PgmError::Format(_))
        ));
    }

    #[test]
    fn oversized_dimensions_fail_before_allocating() {
        // A forged header promising ~10^18 pixels must produce a clean
        // format error, not an out-of-memory abort.
        for src in [
            &b"P2\n999999999 999999999\n255\n0"[..],
            &b"P5\n999999999 999999999\n255\n\x00"[..],
            &b"P2\n18446744073709551615 2\n255\n0"[..], // width > usize
        ] {
            assert!(
                matches!(read_pgm(src), Err(PgmError::Format(_))),
                "accepted oversized dims {src:?}"
            );
        }
    }

    #[test]
    fn non_numeric_tokens_rejected() {
        for src in [
            &b"P2\nwide 2\n255\n0 0"[..],
            &b"P2\n2 tall\n255\n0 0"[..],
            &b"P2\n2 1\nmax\n0 0"[..],
            &b"P2\n2 1\n255\nzero 1"[..],
            &b"P2\n2 1\n255\n-3 1"[..], // negative pixel
        ] {
            assert!(
                matches!(read_pgm(src), Err(PgmError::Format(_))),
                "accepted non-numeric token {src:?}"
            );
        }
    }

    #[test]
    fn binary_pixels_validated_against_maxval() {
        let mut src = b"P5\n2 1\n100\n".to_vec();
        src.extend_from_slice(&[50, 200]); // 200 > maxval 100
        assert!(matches!(read_pgm(&src[..]), Err(PgmError::Format(_))));
    }

    #[test]
    fn comments_anywhere_in_header() {
        let src = b"P2 # magic\n# dims next\n2 # width\n1\n# maxval\n10\n5 10\n";
        let img = read_pgm(&src[..]).unwrap();
        assert_eq!(img.get(0, 0), 0.5);
        assert_eq!(img.get(1, 0), 1.0);
    }

    #[test]
    fn file_roundtrip() {
        let img = crate::synth::natural_image(20, 15, 3);
        let path = std::env::temp_dir().join("ta_image_test_roundtrip.pgm");
        save_pgm(&img, &path).unwrap();
        let back = load_pgm(&path).unwrap();
        assert_eq!((back.width(), back.height()), (20, 15));
        let err = crate::metrics::rmse(&img, &back);
        assert!(err <= 0.5 / 255.0 * 2.0, "quantisation error {err}");
        std::fs::remove_file(&path).ok();
    }
}
