//! Error metrics used throughout the evaluation.
//!
//! The paper reports **range-normalised RMS error** (§5.2): the RMS of the
//! pixel-wise difference between a measured output and the exact reference,
//! divided by the range of the reference values. Table 3 additionally
//! reports it as a percentage.

use crate::Image;

/// Plain (unnormalised) root-mean-square error between two images.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn rmse(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "rmse needs equally sized images"
    );
    let sq: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    (sq / a.pixels().len() as f64).sqrt()
}

/// RMS error normalised by the range of the reference image `reference`
/// (the paper's headline accuracy metric).
///
/// Returns plain RMSE if the reference's range is *degenerate* — zero, or
/// pure floating-point cancellation noise (below `1e-12` absolute and
/// below `1e-9` of the reference's magnitude). Without the floor, a
/// constant-valued reference whose entries differ by a few ulps would
/// normalise a harmless ~1e-16 error into an apparent ~0.2.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn normalized_rmse(measured: &Image, reference: &Image) -> f64 {
    let (lo, hi) = reference.min_max();
    let range = hi - lo;
    let magnitude = lo.abs().max(hi.abs());
    let e = rmse(measured, reference);
    if range > 1e-12 && range > 1e-9 * magnitude {
        e / range
    } else {
        e
    }
}

/// Range-normalised RMSE expressed as a percentage (Table 3's `%RMSE`).
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn percent_rmse(measured: &Image, reference: &Image) -> f64 {
    100.0 * normalized_rmse(measured, reference)
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn mae(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "mae needs equally sized images"
    );
    a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / a.pixels().len() as f64
}

/// Pools per-image normalised RMSEs into one score by RMS, the way the
/// paper aggregates over its five evaluation images.
pub fn pool_rmse(per_image: &[f64]) -> f64 {
    if per_image.is_empty() {
        return 0.0;
    }
    (per_image.iter().map(|e| e * e).sum::<f64>() / per_image.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_zero_error() {
        let a = Image::from_fn(5, 5, |x, y| (x * y) as f64);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(normalized_rmse(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
    }

    #[test]
    fn hand_computed_rmse() {
        let a = Image::from_pixels(2, 1, vec![0.0, 0.0]).unwrap();
        let b = Image::from_pixels(2, 1, vec![3.0, 4.0]).unwrap();
        // sqrt((9+16)/2) = sqrt(12.5)
        assert!((rmse(&a, &b) - 12.5_f64.sqrt()).abs() < 1e-12);
        assert_eq!(mae(&a, &b), 3.5);
    }

    #[test]
    fn normalisation_uses_reference_range() {
        let reference = Image::from_pixels(2, 1, vec![0.0, 2.0]).unwrap();
        let measured = Image::from_pixels(2, 1, vec![0.2, 2.2]).unwrap();
        assert!((normalized_rmse(&measured, &reference) - 0.1).abs() < 1e-12);
        assert!((percent_rmse(&measured, &reference) - 10.0).abs() < 1e-10);
    }

    #[test]
    fn zero_range_reference_falls_back_to_rmse() {
        let reference = Image::from_pixels(2, 1, vec![1.0, 1.0]).unwrap();
        let measured = Image::from_pixels(2, 1, vec![1.5, 1.5]).unwrap();
        assert!((normalized_rmse(&measured, &reference) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cancellation_noise_range_is_treated_as_zero() {
        // A "constant" reference whose entries differ only by float
        // cancellation noise must not be used as a normaliser.
        let reference = Image::from_pixels(2, 1, vec![1e-16, -3e-16]).unwrap();
        let measured = Image::from_pixels(2, 1, vec![0.0, 0.0]).unwrap();
        let e = normalized_rmse(&measured, &reference);
        assert!(e < 1e-12, "degenerate range inflated the error to {e}");
    }

    #[test]
    fn pooling() {
        assert_eq!(pool_rmse(&[]), 0.0);
        assert!((pool_rmse(&[3.0, 4.0]) - 12.5_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn size_mismatch_panics() {
        rmse(&Image::zeros(2, 2), &Image::zeros(3, 2));
    }
}
