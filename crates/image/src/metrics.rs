//! Error metrics used throughout the evaluation.
//!
//! The paper reports **range-normalised RMS error** (§5.2): the RMS of the
//! pixel-wise difference between a measured output and the exact reference,
//! divided by the range of the reference values. Table 3 additionally
//! reports it as a percentage.

use crate::Image;

/// Plain (unnormalised) root-mean-square error between two images.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn rmse(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "rmse needs equally sized images"
    );
    let sq: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    (sq / a.pixels().len() as f64).sqrt()
}

/// RMS error normalised by the range of the reference image `reference`
/// (the paper's headline accuracy metric).
///
/// Returns plain RMSE if the reference's range is *degenerate* — zero, or
/// pure floating-point cancellation noise (below `1e-12` absolute and
/// below `1e-9` of the reference's magnitude). Without the floor, a
/// constant-valued reference whose entries differ by a few ulps would
/// normalise a harmless ~1e-16 error into an apparent ~0.2.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn normalized_rmse(measured: &Image, reference: &Image) -> f64 {
    let (lo, hi) = reference.min_max();
    let range = hi - lo;
    let magnitude = lo.abs().max(hi.abs());
    let e = rmse(measured, reference);
    if range > 1e-12 && range > 1e-9 * magnitude {
        e / range
    } else {
        e
    }
}

/// Range-normalised RMSE expressed as a percentage (Table 3's `%RMSE`).
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn percent_rmse(measured: &Image, reference: &Image) -> f64 {
    100.0 * normalized_rmse(measured, reference)
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn mae(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "mae needs equally sized images"
    );
    a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / a.pixels().len() as f64
}

/// Mean structural similarity (SSIM) of `measured` against `reference`,
/// averaged over sliding uniform windows.
///
/// Used by the fault-injection campaigns to report perceptual degradation
/// alongside RMSE: a stuck line that shifts a constant offset barely moves
/// SSIM, while one that destroys structure collapses it. The dynamic range
/// `L` is taken from the reference (floored at a small epsilon so a
/// constant reference does not divide by zero); windows are 7×7 uniform,
/// shrunk to the whole image when it is smaller. Returns 1.0 for identical
/// images; values near 0 (or negative) indicate destroyed structure.
///
/// # Panics
///
/// Panics if the images have different dimensions or are empty.
pub fn ssim(measured: &Image, reference: &Image) -> f64 {
    assert_eq!(
        (measured.width(), measured.height()),
        (reference.width(), reference.height()),
        "ssim needs equally sized images"
    );
    let (w, h) = (reference.width(), reference.height());
    assert!(w > 0 && h > 0, "ssim needs a non-empty image");
    let win_w = w.min(7);
    let win_h = h.min(7);
    let (lo, hi) = reference.min_max();
    let l = (hi - lo).max(1e-12);
    let c1 = (0.01 * l) * (0.01 * l);
    let c2 = (0.03 * l) * (0.03 * l);

    let mut total = 0.0;
    let mut windows = 0usize;
    for oy in 0..=(h - win_h) {
        for ox in 0..=(w - win_w) {
            let n = (win_w * win_h) as f64;
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for dy in 0..win_h {
                for dx in 0..win_w {
                    let x = measured.get(ox + dx, oy + dy);
                    let y = reference.get(ox + dx, oy + dy);
                    sx += x;
                    sy += y;
                    sxx += x * x;
                    syy += y * y;
                    sxy += x * y;
                }
            }
            let mx = sx / n;
            let my = sy / n;
            let vx = (sxx / n - mx * mx).max(0.0);
            let vy = (syy / n - my * my).max(0.0);
            let cov = sxy / n - mx * my;
            total += ((2.0 * mx * my + c1) * (2.0 * cov + c2))
                / ((mx * mx + my * my + c1) * (vx + vy + c2));
            windows += 1;
        }
    }
    total / windows as f64
}

/// Pools per-image normalised RMSEs into one score by RMS, the way the
/// paper aggregates over its five evaluation images.
pub fn pool_rmse(per_image: &[f64]) -> f64 {
    if per_image.is_empty() {
        return 0.0;
    }
    (per_image.iter().map(|e| e * e).sum::<f64>() / per_image.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_zero_error() {
        let a = Image::from_fn(5, 5, |x, y| (x * y) as f64);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(normalized_rmse(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
    }

    #[test]
    fn hand_computed_rmse() {
        let a = Image::from_pixels(2, 1, vec![0.0, 0.0]).unwrap();
        let b = Image::from_pixels(2, 1, vec![3.0, 4.0]).unwrap();
        // sqrt((9+16)/2) = sqrt(12.5)
        assert!((rmse(&a, &b) - 12.5_f64.sqrt()).abs() < 1e-12);
        assert_eq!(mae(&a, &b), 3.5);
    }

    #[test]
    fn normalisation_uses_reference_range() {
        let reference = Image::from_pixels(2, 1, vec![0.0, 2.0]).unwrap();
        let measured = Image::from_pixels(2, 1, vec![0.2, 2.2]).unwrap();
        assert!((normalized_rmse(&measured, &reference) - 0.1).abs() < 1e-12);
        assert!((percent_rmse(&measured, &reference) - 10.0).abs() < 1e-10);
    }

    #[test]
    fn zero_range_reference_falls_back_to_rmse() {
        let reference = Image::from_pixels(2, 1, vec![1.0, 1.0]).unwrap();
        let measured = Image::from_pixels(2, 1, vec![1.5, 1.5]).unwrap();
        assert!((normalized_rmse(&measured, &reference) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cancellation_noise_range_is_treated_as_zero() {
        // A "constant" reference whose entries differ only by float
        // cancellation noise must not be used as a normaliser.
        let reference = Image::from_pixels(2, 1, vec![1e-16, -3e-16]).unwrap();
        let measured = Image::from_pixels(2, 1, vec![0.0, 0.0]).unwrap();
        let e = normalized_rmse(&measured, &reference);
        assert!(e < 1e-12, "degenerate range inflated the error to {e}");
    }

    #[test]
    fn pooling() {
        assert_eq!(pool_rmse(&[]), 0.0);
        assert!((pool_rmse(&[3.0, 4.0]) - 12.5_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn size_mismatch_panics() {
        rmse(&Image::zeros(2, 2), &Image::zeros(3, 2));
    }

    #[test]
    fn ssim_identical_is_one() {
        let a = Image::from_fn(12, 12, |x, y| ((x * 7 + y * 3) % 11) as f64 / 10.0);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_orders_degradation() {
        let reference = Image::from_fn(16, 16, |x, y| ((x + y) % 5) as f64 / 4.0);
        let mild = Image::from_fn(16, 16, |x, y| {
            reference.get(x, y) + if (x + y) % 2 == 0 { 0.02 } else { -0.02 }
        });
        let severe = Image::from_fn(16, 16, |x, y| ((x * y) % 3) as f64 / 2.0);
        let s_mild = ssim(&mild, &reference);
        let s_severe = ssim(&severe, &reference);
        assert!(s_mild > s_severe, "{s_mild} vs {s_severe}");
        assert!(s_mild < 1.0 && s_mild > 0.8);
        assert!(s_severe < 0.8);
    }

    #[test]
    fn ssim_handles_tiny_and_constant_images() {
        // Smaller than the 7×7 window: falls back to one whole-image
        // window. Constant reference: the range floor avoids NaN.
        let a = Image::from_fn(3, 3, |x, _| x as f64);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-12);
        let c = Image::from_pixels(4, 4, vec![0.5; 16]).unwrap();
        let s = ssim(&c, &c);
        assert!(s.is_finite() && (s - 1.0).abs() < 1e-9);
    }
}
