//! Convolution kernels, including the paper's benchmark filters (Table 1).

use std::fmt;

/// A dense convolution kernel with `f64` weights.
///
/// Kernels are row-major like [`crate::Image`]. The benchmark constructors
/// reproduce the filters of the paper's evaluation:
///
/// | Function (Table 1) | Constructor | Shape |
/// |--------------------|-------------|-------|
/// | Sobel (edge detection, 2 filters) | [`Kernel::sobel_x`], [`Kernel::sobel_y`] | 3×3 |
/// | pyrDown (blur + downsample)       | [`Kernel::pyr_down_5x5`] | 5×5 |
/// | GaussianBlur                      | [`Kernel::gaussian`] | 7×7 |
/// | PIP 1.5-bit edge conv (Table 3)   | [`Kernel::edge_ternary`] | 2×2 … 4×4 |
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    width: usize,
    height: usize,
    weights: Vec<f64>,
}

impl Kernel {
    /// Creates a kernel from row-major weights.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or the weight count does not match.
    pub fn new(name: impl Into<String>, width: usize, height: usize, weights: Vec<f64>) -> Self {
        assert!(
            width > 0 && height > 0,
            "kernel dimensions must be non-zero"
        );
        assert_eq!(
            weights.len(),
            width * height,
            "kernel weights must fill the given dimensions"
        );
        Kernel {
            name: name.into(),
            width,
            height,
            weights,
        }
    }

    /// The horizontal Sobel derivative filter (OpenCV's `Sobel` with
    /// `dx=1, dy=0`, 3×3 aperture).
    pub fn sobel_x() -> Self {
        Kernel::new(
            "sobel_x",
            3,
            3,
            vec![-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0],
        )
    }

    /// The vertical Sobel derivative filter (`dx=0, dy=1`).
    pub fn sobel_y() -> Self {
        Kernel::new(
            "sobel_y",
            3,
            3,
            vec![-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0],
        )
    }

    /// The 5×5 binomial kernel OpenCV's `pyrDown` uses (outer product of
    /// `[1, 4, 6, 4, 1]/16`), applied with stride 2 in the benchmark.
    pub fn pyr_down_5x5() -> Self {
        let b = [1.0, 4.0, 6.0, 4.0, 1.0];
        let mut w = Vec::with_capacity(25);
        for &r in &b {
            for &c in &b {
                w.push(r * c / 256.0);
            }
        }
        Kernel::new("pyrDown", 5, 5, w)
    }

    /// A normalised Gaussian blur kernel of odd `size` and standard
    /// deviation `sigma` (OpenCV defaults `sigma = 0.3·((size-1)/2 - 1) +
    /// 0.8` when `sigma <= 0`).
    ///
    /// # Panics
    ///
    /// Panics if `size` is even or zero.
    pub fn gaussian(size: usize, sigma: f64) -> Self {
        assert!(
            size % 2 == 1 && size > 0,
            "gaussian kernel size must be odd"
        );
        let sigma = if sigma > 0.0 {
            sigma
        } else {
            0.3 * ((size - 1) as f64 / 2.0 - 1.0) + 0.8
        };
        let c = (size / 2) as f64;
        let mut w = Vec::with_capacity(size * size);
        for y in 0..size {
            for x in 0..size {
                let dx = x as f64 - c;
                let dy = y as f64 - c;
                w.push((-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp());
            }
        }
        let sum: f64 = w.iter().sum();
        for v in &mut w {
            *v /= sum;
        }
        Kernel::new(format!("gaussian{size}x{size}"), size, size, w)
    }

    /// A normalised box (mean) filter.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn box_filter(size: usize) -> Self {
        assert!(size > 0, "box kernel size must be non-zero");
        let v = 1.0 / (size * size) as f64;
        Kernel::new(
            format!("box{size}x{size}"),
            size,
            size,
            vec![v; size * size],
        )
    }

    /// The 3×3 discrete Laplacian (4-connected): a second-derivative edge
    /// detector with a dominant negative centre — a harder case for the
    /// split representation than Sobel because every output mixes rails.
    pub fn laplacian() -> Self {
        Kernel::new(
            "laplacian",
            3,
            3,
            vec![0.0, 1.0, 0.0, 1.0, -4.0, 1.0, 0.0, 1.0, 0.0],
        )
    }

    /// A 3×3 sharpening kernel (identity plus Laplacian).
    pub fn sharpen() -> Self {
        Kernel::new(
            "sharpen",
            3,
            3,
            vec![0.0, -1.0, 0.0, -1.0, 5.0, -1.0, 0.0, -1.0, 0.0],
        )
    }

    /// A 3×3 emboss kernel (diagonal derivative).
    pub fn emboss() -> Self {
        Kernel::new(
            "emboss",
            3,
            3,
            vec![-2.0, -1.0, 0.0, -1.0, 1.0, 1.0, 0.0, 1.0, 2.0],
        )
    }

    /// The 1.5-bit ternary vertical-edge kernel used for the
    /// processing-in-pixel comparison (Table 3): left columns `+1`, right
    /// columns `-1`, middle column (odd widths) `0`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn edge_ternary(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "kernel dimensions must be non-zero"
        );
        let mut w = Vec::with_capacity(width * height);
        for _y in 0..height {
            for x in 0..width {
                let v = if 2 * x + 1 < width {
                    1.0
                } else if 2 * x + 1 > width {
                    -1.0
                } else {
                    0.0
                };
                w.push(v);
            }
        }
        Kernel::new(format!("edge{width}x{height}"), width, height, w)
    }

    /// Kernel name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Kernel width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Kernel height (rows / filter length in the rolling-shutter sense).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The weight at kernel position `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn weight(&self, x: usize, y: usize) -> f64 {
        assert!(
            x < self.width && y < self.height,
            "kernel index out of bounds"
        );
        self.weights[y * self.width + x]
    }

    /// One row of weights.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    pub fn row(&self, y: usize) -> &[f64] {
        assert!(y < self.height, "kernel row out of bounds");
        &self.weights[y * self.width..(y + 1) * self.width]
    }

    /// Whether any weight is negative — if so, the delay-space architecture
    /// needs the split representation and an nLDE subtraction unit (§4.4).
    pub fn has_negative_weights(&self) -> bool {
        self.weights.iter().any(|&w| w < 0.0)
    }

    /// Sum of all weights.
    pub fn sum(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Splits into `(positive_part, negative_part)` with non-negative
    /// weights each, such that `self = positive_part - negative_part`
    /// (the split-kernel decomposition of §4.4).
    pub fn split_signs(&self) -> (Kernel, Kernel) {
        let pos: Vec<f64> = self.weights.iter().map(|&w| w.max(0.0)).collect();
        let neg: Vec<f64> = self.weights.iter().map(|&w| (-w).max(0.0)).collect();
        (
            Kernel::new(format!("{}+", self.name), self.width, self.height, pos),
            Kernel::new(format!("{}-", self.name), self.width, self.height, neg),
        )
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}×{})", self.name, self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sobel_pair_shapes() {
        let sx = Kernel::sobel_x();
        let sy = Kernel::sobel_y();
        assert_eq!((sx.width(), sx.height()), (3, 3));
        assert!(sx.has_negative_weights());
        assert_eq!(sx.sum(), 0.0);
        // sobel_y is sobel_x transposed.
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(sx.weight(x, y), sy.weight(y, x));
            }
        }
    }

    #[test]
    fn pyr_down_is_normalised_binomial() {
        let k = Kernel::pyr_down_5x5();
        assert!((k.sum() - 1.0).abs() < 1e-12);
        assert!(!k.has_negative_weights());
        assert!((k.weight(2, 2) - 36.0 / 256.0).abs() < 1e-12);
        assert!((k.weight(0, 0) - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_normalised_and_symmetric() {
        let k = Kernel::gaussian(7, 1.5);
        assert!((k.sum() - 1.0).abs() < 1e-12);
        assert!(!k.has_negative_weights());
        assert!(k.weight(3, 3) > k.weight(0, 0));
        assert_eq!(k.weight(0, 3), k.weight(6, 3));
        assert_eq!(k.weight(3, 0), k.weight(3, 6));
    }

    #[test]
    fn gaussian_default_sigma_like_opencv() {
        let a = Kernel::gaussian(7, 0.0);
        let expect_sigma = 0.3 * (3.0 - 1.0) + 0.8;
        let b = Kernel::gaussian(7, expect_sigma);
        for (wa, wb) in a.weights().iter().zip(b.weights()) {
            assert!((wa - wb).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn gaussian_rejects_even_size() {
        Kernel::gaussian(4, 1.0);
    }

    #[test]
    fn edge_ternary_patterns() {
        let k22 = Kernel::edge_ternary(2, 2);
        assert_eq!(k22.weights(), &[1.0, -1.0, 1.0, -1.0]);
        let k33 = Kernel::edge_ternary(3, 3);
        assert_eq!(k33.row(0), &[1.0, 0.0, -1.0]);
        let k44 = Kernel::edge_ternary(4, 4);
        assert_eq!(k44.row(0), &[1.0, 1.0, -1.0, -1.0]);
        assert!(k44.has_negative_weights());
    }

    #[test]
    fn extended_kernels() {
        let lap = Kernel::laplacian();
        assert_eq!(lap.sum(), 0.0);
        assert_eq!(lap.weight(1, 1), -4.0);
        assert!(lap.has_negative_weights());
        let sharp = Kernel::sharpen();
        assert_eq!(sharp.sum(), 1.0);
        assert_eq!(sharp.weight(1, 1), 5.0);
        let emb = Kernel::emboss();
        assert_eq!(emb.sum(), 1.0);
        assert_eq!(emb.weight(0, 0), -2.0);
        assert_eq!(emb.weight(2, 2), 2.0);
    }

    #[test]
    fn split_signs_reconstructs() {
        let k = Kernel::sobel_x();
        let (p, n) = k.split_signs();
        assert!(!p.has_negative_weights());
        assert!(!n.has_negative_weights());
        for i in 0..9 {
            assert_eq!(p.weights()[i] - n.weights()[i], k.weights()[i]);
        }
    }

    #[test]
    fn box_filter_is_mean() {
        let k = Kernel::box_filter(3);
        assert!((k.sum() - 1.0).abs() < 1e-12);
        assert_eq!(k.weight(1, 1), 1.0 / 9.0);
    }
}
