//! Reference software convolution (the importance-space ground truth).
//!
//! The paper's simulator is verified by checking that its importance-space
//! and exact-delay-space modes "produce the exact same result as software
//! convolution" (§5.1); this module *is* that software convolution.

use crate::{Image, Kernel};

/// Output dimensions of a valid (no-padding) convolution.
///
/// Returns `None` if the kernel does not fit in the image.
pub fn output_dims(
    image_w: usize,
    image_h: usize,
    kernel: &Kernel,
    stride: usize,
) -> Option<(usize, usize)> {
    if stride == 0 || kernel.width() > image_w || kernel.height() > image_h {
        return None;
    }
    Some((
        (image_w - kernel.width()) / stride + 1,
        (image_h - kernel.height()) / stride + 1,
    ))
}

/// Convolves `image` with `kernel` using valid padding and the given
/// stride. This is *correlation* in the signal-processing sense (no kernel
/// flip), matching the filter-bank convention of CNNs and of the paper's
/// filter-weight delay matrix.
///
/// # Panics
///
/// Panics if `stride == 0` or the kernel does not fit in the image.
pub fn convolve(image: &Image, kernel: &Kernel, stride: usize) -> Image {
    let (ow, oh) = output_dims(image.width(), image.height(), kernel, stride)
        .expect("kernel must fit in the image and stride must be non-zero");
    Image::from_fn(ow, oh, |ox, oy| {
        let mut acc = 0.0;
        for ky in 0..kernel.height() {
            for kx in 0..kernel.width() {
                acc += image.get(ox * stride + kx, oy * stride + ky) * kernel.weight(kx, ky);
            }
        }
        acc
    })
}

/// Convolves with several kernels at once (e.g. the Sobel x/y pair),
/// returning one output image per kernel.
///
/// # Panics
///
/// Same contract as [`convolve`].
pub fn convolve_multi(image: &Image, kernels: &[Kernel], stride: usize) -> Vec<Image> {
    kernels.iter().map(|k| convolve(image, k, stride)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_math() {
        let k = Kernel::box_filter(3);
        assert_eq!(output_dims(10, 8, &k, 1), Some((8, 6)));
        assert_eq!(output_dims(10, 8, &k, 2), Some((4, 3)));
        assert_eq!(output_dims(2, 8, &k, 1), None);
        assert_eq!(output_dims(10, 8, &k, 0), None);
    }

    #[test]
    fn identity_kernel_passthrough() {
        let k = Kernel::new("id", 1, 1, vec![1.0]);
        let img = Image::from_fn(4, 3, |x, y| (x * 10 + y) as f64);
        assert_eq!(convolve(&img, &k, 1), img);
    }

    #[test]
    fn hand_computed_3x3() {
        // Image rows: 1 2 3 / 4 5 6 / 7 8 9, box kernel (all 1/9):
        let img = Image::from_fn(3, 3, |x, y| (y * 3 + x + 1) as f64);
        let k = Kernel::new("ones", 3, 3, vec![1.0; 9]);
        let out = convolve(&img, &k, 1);
        assert_eq!(out.width(), 1);
        assert_eq!(out.get(0, 0), 45.0);
    }

    #[test]
    fn sobel_on_vertical_edge() {
        // Left half 0, right half 1: sobel_x responds, sobel_y silent.
        let img = Image::from_fn(6, 6, |x, _| if x < 3 { 0.0 } else { 1.0 });
        let gx = convolve(&img, &Kernel::sobel_x(), 1);
        let gy = convolve(&img, &Kernel::sobel_y(), 1);
        // Strongest response where the kernel straddles the edge.
        let (_, max_gx) = gx.min_max();
        assert_eq!(max_gx, 4.0);
        let (min_gy, max_gy) = gy.min_max();
        assert_eq!((min_gy, max_gy), (0.0, 0.0));
    }

    #[test]
    fn stride_subsamples() {
        let img = Image::from_fn(7, 7, |x, y| (x + y) as f64);
        let k = Kernel::new("id", 1, 1, vec![1.0]);
        let out = convolve(&img, &k, 2);
        assert_eq!((out.width(), out.height()), (4, 4));
        assert_eq!(out.get(1, 1), 4.0); // source pixel (2, 2)
    }

    #[test]
    fn stride_matches_pyr_down_geometry() {
        // 150×150 with 5×5 stride 2: (150-5)/2+1 = 73.
        let img = Image::zeros(150, 150);
        let out = convolve(&img, &Kernel::pyr_down_5x5(), 2);
        assert_eq!((out.width(), out.height()), (73, 73));
    }

    #[test]
    fn gaussian_preserves_constant_images() {
        let img = Image::from_fn(10, 10, |_, _| 0.42);
        let out = convolve(&img, &Kernel::gaussian(7, 1.2), 1);
        for &p in out.pixels() {
            assert!((p - 0.42).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_kernel_matches_individual() {
        let img = Image::from_fn(8, 8, |x, y| ((x * 31 + y * 17) % 7) as f64 / 7.0);
        let ks = [Kernel::sobel_x(), Kernel::sobel_y()];
        let multi = convolve_multi(&img, &ks, 1);
        assert_eq!(multi[0], convolve(&img, &ks[0], 1));
        assert_eq!(multi[1], convolve(&img, &ks[1], 1));
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_kernel_panics() {
        convolve(&Image::zeros(2, 2), &Kernel::box_filter(3), 1);
    }
}
