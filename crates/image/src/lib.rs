//! Image substrate: grayscale images, convolution kernels, a reference
//! software convolution, synthetic datasets, and error metrics.
//!
//! This crate supplies everything the architectural evaluation needs from
//! the image-processing world, implemented from scratch:
//!
//! * [`Image`] — a dense grayscale image with `f64` pixels in `[0, 1]`.
//! * [`Kernel`] — convolution filters, with constructors for the paper's
//!   benchmarks (Table 1): the OpenCV-style Sobel pair, `pyrDown`'s 5×5
//!   binomial kernel, Gaussian blur, and the 1.5-bit ternary edge filter of
//!   the processing-in-pixel comparison (Table 3).
//! * [`conv`] — the reference importance-space convolution (valid padding,
//!   arbitrary stride), the ground truth every simulator mode is verified
//!   against (paper §5.1).
//! * [`synth`] — a deterministic synthetic dataset with natural-image-like
//!   statistics, substituting for Imagenette (see DESIGN.md §3).
//! * [`metrics`] — RMSE and range-normalised RMSE.
//! * [`pgm`] — dependency-free PGM (portable graymap) image I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
mod image;
mod kernel;
pub mod metrics;
pub mod pgm;
pub mod synth;

pub use image::{Image, ImageError};
pub use kernel::Kernel;
