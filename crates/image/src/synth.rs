//! Deterministic synthetic images standing in for the Imagenette dataset.
//!
//! The paper evaluates on five Imagenette photographs scaled to 150×150
//! (§5.3). Photographs are not redistributable inside this repository, so
//! we substitute procedurally generated images whose pixel statistics are
//! natural-image-like: multi-octave value noise (1/f-style spectrum) plus
//! smooth illumination gradients and a few hard-edged shapes, normalised to
//! `[0, 1]`. The evaluation metric — range-normalised RMSE of the
//! arithmetic — depends on pixel statistics, not semantics, so this
//! preserves the experiments' behaviour (see DESIGN.md §3).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Image;

/// The image geometry the paper's evaluation uses.
pub const EVAL_SIZE: usize = 150;

/// Generates one natural-statistics synthetic image of the given size.
///
/// Deterministic in `seed`.
///
/// ```
/// use ta_image::synth;
/// let img = synth::natural_image(64, 64, 7);
/// let (lo, hi) = img.min_max();
/// assert!(lo >= 0.0 && hi <= 1.0);
/// assert_eq!(img, synth::natural_image(64, 64, 7)); // reproducible
/// ```
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn natural_image(width: usize, height: usize, seed: u64) -> Image {
    assert!(width > 0 && height > 0, "image dimensions must be non-zero");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_1a7e_0000);

    // Multi-octave value noise: each octave is a coarse random lattice
    // upsampled with bilinear interpolation; amplitude halves per octave,
    // giving the 1/f-flavoured spectrum of natural photographs.
    let octaves = [(4usize, 0.5), (8, 0.25), (16, 0.125), (32, 0.0625)];
    let mut fields = Vec::new();
    for &(cells, amp) in &octaves {
        let lattice: Vec<f64> = (0..(cells + 1) * (cells + 1))
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        fields.push((cells, amp, lattice));
    }

    // Illumination gradient.
    let gx = rng.gen_range(-0.3..0.3);
    let gy = rng.gen_range(-0.3..0.3);

    // A few hard-edged rectangles and a disc — edge content for the edge
    // detection benchmarks.
    let n_shapes = rng.gen_range(2..5);
    let shapes: Vec<(f64, f64, f64, f64, f64)> = (0..n_shapes)
        .map(|_| {
            (
                rng.gen_range(0.0..1.0),  // cx
                rng.gen_range(0.0..1.0),  // cy
                rng.gen_range(0.05..0.3), // half-size
                rng.gen_range(0.1..0.5),  // contrast
                rng.gen_range(0.0..1.0),  // roundness selector
            )
        })
        .collect();

    let img = Image::from_fn(width, height, |x, y| {
        let u = x as f64 / width as f64;
        let v = y as f64 / height as f64;
        let mut p = 0.5 + gx * (u - 0.5) + gy * (v - 0.5);
        for (cells, amp, lattice) in &fields {
            p += amp * (bilinear(lattice, *cells, u, v) - 0.5);
        }
        for &(cx, cy, r, c, round) in &shapes {
            let inside = if round > 0.5 {
                (u - cx).powi(2) + (v - cy).powi(2) < r * r
            } else {
                (u - cx).abs() < r && (v - cy).abs() < r
            };
            if inside {
                p += c - 0.25;
            }
        }
        p
    });

    // Normalise to [0, 1].
    let (lo, hi) = img.min_max();
    let span = (hi - lo).max(1e-12);
    img.map(|p| (p - lo) / span)
}

/// The paper's five-image evaluation set at 150×150 (§5.3), deterministic
/// in `seed`.
pub fn eval_set(seed: u64) -> Vec<Image> {
    (0..5)
        .map(|i| natural_image(EVAL_SIZE, EVAL_SIZE, seed.wrapping_add(i)))
        .collect()
}

/// Structured test scenes for exercising specific filter behaviours —
/// used by examples and the ablation/noise studies alongside the
/// natural-statistics generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scene {
    /// Vertical bars of alternating intensity (drives Sobel-x hard,
    /// leaves Sobel-y silent).
    VerticalBars {
        /// Bar width in pixels.
        period: usize,
    },
    /// A checkerboard (rich in both gradient directions).
    Checkerboard {
        /// Tile edge length in pixels.
        tile: usize,
    },
    /// A smooth radial vignette (no hard edges — worst case for edge
    /// detectors, best case for blurs).
    Vignette,
    /// Random bright discs on a dark field (blob-like foregrounds).
    Blobs {
        /// Number of discs.
        count: usize,
    },
}

/// Renders a structured scene. Deterministic in `seed` (only
/// [`Scene::Blobs`] consumes randomness).
///
/// # Panics
///
/// Panics if a dimension or a scene parameter is zero.
pub fn scene(kind: Scene, width: usize, height: usize, seed: u64) -> Image {
    assert!(width > 0 && height > 0, "image dimensions must be non-zero");
    match kind {
        Scene::VerticalBars { period } => {
            assert!(period > 0, "bar period must be non-zero");
            Image::from_fn(width, height, |x, _| {
                if (x / period) % 2 == 0 {
                    0.15
                } else {
                    0.85
                }
            })
        }
        Scene::Checkerboard { tile } => {
            assert!(tile > 0, "tile size must be non-zero");
            Image::from_fn(width, height, |x, y| {
                if (x / tile + y / tile) % 2 == 0 {
                    0.1
                } else {
                    0.9
                }
            })
        }
        Scene::Vignette => Image::from_fn(width, height, |x, y| {
            let dx = x as f64 / width as f64 - 0.5;
            let dy = y as f64 / height as f64 - 0.5;
            (1.0 - 1.6 * (dx * dx + dy * dy)).clamp(0.02, 1.0)
        }),
        Scene::Blobs { count } => {
            assert!(count > 0, "need at least one blob");
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xb10b);
            let blobs: Vec<(f64, f64, f64)> = (0..count)
                .map(|_| {
                    (
                        rng.gen_range(0.1..0.9),
                        rng.gen_range(0.1..0.9),
                        rng.gen_range(0.03..0.15),
                    )
                })
                .collect();
            Image::from_fn(width, height, |x, y| {
                let u = x as f64 / width as f64;
                let v = y as f64 / height as f64;
                let mut p = 0.08;
                for &(cx, cy, r) in &blobs {
                    let d2 = (u - cx).powi(2) + (v - cy).powi(2);
                    p += 0.85 * (-d2 / (r * r)).exp();
                }
                p.min(1.0)
            })
        }
    }
}

fn bilinear(lattice: &[f64], cells: usize, u: f64, v: f64) -> f64 {
    let fx = u * cells as f64;
    let fy = v * cells as f64;
    let x0 = (fx as usize).min(cells - 1);
    let y0 = (fy as usize).min(cells - 1);
    let tx = fx - x0 as f64;
    let ty = fy - y0 as f64;
    let w = cells + 1;
    let a = lattice[y0 * w + x0];
    let b = lattice[y0 * w + x0 + 1];
    let c = lattice[(y0 + 1) * w + x0];
    let d = lattice[(y0 + 1) * w + x0 + 1];
    a * (1.0 - tx) * (1.0 - ty) + b * tx * (1.0 - ty) + c * (1.0 - tx) * ty + d * tx * ty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalised_and_reproducible() {
        let a = natural_image(50, 40, 3);
        let b = natural_image(50, 40, 3);
        assert_eq!(a, b);
        let (lo, hi) = a.min_max();
        assert!((lo - 0.0).abs() < 1e-9);
        assert!((hi - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(natural_image(32, 32, 1), natural_image(32, 32, 2));
    }

    #[test]
    fn eval_set_is_five_150x150() {
        let set = eval_set(42);
        assert_eq!(set.len(), 5);
        for img in &set {
            assert_eq!((img.width(), img.height()), (EVAL_SIZE, EVAL_SIZE));
        }
        // Images within the set are distinct.
        assert_ne!(set[0], set[1]);
    }

    #[test]
    fn has_midtone_structure() {
        // Natural-ish statistics: mean well inside (0,1), not a flat field.
        let img = natural_image(100, 100, 9);
        let mean = img.mean();
        assert!(mean > 0.2 && mean < 0.8, "mean {mean}");
        let var: f64 = img
            .pixels()
            .iter()
            .map(|p| (p - mean) * (p - mean))
            .sum::<f64>()
            / img.pixels().len() as f64;
        assert!(var > 0.005, "variance {var}");
    }

    #[test]
    fn scenes_have_their_designed_structure() {
        // Bars: constant along y, alternating along x.
        let bars = scene(Scene::VerticalBars { period: 4 }, 32, 16, 0);
        assert_eq!(bars.get(0, 0), bars.get(0, 15));
        assert_ne!(bars.get(0, 0), bars.get(4, 0));
        // Checkerboard alternates both ways.
        let check = scene(Scene::Checkerboard { tile: 2 }, 16, 16, 0);
        assert_ne!(check.get(0, 0), check.get(2, 0));
        assert_ne!(check.get(0, 0), check.get(0, 2));
        assert_eq!(check.get(0, 0), check.get(2, 2));
        // Vignette: brightest at the centre, in range.
        let vig = scene(Scene::Vignette, 33, 33, 0);
        assert!(vig.get(16, 16) > vig.get(0, 0));
        let (lo, hi) = vig.min_max();
        assert!(lo >= 0.0 && hi <= 1.0);
        // Blobs: reproducible and bounded.
        let b1 = scene(Scene::Blobs { count: 3 }, 24, 24, 7);
        let b2 = scene(Scene::Blobs { count: 3 }, 24, 24, 7);
        assert_eq!(b1, b2);
        let (lo, hi) = b1.min_max();
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn bars_drive_only_one_sobel_direction() {
        use crate::{conv, Kernel};
        let bars = scene(Scene::VerticalBars { period: 5 }, 30, 30, 0);
        let gx = conv::convolve(&bars, &Kernel::sobel_x(), 1);
        let gy = conv::convolve(&bars, &Kernel::sobel_y(), 1);
        let (_, max_gx) = gx.map(f64::abs).min_max();
        let (_, max_gy) = gy.map(f64::abs).min_max();
        assert!(max_gx > 1.0);
        assert!(max_gy < 1e-12, "gy should be numerically silent: {max_gy}");
    }

    #[test]
    fn neighbouring_pixels_correlate() {
        // 1/f-style fields are spatially smooth: neighbour correlation must
        // be far above white noise.
        let img = natural_image(100, 100, 11);
        let mean = img.mean();
        let mut cov = 0.0;
        let mut var = 0.0;
        for y in 0..img.height() {
            for x in 0..img.width() - 1 {
                cov += (img.get(x, y) - mean) * (img.get(x + 1, y) - mean);
                var += (img.get(x, y) - mean).powi(2);
            }
        }
        assert!(cov / var > 0.7, "neighbour correlation {}", cov / var);
    }
}
