//! Dense grayscale image container.

use std::error::Error;
use std::fmt;

/// Error for invalid image construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// Pixel buffer length does not equal `width × height`.
    SizeMismatch {
        /// Expected number of pixels.
        expected: usize,
        /// Supplied number of pixels.
        got: usize,
    },
    /// Width or height was zero.
    EmptyDimension,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::SizeMismatch { expected, got } => {
                write!(
                    f,
                    "pixel buffer holds {got} values, dimensions need {expected}"
                )
            }
            ImageError::EmptyDimension => write!(f, "image dimensions must be non-zero"),
        }
    }
}

impl Error for ImageError {}

/// A dense, row-major grayscale image with `f64` pixels.
///
/// Sensor pixels are normalised to `[0, 1]` by convention (the VTC models
/// assume this range), but the container itself accepts any finite values —
/// convolution *outputs* routinely leave `[0, 1]`.
///
/// ```
/// use ta_image::Image;
/// let img = Image::from_fn(4, 3, |x, y| (x + y) as f64 / 10.0);
/// assert_eq!(img.width(), 4);
/// assert_eq!(img.get(3, 2), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Image {
    /// Creates an all-zero image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Image {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel
    /// (`x` = column, `y` = row).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] if the buffer length does not match the
    /// dimensions or a dimension is zero.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f64>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::EmptyDimension);
        }
        if pixels.len() != width * height {
            return Err(ImageError::SizeMismatch {
                expected: width * height,
                got: pixels.len(),
            });
        }
        Ok(Image {
            width,
            height,
            pixels,
        })
    }

    /// Image width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: f64) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// The underlying row-major pixel buffer.
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// One row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    pub fn row(&self, y: usize) -> &[f64] {
        assert!(y < self.height, "row out of bounds");
        &self.pixels[y * self.width..(y + 1) * self.width]
    }

    /// Applies `f` to every pixel, returning a new image.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Image {
        Image {
            width: self.width,
            height: self.height,
            pixels: self.pixels.iter().map(|&p| f(p)).collect(),
        }
    }

    /// Clamps all pixels into `[lo, hi]`.
    pub fn clamped(&self, lo: f64, hi: f64) -> Image {
        self.map(|p| p.clamp(lo, hi))
    }

    /// Minimum and maximum pixel values.
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &p in &self.pixels {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.pixels.iter().sum::<f64>() / self.pixels.len() as f64
    }

    /// Nearest-neighbour rescale to `new_width × new_height`, used to bring
    /// synthetic dataset images to the evaluation's 150×150 geometry.
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn resized(&self, new_width: usize, new_height: usize) -> Image {
        assert!(
            new_width > 0 && new_height > 0,
            "image dimensions must be non-zero"
        );
        Image::from_fn(new_width, new_height, |x, y| {
            let sx = x * self.width / new_width;
            let sy = y * self.height / new_height;
            self.get(sx, sy)
        })
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image({}×{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_indexing_is_row_major() {
        let img = Image::from_fn(3, 2, |x, y| (10 * y + x) as f64);
        assert_eq!(img.pixels(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(img.get(2, 1), 12.0);
        assert_eq!(img.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_pixels_validates() {
        assert_eq!(
            Image::from_pixels(2, 2, vec![0.0; 3]).unwrap_err(),
            ImageError::SizeMismatch {
                expected: 4,
                got: 3
            }
        );
        assert_eq!(
            Image::from_pixels(0, 2, vec![]).unwrap_err(),
            ImageError::EmptyDimension
        );
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = Image::zeros(4, 4);
        img.set(1, 3, 0.7);
        assert_eq!(img.get(1, 3), 0.7);
        assert_eq!(img.get(3, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Image::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn map_and_clamp() {
        let img = Image::from_fn(2, 2, |x, _| x as f64 * 2.0 - 0.5);
        let c = img.clamped(0.0, 1.0);
        assert_eq!(c.pixels(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn min_max_mean() {
        let img = Image::from_fn(2, 2, |x, y| (x + 2 * y) as f64);
        assert_eq!(img.min_max(), (0.0, 3.0));
        assert_eq!(img.mean(), 1.5);
    }

    #[test]
    fn resize_nearest() {
        let img = Image::from_fn(4, 4, |x, _| x as f64);
        let small = img.resized(2, 2);
        assert_eq!(small.get(0, 0), 0.0);
        assert_eq!(small.get(1, 1), 2.0);
        let big = img.resized(8, 8);
        assert_eq!(big.width(), 8);
        assert_eq!(big.get(7, 0), 3.0);
    }
}
