//! Property tests of the PGM reader/writer: the P2 (ASCII) and P5
//! (binary) encodings of the same raster must decode to the same image,
//! and a write/read round trip must be lossless at 8-bit quantisation.

use proptest::prelude::*;
use ta_image::{pgm, Image};

/// A random 8-bit raster with its dimensions.
fn raster() -> impl Strategy<Value = (usize, usize, Vec<u8>)> {
    (1usize..=12, 1usize..=12).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u8..=255, w * h).prop_map(move |px| (w, h, px))
    })
}

/// Serialises a raster as ASCII P2.
fn as_p2(w: usize, h: usize, px: &[u8]) -> Vec<u8> {
    let mut s = format!("P2\n{w} {h}\n255\n");
    for (i, p) in px.iter().enumerate() {
        s.push_str(&p.to_string());
        s.push(if (i + 1) % w == 0 { '\n' } else { ' ' });
    }
    s.into_bytes()
}

/// Serialises a raster as binary P5.
fn as_p5(w: usize, h: usize, px: &[u8]) -> Vec<u8> {
    let mut bytes = format!("P5\n{w} {h}\n255\n").into_bytes();
    bytes.extend_from_slice(px);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn p2_and_p5_decode_identically(r in raster()) {
        let (w, h, px) = r;
        let ascii = pgm::read_pgm(&as_p2(w, h, &px)[..]).unwrap();
        let binary = pgm::read_pgm(&as_p5(w, h, &px)[..]).unwrap();
        prop_assert_eq!((ascii.width(), ascii.height()), (w, h));
        for (a, b) in ascii.pixels().iter().zip(binary.pixels()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn write_read_roundtrip_is_lossless_at_8_bit(r in raster()) {
        let (w, h, px) = r;
        let img = pgm::read_pgm(&as_p5(w, h, &px)[..]).unwrap();
        let mut buf = Vec::new();
        pgm::write_pgm(&img, &mut buf).unwrap();
        let back = pgm::read_pgm(&buf[..]).unwrap();
        prop_assert_eq!((back.width(), back.height()), (w, h));
        // Pixels already on the 8-bit grid survive the round trip exactly.
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        // Any byte soup either parses or returns PgmError — never panics.
        let _ = pgm::read_pgm(&bytes[..]);
    }

    #[test]
    fn corrupted_valid_files_never_panic(r in raster(), cut in 0usize..=40) {
        let (w, h, px) = r;
        let full = as_p5(w, h, &px);
        let truncated = &full[..full.len().saturating_sub(cut)];
        let _ = pgm::read_pgm(truncated);
    }
}

#[test]
fn images_survive_via_image_from_fn() {
    // Anchor the property tests against one concrete hand-built frame.
    let img = Image::from_fn(3, 2, |x, y| (x + y) as f64 / 4.0);
    let mut buf = Vec::new();
    pgm::write_pgm(&img, &mut buf).unwrap();
    let back = pgm::read_pgm(&buf[..]).unwrap();
    assert_eq!((back.width(), back.height()), (3, 2));
}
