//! Golden equivalence for the netlist optimizer + event-driven gate
//! engine (ISSUE 10 acceptance gate, DESIGN.md §5.16): the optimized
//! [`GateEngine`] — constant folding, hash-consing, dead-gate
//! elimination, event-queue evaluation — must be *bit-identical* to the
//! unoptimized full-sweep engine on every geometry the compiler can
//! produce, clean and under fault injection, and must keep tracking the
//! functional simulator in every [`ArithmeticMode`] exactly as the
//! unoptimized engine does.
//!
//! Edge geometries from the satellite checklist: 1×1 kernels (the tree
//! degenerates to a single leaf), single-rail architectures (no nLDE),
//! all-zero weight rows (a whole cycle netlist folds to the recurrent
//! partial), and fault injection whose sites resolve through the sharing
//! map onto merged gates.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ta_core::fault::{FaultKind, FaultMap, FaultModel, FaultSite};
use ta_core::transform::Rail;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, GateEngine, SystemDescription};
use ta_image::{metrics, synth, Image, Kernel};

fn assert_images_bit_identical(a: &[Image], b: &[Image], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: kernel count");
    for (k, (ia, ib)) in a.iter().zip(b).enumerate() {
        for (i, (pa, pb)) in ia.pixels().iter().zip(ib.pixels()).enumerate() {
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "{what}: kernel {k} pixel {i}: {pa} vs {pb}"
            );
        }
    }
}

/// The geometry sweep: every named case compiles both engines and must
/// agree bit-for-bit. The bool marks cases with zero-weight columns or
/// rows, where never-leaf folding must strictly shrink the netlists;
/// dense kernels (box, pyramid, full 1×1) have nothing to fold and only
/// dedup/event wins apply.
fn cases() -> Vec<(&'static str, Vec<Kernel>, usize, usize, bool)> {
    vec![
        ("sobel_split_rail", vec![Kernel::sobel_x()], 1, 10, true),
        ("single_rail_box", vec![Kernel::box_filter(3)], 1, 12, false),
        (
            "one_by_one",
            vec![Kernel::new("identity_gain", 1, 1, vec![0.8])],
            1,
            8,
            false,
        ),
        (
            "all_zero_weight_row",
            vec![Kernel::new(
                "gap_row",
                3,
                3,
                vec![0.5, 1.0, 0.5, 0.0, 0.0, 0.0, 0.5, 1.0, 0.5],
            )],
            1,
            10,
            true,
        ),
        (
            "multi_kernel_stride2",
            vec![Kernel::sobel_x(), Kernel::sobel_y()],
            1,
            9,
            true,
        ),
        (
            "pyramid_stride2",
            vec![Kernel::pyr_down_5x5()],
            2,
            13,
            false,
        ),
    ]
}

#[test]
fn optimized_engine_is_bit_identical_clean() {
    for (name, kernels, stride, size, expect_reduction) in cases() {
        let desc = SystemDescription::new(size, size, kernels, stride).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
        let optimized = GateEngine::compile(&arch);
        let golden = GateEngine::compile_unoptimized(&arch);
        let img = synth::natural_image(size, size, 11);

        let (opt_outs, opt_stats) = optimized.run_counted(&arch, &img).unwrap();
        let (ref_outs, ref_stats) = golden.run_counted(&arch, &img).unwrap();
        assert_images_bit_identical(&opt_outs, &ref_outs, name);

        // The optimizer must actually shrink the netlists, and the event
        // queue must evaluate no more gates than the full sweep.
        let summary = optimized
            .opt_summary()
            .expect("compile() enables the optimizer");
        assert!(golden.opt_summary().is_none());
        assert!(
            summary.gates_post <= summary.gates_pre,
            "{name}: {summary:?}"
        );
        assert_eq!(opt_stats.cycle_evals, ref_stats.cycle_evals, "{name}");
        assert!(
            opt_stats.gate_evals <= ref_stats.gate_evals,
            "{name}: events {} above sweep {}",
            opt_stats.gate_evals,
            ref_stats.gate_evals
        );
        if expect_reduction {
            assert!(
                summary.gates_post < summary.gates_pre,
                "{name}: no reduction: {summary:?}"
            );
            assert!(
                opt_stats.gate_evals < ref_stats.gate_evals,
                "{name}: events {} not below sweep {}",
                opt_stats.gate_evals,
                ref_stats.gate_evals
            );
        }
    }
}

#[test]
fn optimized_engine_tracks_functional_in_every_mode() {
    // The unoptimized engine is pinned to the functional simulator's
    // DelayApprox mode at 1e-9 rmse; the optimized engine, being
    // bit-identical to it, must hold the same bound — and the remaining
    // modes bracket it exactly as they bracket the unoptimized engine
    // (identical outputs make the comparisons interchangeable).
    for (name, kernels, stride, size, _) in cases() {
        let desc = SystemDescription::new(size, size, kernels, stride).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(size, size, 12);
        let gate_outs = engine.run(&arch, &img).unwrap();
        for mode in ArithmeticMode::ALL {
            let functional = exec::run(&arch, &img, mode, 5).unwrap();
            for (g, f) in gate_outs.iter().zip(&functional.outputs) {
                let rmse = metrics::rmse(g, f);
                match mode {
                    ArithmeticMode::DelayApprox => assert!(
                        rmse < 1e-9,
                        "{name}/{mode:?}: optimized gate engine diverges: rmse {rmse}"
                    ),
                    // The exact modes differ from the gate engine only by
                    // the nLSE/nLDE approximation error; the noisy mode
                    // adds bounded jitter on top. Loose sanity bands —
                    // the tight pin is DelayApprox above.
                    _ => assert!(rmse.is_finite(), "{name}/{mode:?}: non-finite divergence"),
                }
            }
        }
    }
}

#[test]
fn optimized_engine_is_bit_identical_under_directed_faults() {
    // One instance of every fault class on the split-rail Sobel netlist,
    // including sites that land on gates the optimizer touched: weight
    // lines whose row-mates folded away, and a tree-chain drift that
    // resolves through the sharing map onto the merged tree hardware.
    let desc = SystemDescription::new(10, 10, vec![Kernel::sobel_x()], 1).unwrap();
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
    let optimized = GateEngine::compile(&arch);
    let golden = GateEngine::compile_unoptimized(&arch);
    let img = synth::natural_image(10, 10, 13);

    let mut map = FaultMap::new();
    map.insert(
        FaultSite::WeightLine {
            kernel: 0,
            rail: Rail::Pos,
            ky: 0,
            kx: 2,
        },
        FaultKind::StuckAtNever,
    )
    .unwrap();
    map.insert(
        FaultSite::WeightLine {
            kernel: 0,
            rail: Rail::Neg,
            ky: 1,
            kx: 0,
        },
        FaultKind::DelayDrift { fraction: 0.3 },
    )
    .unwrap();
    map.insert(
        FaultSite::WeightLine {
            kernel: 0,
            rail: Rail::Pos,
            ky: 2,
            kx: 2,
        },
        FaultKind::SpuriousEarly { advance_units: 0.4 },
    )
    .unwrap();
    map.insert(FaultSite::Pixel { x: 4, y: 5 }, FaultKind::StuckAtZero)
        .unwrap();
    map.insert(FaultSite::Pixel { x: 2, y: 7 }, FaultKind::DropEvent)
        .unwrap();
    map.insert(
        FaultSite::TreeChain {
            kernel: 0,
            rail: Rail::Pos,
        },
        FaultKind::DelayDrift { fraction: -0.2 },
    )
    .unwrap();
    map.insert(
        FaultSite::LoopLine {
            kernel: 0,
            rail: Rail::Neg,
        },
        FaultKind::DelayDrift { fraction: 0.15 },
    )
    .unwrap();
    map.insert(
        FaultSite::NldeChain { kernel: 0 },
        FaultKind::DelayDrift { fraction: 0.25 },
    )
    .unwrap();

    let (opt_outs, opt_stats) = optimized.run_faulty(&arch, &img, &map).unwrap();
    let (ref_outs, ref_stats) = golden.run_faulty(&arch, &img, &map).unwrap();
    assert_images_bit_identical(&opt_outs, &ref_outs, "directed faults");
    // Counters tally applications performed, so event skipping makes the
    // optimized totals ≤ the sweep's — but never zero under real faults.
    assert!(opt_stats.edges_faulted > 0);
    assert!(opt_stats.edges_faulted <= ref_stats.edges_faulted);
    assert_eq!(opt_stats.sites_injected, ref_stats.sites_injected);

    // Both engines must also still agree with the functional simulator.
    let functional = exec::run_faulty(&arch, &img, ArithmeticMode::DelayApprox, 0, &map).unwrap();
    for (g, f) in opt_outs.iter().zip(&functional.outputs) {
        assert!(metrics::rmse(g, f) < 1e-9);
    }
}

#[test]
fn optimized_engine_is_bit_identical_under_sampled_campaigns() {
    for (name, kernels, stride, size, _) in cases() {
        let desc = SystemDescription::new(size, size, kernels, stride).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
        let optimized = GateEngine::compile(&arch);
        let golden = GateEngine::compile_unoptimized(&arch);
        let img = synth::natural_image(size, size, 14);
        for seed in 0..3 {
            let map = FaultModel::with_rate(0.15).unwrap().sample(&arch, seed);
            let (opt_outs, _) = optimized.run_faulty(&arch, &img, &map).unwrap();
            let (ref_outs, _) = golden.run_faulty(&arch, &img, &map).unwrap();
            assert_images_bit_identical(
                &opt_outs,
                &ref_outs,
                &format!("{name} campaign seed {seed}"),
            );
        }
    }
}

#[test]
fn noisy_mode_is_unaffected_by_the_optimizer() {
    // Noisy evaluation consumes one RNG draw per delay element per sweep,
    // so it must stay on the unoptimized netlists; both engines share
    // them, making the noisy outputs literally identical.
    let desc = SystemDescription::new(12, 12, vec![Kernel::box_filter(3)], 1).unwrap();
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
    let optimized = GateEngine::compile(&arch);
    let golden = GateEngine::compile_unoptimized(&arch);
    let img = synth::natural_image(12, 12, 15);
    let a = optimized.run_noisy(&arch, &img, 42).unwrap();
    let b = golden.run_noisy(&arch, &img, 42).unwrap();
    assert_images_bit_identical(&a, &b, "noisy");
}

#[test]
fn empty_fault_map_through_optimizer_observes_nothing() {
    // The fault-rate-zero invariant must survive the optimizer: an empty
    // map takes the event-driven path and still reports a default stats
    // block, bit-identical to the clean run.
    let desc = SystemDescription::new(10, 10, vec![Kernel::sobel_x()], 1).unwrap();
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
    let engine = GateEngine::compile(&arch);
    let img = synth::natural_image(10, 10, 16);
    let clean = engine.run(&arch, &img).unwrap();
    let (faulty, stats) = engine.run_faulty(&arch, &img, &FaultMap::new()).unwrap();
    assert_images_bit_identical(&clean, &faulty, "empty map");
    assert_eq!(stats, ta_core::fault::FaultStats::default());
}

#[test]
fn sobel_reduction_meets_the_energy_table_floor() {
    // The acceptance criterion feeding the energy/area tables: ≥ 30%
    // gate-count reduction on the Sobel netlist (never-leaf folding of
    // absent weight columns plus cross-row dedup of identical rows).
    let desc = SystemDescription::new(16, 16, vec![Kernel::sobel_x()], 1).unwrap();
    let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
    let engine = GateEngine::compile(&arch);
    let summary = engine.opt_summary().unwrap();
    assert!(
        summary.reduction() >= 0.30,
        "sobel reduction {:.3} below floor: {summary:?}",
        summary.reduction()
    );
    // Sobel's rows 0 and 2 are identical per rail: dedup must fire.
    assert!(summary.netlists_deduped >= 2, "{summary:?}");
}
