//! Golden equivalence tests for the compiled plan executor (ISSUE 5
//! acceptance gate, DESIGN.md §5.11): the optimised engine — flattened
//! tree program, row-class cache, parallel pool — must be *bit-identical*
//! to the serial recursive reference engine (`ta_core::reference`) in
//! every [`ArithmeticMode`], with and without injected faults, at every
//! worker count. A cache hit and a fresh recursive evaluation must carry
//! the same bits, or rolling-shutter row reuse would be an approximation
//! instead of an optimisation.
//!
//! Everything lives in ONE test function on purpose: the worker count is
//! a process-global (`ta_pool::set_threads`), so sweeping it from
//! concurrently-running `#[test]` functions would race. One function in
//! its own integration binary gives the sweep a private process.
//!
//! Compiled only with `--features reference` (the workspace build enables
//! it through the root crate's dev profile); a plain
//! `cargo test -p ta-core` skips this binary.

#![cfg(feature = "reference")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ta_core::fault::{FaultMap, FaultModel};
use ta_core::{
    exec, reference, ArchConfig, Architecture, ArithmeticMode, RunResult, SystemDescription,
};
use ta_image::{synth, Kernel};

fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.outputs.len(), b.outputs.len(), "{what}: kernel count");
    for (k, (ia, ib)) in a.outputs.iter().zip(&b.outputs).enumerate() {
        for (i, (pa, pb)) in ia.pixels().iter().zip(ib.pixels()).enumerate() {
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "{what}: kernel {k} pixel {i}: {pa} vs {pb}"
            );
        }
    }
    assert_eq!(a.fault_stats, b.fault_stats, "{what}: fault stats");
    assert_eq!(a.ops, b.ops, "{what}: op counts");
}

#[test]
fn planned_executor_matches_recursive_reference() {
    // Split-rail kernels with shareable row classes (sobel rows 0/2), a
    // single-rail stride-2 pyramid tap (mirror rows 0/4 and 1/3), and
    // enough rows that 4 workers actually split the frame. Stride 1
    // maximises row reuse; stride 2 exercises partially-overlapping
    // windows.
    let cases = [
        (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1usize, 24usize),
        (vec![Kernel::pyr_down_5x5()], 2, 32),
    ];
    let modes = [
        ArithmeticMode::ImportanceExact,
        ArithmeticMode::DelayExact,
        ArithmeticMode::DelayApprox,
        ArithmeticMode::DelayApproxNoisy,
    ];

    for (kernels, stride, size) in cases {
        let desc =
            SystemDescription::new(size, size, kernels.clone(), stride).expect("geometry is valid");
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("schedule fits");
        assert!(
            arch.plan().row_classes() < kernels.len() * 2 * kernels[0].height(),
            "{}: test case must actually share row classes",
            kernels[0].name()
        );
        let img = synth::natural_image(size, size, 11);
        let clean = FaultMap::new();
        let faults = FaultModel::with_rate(0.05)
            .expect("rate is a probability")
            .sample(&arch, 3);
        assert!(!faults.is_empty(), "fault case must actually inject");

        for mode in modes {
            let oracle = reference::run_frame(&arch, &img, mode, 42, &clean).expect("reference");
            let faulty_oracle = (mode != ArithmeticMode::ImportanceExact).then(|| {
                reference::run_frame(&arch, &img, mode, 42, &faults).expect("faulty reference")
            });

            for threads in [1usize, 4] {
                ta_pool::set_threads(threads);
                let planned = exec::run(&arch, &img, mode, 42).expect("planned run");
                assert_bit_identical(
                    &oracle,
                    &planned,
                    &format!("{}@{threads} threads, {mode:?}", kernels[0].name()),
                );
                if let Some(ref fo) = faulty_oracle {
                    let planned_faulty =
                        exec::run_faulty(&arch, &img, mode, 42, &faults).expect("planned faulty");
                    assert_bit_identical(
                        fo,
                        &planned_faulty,
                        &format!("{}@{threads} threads, {mode:?}, faulty", kernels[0].name()),
                    );
                }
            }
        }
    }
    ta_pool::set_threads(0);
}
