//! SIMD dispatch parity for the planned executor (ISSUE 9 acceptance
//! gate, DESIGN.md §5.15): with `SimdMode::Identical` — the default —
//! the batched kernels must be *bit-identical* to the scalar golden
//! executor (`SimdMode::Off`) in every [`ArithmeticMode`], with and
//! without injected faults, at every worker count, and at every forced
//! ISA tier. `SimdMode::Tolerant` swaps libm transcendentals for the
//! polynomial lanes and is pinned by an nRMSE bound instead.
//!
//! Everything lives in ONE test function on purpose: both the worker
//! count (`ta_pool::set_threads`) and the SIMD mode/tier
//! (`ta_simd::{set_mode, force_tier}`) are process-globals, so sweeping
//! them from concurrently-running `#[test]` functions would race. One
//! function in its own integration binary gives the sweep a private
//! process.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ta_core::fault::{FaultMap, FaultModel};
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, RunResult, SystemDescription};
use ta_image::{synth, Kernel};
use ta_simd::{SimdMode, SimdTier};

fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.outputs.len(), b.outputs.len(), "{what}: kernel count");
    for (k, (ia, ib)) in a.outputs.iter().zip(&b.outputs).enumerate() {
        for (i, (pa, pb)) in ia.pixels().iter().zip(ib.pixels()).enumerate() {
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "{what}: kernel {k} pixel {i}: {pa} vs {pb}"
            );
        }
    }
    assert_eq!(a.fault_stats, b.fault_stats, "{what}: fault stats");
}

/// Root-mean-square error normalised by the golden output's value range.
fn nrmse(golden: &RunResult, got: &RunResult) -> f64 {
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (ia, ib) in golden.outputs.iter().zip(&got.outputs) {
        for (&pa, &pb) in ia.pixels().iter().zip(ib.pixels()) {
            sum_sq += (pa - pb) * (pa - pb);
            n += 1;
            lo = lo.min(pa);
            hi = hi.max(pa);
        }
    }
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    (sum_sq / n as f64).sqrt() / range
}

#[test]
fn simd_modes_agree_with_scalar_executor() {
    // Same geometry sweep as `plan_equivalence`: split-rail Sobel pair
    // with shared row classes at stride 1, single-rail 5×5 pyramid tap
    // at stride 2 (remainder tails: ow = 14 is not a multiple of any
    // lane count).
    let cases = [
        (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1usize, 24usize),
        (vec![Kernel::pyr_down_5x5()], 2, 32),
    ];
    let modes = [
        ArithmeticMode::ImportanceExact,
        ArithmeticMode::DelayExact,
        ArithmeticMode::DelayApprox,
        ArithmeticMode::DelayApproxNoisy,
    ];

    for (kernels, stride, size) in cases {
        let desc =
            SystemDescription::new(size, size, kernels.clone(), stride).expect("geometry is valid");
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("schedule fits");
        let img = synth::natural_image(size, size, 11);
        let clean = FaultMap::new();
        let faults = FaultModel::with_rate(0.05)
            .expect("rate is a probability")
            .sample(&arch, 3);
        assert!(!faults.is_empty(), "fault case must actually inject");
        let name = kernels[0].name().to_string();

        for mode in modes {
            let fault_sets: &[(&str, &FaultMap)] = if mode == ArithmeticMode::ImportanceExact {
                &[("clean", &clean)]
            } else {
                &[("clean", &clean), ("faulty", &faults)]
            };
            for threads in [1usize, 4] {
                ta_pool::set_threads(threads);
                for &(fname, fmap) in fault_sets {
                    let what =
                        |leg: &str| format!("{name}@{threads} threads, {mode:?}, {fname}, {leg}");
                    // `run_faulty` rejects the importance mode; the clean
                    // legs go through the plain entry point.
                    let run_leg = |leg: &str| -> RunResult {
                        if fmap.is_empty() {
                            exec::run(&arch, &img, mode, 42).expect(leg)
                        } else {
                            exec::run_faulty(&arch, &img, mode, 42, fmap).expect(leg)
                        }
                    };

                    ta_simd::set_mode(SimdMode::Off);
                    let golden = run_leg("scalar run");

                    // Identical mode at the detected tier: bit-for-bit.
                    ta_simd::set_mode(SimdMode::Identical);
                    let ident = run_leg("identical run");
                    assert_bit_identical(&golden, &ident, &what("identical@detected"));

                    // Identical mode pinned to the scalar tier: the
                    // remainder-tail companions must agree too.
                    ta_simd::force_tier(Some(SimdTier::Scalar)).expect("scalar tier always exists");
                    let ident_scalar = run_leg("scalar-tier run");
                    assert_bit_identical(&golden, &ident_scalar, &what("identical@scalar"));
                    ta_simd::force_tier(None).expect("clearing the override");

                    // Tolerant mode: polynomial transcendentals, pinned
                    // by normalised RMSE against the golden output.
                    ta_simd::set_mode(SimdMode::Tolerant);
                    let tol = run_leg("tolerant run");
                    let err = nrmse(&golden, &tol);
                    assert!(
                        err < 1e-9,
                        "{}: nRMSE {err:e} out of tolerance",
                        what("tolerant@detected")
                    );
                    ta_simd::set_mode(SimdMode::Identical);
                }
            }
        }
    }
    ta_pool::set_threads(0);
}
