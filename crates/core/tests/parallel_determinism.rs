//! Golden determinism tests for the parallel frame engine (ISSUE 4
//! acceptance gate): every `ArithmeticMode`, with and without injected
//! faults, must produce *bit-identical* outputs at 1, 2 and 8 workers —
//! and identical to the serial reference (the 1-worker inline path runs
//! the very same per-item code with no pool threads at all).
//!
//! Everything lives in ONE test function on purpose: the worker count is
//! a process-global (`ta_pool::set_threads`), so sweeping it from
//! concurrently-running `#[test]` functions would race. One function in
//! its own integration binary gives the sweep a private process.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ta_core::fault::FaultModel;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, RunResult, SystemDescription};
use ta_image::{synth, Kernel};

fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.outputs.len(), b.outputs.len(), "{what}: kernel count");
    for (k, (ia, ib)) in a.outputs.iter().zip(&b.outputs).enumerate() {
        for (i, (pa, pb)) in ia.pixels().iter().zip(ib.pixels()).enumerate() {
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "{what}: kernel {k} pixel {i}: {pa} vs {pb}"
            );
        }
    }
    assert_eq!(a.fault_stats, b.fault_stats, "{what}: fault stats");
    assert_eq!(a.ops, b.ops, "{what}: op counts");
}

#[test]
fn outputs_bit_identical_across_worker_counts() {
    // Split-rail (sobel) and single-rail (pyrdown via box) kernels, a
    // stride-2 geometry, and enough rows that 8 workers actually split
    // the frame.
    let cases = [
        (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1usize, 24usize),
        (vec![Kernel::pyr_down_5x5()], 2, 32),
    ];
    let modes = [
        ArithmeticMode::ImportanceExact,
        ArithmeticMode::DelayExact,
        ArithmeticMode::DelayApprox,
        ArithmeticMode::DelayApproxNoisy,
    ];

    for (kernels, stride, size) in cases {
        let desc =
            SystemDescription::new(size, size, kernels.clone(), stride).expect("geometry is valid");
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).expect("schedule fits");
        let img = synth::natural_image(size, size, 11);
        let faults = FaultModel::with_rate(0.05)
            .expect("rate is a probability")
            .sample(&arch, 3);
        assert!(!faults.is_empty(), "fault case must actually inject");

        for mode in modes {
            // Serial reference, recorded before any pool runs.
            ta_pool::set_threads(1);
            let reference = exec::run(&arch, &img, mode, 42).expect("serial run");
            let faulty_reference = (mode != ArithmeticMode::ImportanceExact)
                .then(|| exec::run_faulty(&arch, &img, mode, 42, &faults).expect("serial faulty"));

            for threads in [1usize, 2, 8] {
                ta_pool::set_threads(threads);
                let parallel = exec::run(&arch, &img, mode, 42).expect("parallel run");
                assert_bit_identical(
                    &reference,
                    &parallel,
                    &format!("{}@{threads} threads, {mode:?}", kernels[0].name()),
                );
                if let Some(ref fr) = faulty_reference {
                    let parallel_faulty =
                        exec::run_faulty(&arch, &img, mode, 42, &faults).expect("parallel faulty");
                    assert_bit_identical(
                        fr,
                        &parallel_faulty,
                        &format!("{}@{threads} threads, {mode:?}, faulty", kernels[0].name()),
                    );
                }
            }
        }
    }
    ta_pool::set_threads(0);
}
