//! The unified `ta-core` error taxonomy.
//!
//! Every fallible operation on the run path — compiling a
//! [`crate::SystemDescription`] into an [`crate::Architecture`], executing
//! a frame, configuring fault injection, validating a result — surfaces
//! through one of the module-level error types. [`Error`] unifies them so
//! callers that drive the whole pipeline (the CLI, the supervised runtime)
//! can hold a single error type without flattening the cause chain.

use std::error::Error as StdError;
use std::fmt;

use crate::exec::ExecError;
use crate::fault::FaultError;
use crate::report::ValidationError;
use crate::system::SystemError;

/// Any error the `ta-core` pipeline can produce, from system description
/// to validated run result.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The system description or architecture could not be compiled.
    System(SystemError),
    /// The engine rejected or failed the run.
    Exec(ExecError),
    /// A fault-injection request was invalid.
    Fault(FaultError),
    /// A run completed but its output failed validation.
    Validation(ValidationError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::System(e) => write!(f, "architecture: {e}"),
            Error::Exec(e) => write!(f, "execution: {e}"),
            Error::Fault(e) => write!(f, "fault injection: {e}"),
            Error::Validation(e) => write!(f, "validation: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::System(e) => Some(e),
            Error::Exec(e) => Some(e),
            Error::Fault(e) => Some(e),
            Error::Validation(e) => Some(e),
        }
    }
}

impl From<SystemError> for Error {
    fn from(e: SystemError) -> Self {
        Error::System(e)
    }
}

impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        Error::Exec(e)
    }
}

impl From<FaultError> for Error {
    fn from(e: FaultError) -> Self {
        Error::Fault(e)
    }
}

impl From<ValidationError> for Error {
    fn from(e: ValidationError) -> Self {
        Error::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn displays_carry_cause() {
        let e = Error::from(SystemError::NoKernels);
        assert!(e.to_string().contains("architecture"));
        assert!(e.source().is_some());

        let e = Error::from(ExecError::DimensionMismatch {
            expected: (8, 8),
            got: (4, 4),
        });
        assert!(e.to_string().contains("execution"));

        let e = Error::from(FaultError::InvalidRate(2.0));
        assert!(e.to_string().contains("fault"));

        let e = Error::from(ValidationError::NonFinite {
            kernel: 0,
            x: 1,
            y: 2,
            value_kind: "NaN",
        });
        assert!(e.to_string().contains("validation"));
    }
}
