//! The automated convolution → delay-space transformation (§4.4).
//!
//! A traditional kernel becomes a *filter weight delay matrix*: each
//! weight `w` is realised as a delay line of `-ln|w|` units on the rail
//! matching its sign; zero weights become infinite delays — "the path not
//! existing". Weights with `|w| > 1` would need negative delays, so the
//! whole matrix is shifted by a per-kernel constant (multiplicative
//! rescaling in importance space) that the decoder removes again —
//! delay-space's cheap dynamic-range trick (§2.1).

use ta_delay_space::DelayValue;
use ta_image::Kernel;

/// A kernel compiled into split-sign delay-matrix form.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayKernel {
    name: String,
    width: usize,
    height: usize,
    /// Positive-rail delays, row-major (`ZERO` = absent path).
    pos: Vec<DelayValue>,
    /// Negative-rail delays, row-major.
    neg: Vec<DelayValue>,
    /// The uniform shift applied to every finite weight delay so all are
    /// non-negative (realisable); decoding multiplies by `e^{shift}`.
    weight_shift: f64,
    has_negative: bool,
}

impl DelayKernel {
    /// Compiles a kernel into delay-matrix form.
    pub fn compile(kernel: &Kernel) -> Self {
        // Shift = max over finite weights of ln|w| (i.e. -min of -ln|w|),
        // at least 0 so weights ≤ 1 stay untouched.
        let shift = kernel
            .weights()
            .iter()
            .filter(|w| **w != 0.0)
            .map(|w| w.abs().ln())
            .fold(0.0_f64, f64::max);
        let mut pos = Vec::with_capacity(kernel.weights().len());
        let mut neg = Vec::with_capacity(kernel.weights().len());
        for &w in kernel.weights() {
            let delay = if w == 0.0 {
                DelayValue::ZERO
            } else {
                DelayValue::from_delay(-w.abs().ln() + shift)
            };
            if w > 0.0 {
                pos.push(delay);
                neg.push(DelayValue::ZERO);
            } else if w < 0.0 {
                pos.push(DelayValue::ZERO);
                neg.push(delay);
            } else {
                pos.push(DelayValue::ZERO);
                neg.push(DelayValue::ZERO);
            }
        }
        DelayKernel {
            name: kernel.name().to_string(),
            width: kernel.width(),
            height: kernel.height(),
            pos,
            neg,
            weight_shift: shift,
            has_negative: kernel.has_negative_weights(),
        }
    }

    /// Source kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Kernel width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Kernel height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Whether the kernel needs the split representation and an nLDE
    /// subtraction unit.
    pub fn has_negative(&self) -> bool {
        self.has_negative
    }

    /// The uniform per-kernel weight shift, in abstract units.
    pub fn weight_shift(&self) -> f64 {
        self.weight_shift
    }

    /// Delay of the positive-rail path at `(x, y)` (`ZERO` = no path).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pos_delay(&self, x: usize, y: usize) -> DelayValue {
        assert!(
            x < self.width && y < self.height,
            "weight index out of bounds"
        );
        self.pos[y * self.width + x]
    }

    /// Delay of the negative-rail path at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn neg_delay(&self, x: usize, y: usize) -> DelayValue {
        assert!(
            x < self.width && y < self.height,
            "weight index out of bounds"
        );
        self.neg[y * self.width + x]
    }

    /// Delay for the given rail at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn rail_delay(&self, rail: Rail, x: usize, y: usize) -> DelayValue {
        match rail {
            Rail::Pos => self.pos_delay(x, y),
            Rail::Neg => self.neg_delay(x, y),
        }
    }

    /// Number of finite (realised) weight paths on the given rail — what
    /// the weight matrix actually builds and fires (§4.4: the split
    /// representation keeps the path count equal to the non-zero weight
    /// count).
    pub fn finite_paths(&self, rail: Rail) -> usize {
        let rail_delays = match rail {
            Rail::Pos => &self.pos,
            Rail::Neg => &self.neg,
        };
        rail_delays.iter().filter(|d| !d.is_never()).count()
    }

    /// Sum of all finite weight-path delays on a rail, in abstract units
    /// (the per-activation delay-line energy of the weight matrix).
    pub fn total_weight_delay_units(&self, rail: Rail) -> f64 {
        let rail_delays = match rail {
            Rail::Pos => &self.pos,
            Rail::Neg => &self.neg,
        };
        rail_delays
            .iter()
            .filter(|d| !d.is_never())
            .map(|d| d.delay())
            .sum()
    }

    /// Sum of finite weight-path delays on a rail within one kernel row.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    pub fn row_weight_delay_units(&self, rail: Rail, y: usize) -> f64 {
        assert!(y < self.height, "kernel row out of bounds");
        (0..self.width)
            .map(|x| self.rail_delay(rail, x, y))
            .filter(|d| !d.is_never())
            .map(|d| d.delay())
            .sum()
    }

    /// The rails this kernel instantiates.
    pub fn rails(&self) -> &'static [Rail] {
        if self.has_negative {
            &[Rail::Pos, Rail::Neg]
        } else {
            &[Rail::Pos]
        }
    }
}

/// One side of the split value representation (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rail {
    /// The positive-weight kernel.
    Pos,
    /// The negative-weight kernel.
    Neg,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn sobel_splits_by_sign() {
        let dk = DelayKernel::compile(&Kernel::sobel_x());
        assert!(dk.has_negative());
        assert_eq!(dk.rails().len(), 2);
        // Weight +1 at (2,0): delay = -ln(1) + shift = shift.
        assert!((dk.pos_delay(2, 0).delay() - dk.weight_shift()).abs() < 1e-12);
        // Weight -2 at (0,1): on neg rail with delay shift - ln2.
        let d = dk.neg_delay(0, 1).delay();
        assert!((d - (dk.weight_shift() - 2.0_f64.ln())).abs() < 1e-12);
        // Zero weights are absent paths on both rails.
        assert!(dk.pos_delay(1, 0).is_never());
        assert!(dk.neg_delay(1, 0).is_never());
    }

    #[test]
    fn shift_makes_all_paths_realisable() {
        // Sobel's max |w| = 2 ⇒ shift = ln 2, every finite delay ≥ 0.
        let dk = DelayKernel::compile(&Kernel::sobel_x());
        assert!((dk.weight_shift() - 2.0_f64.ln()).abs() < 1e-12);
        for y in 0..3 {
            for x in 0..3 {
                for rail in [Rail::Pos, Rail::Neg] {
                    let d = dk.rail_delay(rail, x, y);
                    assert!(d.is_never() || d.delay() >= 0.0);
                }
            }
        }
    }

    #[test]
    fn sub_unit_kernels_need_no_shift() {
        let dk = DelayKernel::compile(&Kernel::pyr_down_5x5());
        assert_eq!(dk.weight_shift(), 0.0);
        assert!(!dk.has_negative());
        assert_eq!(dk.rails(), &[Rail::Pos]);
    }

    #[test]
    fn path_counts_match_nonzero_weights() {
        let dk = DelayKernel::compile(&Kernel::sobel_x());
        // Sobel x: 3 positive, 3 negative, 3 zero weights.
        assert_eq!(dk.finite_paths(Rail::Pos), 3);
        assert_eq!(dk.finite_paths(Rail::Neg), 3);
        let gk = DelayKernel::compile(&Kernel::gaussian(7, 1.5));
        assert_eq!(gk.finite_paths(Rail::Pos), 49);
        assert_eq!(gk.finite_paths(Rail::Neg), 0);
    }

    #[test]
    fn decode_roundtrip_through_shift() {
        // delay = -ln|w| + shift  ⇒  |w| = e^{-(delay - shift)}.
        let k = Kernel::new("t", 2, 1, vec![3.0, 0.25]);
        let dk = DelayKernel::compile(&k);
        let w0 = (-(dk.pos_delay(0, 0).delay() - dk.weight_shift())).exp();
        let w1 = (-(dk.pos_delay(1, 0).delay() - dk.weight_shift())).exp();
        assert!((w0 - 3.0).abs() < 1e-12);
        assert!((w1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn row_delay_sums() {
        let dk = DelayKernel::compile(&Kernel::sobel_x());
        // Row 0 pos rail: single weight +1 → delay = shift = ln 2.
        assert!((dk.row_weight_delay_units(Rail::Pos, 0) - 2.0_f64.ln()).abs() < 1e-12);
        // Row 1 pos rail: weight +2 → delay = 0 after shift.
        assert!((dk.row_weight_delay_units(Rail::Pos, 1) - 0.0).abs() < 1e-12);
    }
}
