//! The compiled delay-space convolution architecture (§4).

use ta_circuits::{EnergyTally, NldeUnit, NlseUnit, VtcModel};

use crate::census::{OpCounts, StageEnergy};
use crate::plan::FramePlan;
use crate::recurrence::RecurrenceSchedule;
use crate::transform::DelayKernel;
use crate::{tree, ArchConfig, SystemDescription, SystemError, TimingReport};

/// A system description compiled against an architecture configuration:
/// split-sign weight delay matrices, fitted approximation units, a solved
/// recurrence schedule, and static area/energy/timing accounting.
///
/// Area, per-frame energy and timing are *static* properties: the
/// hardware's delay lines have fixed nominal lengths and its switching
/// pattern per frame is set by the kernel's zero/non-zero structure, not
/// by pixel values (every pixel fires — the VTC saturates dark pixels at
/// a finite maximum delay rather than dropping them).
#[derive(Debug, Clone)]
pub struct Architecture {
    desc: SystemDescription,
    cfg: ArchConfig,
    nlse_unit: NlseUnit,
    nlde_unit: Option<NldeUnit>,
    delay_kernels: Vec<DelayKernel>,
    vtc: VtcModel,
    fan_in: usize,
    tree_depth: u32,
    schedule: RecurrenceSchedule,
    plan: FramePlan,
}

impl Architecture {
    /// Compiles `desc` under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Recurrence`] if no feasible cycle time
    /// exists for the configuration.
    pub fn new(desc: SystemDescription, cfg: ArchConfig) -> Result<Self, SystemError> {
        let nlse_unit = NlseUnit::with_terms(cfg.nlse_terms, cfg.unit);
        let delay_kernels: Vec<DelayKernel> =
            desc.kernels().iter().map(DelayKernel::compile).collect();
        let needs_split = delay_kernels.iter().any(|k| k.has_negative());
        let nlde_unit = needs_split.then(|| NldeUnit::with_terms(cfg.nlde_terms, cfg.unit));

        let vtc =
            VtcModel::ideal(cfg.unit).with_noise(cfg.vtc_pre_noise_frac, cfg.vtc_post_noise_ns);

        // Tree: one leaf per kernel column plus the recurrent partial.
        let fan_in = desc.kernel_width() + 1;
        let tree_depth = tree::depth(fan_in);
        let tree_latency = tree_depth as f64 * nlse_unit.latency_units();

        // §3's second constraint: values may not outlive their reference
        // frame. The cycle covers the VTC's full dynamic-range span; edges
        // pushed past the frame boundary by weight delays carry importance
        // below e^-cycle and are *truncated* — delay space's "less
        // important contributions can be truncated at any time" property
        // (§2), applied by the execution model in the approximate modes.
        let schedule =
            RecurrenceSchedule::solve(tree_latency, vtc.max_delay_units(), cfg.relaxation_units)?;

        // Everything the frame engine's hot loop needs that is fixed at
        // design time — flattened tree program, row classes, finite tap
        // lists — is compiled once here (DESIGN.md §5.11).
        let plan = FramePlan::compile(&delay_kernels, fan_in);

        Ok(Architecture {
            desc,
            cfg,
            nlse_unit,
            nlde_unit,
            delay_kernels,
            vtc,
            fan_in,
            tree_depth,
            schedule,
            plan,
        })
    }

    /// The system description this architecture implements.
    pub fn desc(&self) -> &SystemDescription {
        &self.desc
    }

    /// The configuration it was compiled under.
    pub fn cfg(&self) -> &ArchConfig {
        &self.cfg
    }

    /// The fitted nLSE approximation unit.
    pub fn nlse_unit(&self) -> &NlseUnit {
        &self.nlse_unit
    }

    /// The nLDE subtraction unit, present iff any kernel has negative
    /// weights.
    pub fn nlde_unit(&self) -> Option<&NldeUnit> {
        self.nlde_unit.as_ref()
    }

    /// The compiled delay kernels (one per source kernel).
    pub fn delay_kernels(&self) -> &[DelayKernel] {
        &self.delay_kernels
    }

    /// The (noise-configured) VTC at the pixel interface.
    pub fn vtc(&self) -> &VtcModel {
        &self.vtc
    }

    /// Accumulation-tree fan-in (kernel width + the recurrent leaf).
    pub fn tree_fan_in(&self) -> usize {
        self.fan_in
    }

    /// Accumulation-tree depth in nLSE levels.
    pub fn tree_depth(&self) -> u32 {
        self.tree_depth
    }

    /// The solved recurrence schedule.
    pub fn schedule(&self) -> &RecurrenceSchedule {
        &self.schedule
    }

    /// The compiled execution plan the frame engine runs from.
    pub fn plan(&self) -> &FramePlan {
        &self.plan
    }

    /// Timing of the architecture.
    pub fn timing(&self) -> TimingReport {
        let cycle_ns = self.cfg.unit.to_ns(self.schedule.cycle_units);
        // One cycle per image row, plus kernel_height cycles of drain for
        // the last windows and the subtraction stage.
        let cycles = self.desc.image_height() + self.desc.kernel_height();
        TimingReport {
            cycle_ns,
            cycles_per_frame: cycles,
            frame_delay_ns: cycle_ns * cycles as f64,
        }
    }

    /// Static layout area in mm² (delay elements and gates; the pixel
    /// array and its VTCs belong to the sensor, as in the paper's
    /// accounting, which the delay-space architecture can sit entirely
    /// outside of — unlike PIP).
    pub fn area_mm2(&self) -> f64 {
        let a = &self.cfg.area;
        let scale = self.cfg.unit;
        let unit_tree_area = self.nlse_unit.area_um2(a);
        let k = self.nlse_unit.latency_units();
        let balance_units = tree::static_balance_k_units(self.fan_in) * k;
        let tree_area = (self.fan_in - 1) as f64 * unit_tree_area
            + a.delay_units_um2(balance_units, scale)
            + a.delay_units_um2(self.schedule.loop_delay_units, scale);

        let blocks = self.desc.mac_blocks() as f64;
        let accum = self.desc.accum_units_per_block() as f64;

        let mut total_um2 = 0.0;
        for dk in &self.delay_kernels {
            for &rail in dk.rails() {
                // Weight delay matrix: one line per finite path.
                total_um2 += blocks * a.delay_units_um2(dk.total_weight_delay_units(rail), scale);
                // Accumulation units.
                total_um2 += blocks * accum * tree_area;
            }
            if dk.has_negative() {
                let Some(nlde) = self.nlde_unit.as_ref() else {
                    unreachable!("split kernels imply an nLDE unit")
                };
                total_um2 += blocks * nlde.area_um2(a);
            }
        }
        total_um2 * 1e-6
    }

    /// Per-frame energy, broken down by category. Independent of pixel
    /// content and arithmetic mode (the same hardware switches the same
    /// way; only edge *positions* differ). Derived from
    /// [`Architecture::stage_energy`], which carries the per-stage
    /// attribution.
    pub fn energy_per_frame(&self) -> EnergyTally {
        self.stage_energy().tally()
    }

    /// Per-frame energy attributed to pipeline stages (VTC, weight
    /// matrix, nLSE trees, recurrence loops, nLDE, TDC). The stage
    /// buckets fold back into [`Architecture::energy_per_frame`]'s
    /// category tally via [`StageEnergy::tally`].
    pub fn stage_energy(&self) -> StageEnergy {
        let e = &self.cfg.energy;
        let scale = self.cfg.unit;
        let mut stages = StageEnergy::default();

        // Pixel interface: one VTC conversion per pixel, and (if
        // configured) one TDC conversion per pixel (Table 3's accounting).
        let pixels = self.desc.image_width() * self.desc.image_height();
        let mut converters = EnergyTally::new();
        converters.add_vtc(pixels, e);
        if self.cfg.tdc.is_some() {
            converters.add_tdc(pixels, e);
        }
        stages.vtc_pj = converters.vtc_pj;
        stages.tdc_pj = converters.tdc_pj;

        let (ow, oh) = self.desc.output_dims();
        let outputs = (ow * oh) as f64;
        let kh = self.desc.kernel_height();
        let kw = self.desc.kernel_width();
        let k_units = self.nlse_unit.latency_units();

        for dk in &self.delay_kernels {
            for &rail in dk.rails() {
                // Per output window: kh cycles of weight delays + tree
                // evaluations + recurrence loops, each accumulated into
                // its own stage bucket.
                let mut per_weight = EnergyTally::new();
                let mut per_tree = EnergyTally::new();
                let mut per_loop = EnergyTally::new();
                let mut partial_fires = false;
                for ky in 0..kh {
                    // Weight matrix delay lines exercised this cycle.
                    per_weight.add_delay_units(dk.row_weight_delay_units(rail, ky), scale, e);
                    // Tree switching for this cycle's leaf pattern.
                    let mut fired: Vec<bool> = (0..kw)
                        .map(|x| !dk.rail_delay(rail, x, ky).is_never())
                        .collect();
                    fired.push(partial_fires); // the recurrent leaf
                    let profile = tree::firing_profile(&fired);
                    for &fi in &profile.fired_inputs {
                        // Unit energy covers its chains and gates together.
                        per_tree.delay_pj += self.nlse_unit.energy_pj(e, fi);
                    }
                    per_tree.add_delay_units(profile.balance_k_units * k_units, scale, e);
                    let any_fired = fired.iter().any(|&f| f);
                    partial_fires = partial_fires || any_fired;
                    // The loop delay line fires between cycles.
                    if ky + 1 < kh && partial_fires {
                        per_loop.add_delay_units(self.schedule.loop_delay_units, scale, e);
                    }
                }
                stages.weight_matrix_pj += per_weight.delay_pj * outputs;
                stages.nlse_tree_pj += per_tree.delay_pj * outputs;
                stages.loop_pj += per_loop.delay_pj * outputs;
            }
            if dk.has_negative() {
                let Some(nlde) = self.nlde_unit.as_ref() else {
                    unreachable!("split kernels imply an nLDE unit")
                };
                stages.nlde_pj += nlde.energy_pj(e, 2) * outputs;
            }
        }
        stages
    }

    /// The static operation census: how many temporal-arithmetic ops one
    /// frame *must* perform, derived from the compiled geometry alone.
    /// The data-independent counts (VTC conversions, nLSE tree nodes,
    /// nLDE renormalisations) match the dynamic [`OpCounts`] accumulated
    /// by [`crate::exec::run`] exactly — the invariant `tconv profile`
    /// verifies. Edge events are data-dependent and reported as zero
    /// here.
    pub fn op_census(&self) -> OpCounts {
        let pixels = (self.desc.image_width() * self.desc.image_height()) as u64;
        let (ow, oh) = self.desc.output_dims();
        let outputs = (ow * oh) as u64;
        let kh = self.desc.kernel_height() as u64;
        // One nLSE op per internal tree node: fan_in leaves → fan_in − 1
        // nodes, per cycle, per rail.
        let per_tree = (self.fan_in - 1) as u64;
        let mut nlse_ops = 0u64;
        let mut nlde_ops = 0u64;
        for dk in &self.delay_kernels {
            nlse_ops += dk.rails().len() as u64 * outputs * kh * per_tree;
            if dk.has_negative() {
                nlde_ops += outputs;
            }
        }
        OpCounts {
            vtc_conversions: pixels,
            tdc_conversions: if self.cfg.tdc.is_some() { pixels } else { 0 },
            edge_events: 0,
            nlse_ops,
            nlde_ops,
        }
    }

    /// A human-readable structural description of the compiled engine —
    /// the textual equivalent of the paper's Fig 9/10 block diagrams.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        let desc = &self.desc;
        s.push_str(&format!(
            "Delay-space convolution engine for {}×{} pixels\n",
            desc.image_width(),
            desc.image_height()
        ));
        s.push_str(&format!(
            "  configuration : {} | {} nLSE max-terms (K = {:.3}u) | {} nLDE inhibit-terms\n",
            self.cfg.unit,
            self.cfg.nlse_terms,
            self.nlse_unit.latency_units(),
            self.cfg.nlde_terms,
        ));
        s.push_str(&format!(
            "  MAC blocks    : {} along the row axis (1 + (W - kw)/stride), {} accumulation unit(s) each\n",
            desc.mac_blocks(),
            desc.accum_units_per_block()
        ));
        for dk in &self.delay_kernels {
            s.push_str(&format!(
                "  kernel {:12}: {}×{}, rails: {}{}, weight shift {:.3}u\n",
                dk.name(),
                dk.width(),
                dk.height(),
                dk.rails().len(),
                if dk.has_negative() {
                    " (split ⟨pos,neg⟩ + nLDE renormalisation)"
                } else {
                    ""
                },
                dk.weight_shift()
            ));
            for &rail in dk.rails() {
                s.push_str(&format!(
                    "      {:?} rail: {} weight delay paths ({:.2}u of delay line)\n",
                    rail,
                    dk.finite_paths(rail),
                    dk.total_weight_delay_units(rail)
                ));
            }
        }
        s.push_str(&format!(
            "  nLSE tree     : fan-in {} (kw + recurrent partial), depth {}, latency {:.3}u\n",
            self.fan_in, self.tree_depth, self.schedule.tree_latency_units
        ));
        s.push_str(&format!(
            "  recurrence    : cycle {:.3}u ({:.2} ns), loop delay {:.3}u, relaxation {:.3}u\n",
            self.schedule.cycle_units,
            self.cfg.unit.to_ns(self.schedule.cycle_units),
            self.schedule.loop_delay_units,
            self.schedule.relaxation_units
        ));
        s.push_str(&format!(
            "  totals        : {:.4} mm², {:.3} µJ/frame, {}\n",
            self.area_mm2(),
            self.energy_per_frame().total_uj(),
            self.timing()
        ));
        s
    }

    /// The constant delay offset carried by raw outputs in approximate
    /// modes (before the optional nLDE stage): weight shift plus one
    /// uncancelled tree latency. Exact modes carry only the weight shift.
    pub(crate) fn output_shift_units(&self, kernel_idx: usize, approximate: bool) -> f64 {
        let tree_latency = if approximate {
            self.tree_depth as f64 * self.nlse_unit.latency_units()
        } else {
            0.0
        };
        self.delay_kernels[kernel_idx].weight_shift() + tree_latency
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use ta_image::Kernel;

    fn sobel_arch() -> Architecture {
        let desc = SystemDescription::new(150, 150, vec![Kernel::sobel_x(), Kernel::sobel_y()], 1)
            .unwrap();
        Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap()
    }

    #[test]
    fn compiles_sobel_with_split_and_nlde() {
        let arch = sobel_arch();
        assert!(arch.nlde_unit().is_some());
        assert_eq!(arch.tree_fan_in(), 4);
        assert_eq!(arch.tree_depth(), 2);
        assert!(arch.schedule().loop_delay_units >= 0.0);
    }

    #[test]
    fn pyr_down_needs_no_nlde() {
        let desc = SystemDescription::new(150, 150, vec![Kernel::pyr_down_5x5()], 2).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap();
        assert!(arch.nlde_unit().is_none());
        assert_eq!(arch.tree_fan_in(), 6);
        assert_eq!(arch.tree_depth(), 3);
    }

    #[test]
    fn energy_scales_with_unit_scale() {
        let desc = SystemDescription::new(64, 64, vec![Kernel::pyr_down_5x5()], 2).unwrap();
        let e1 = Architecture::new(
            desc.clone(),
            ArchConfig::new(ta_circuits::UnitScale::new(1.0, 50.0), 7, 20),
        )
        .unwrap()
        .energy_per_frame();
        let e5 = Architecture::new(
            desc,
            ArchConfig::new(ta_circuits::UnitScale::new(5.0, 50.0), 7, 20),
        )
        .unwrap()
        .energy_per_frame();
        // Delay-line energy is linear in unit scale (the small fixed
        // per-gate charge folded into the units keeps it just under 5×);
        // VTC/TDC energy is scale-independent.
        let ratio = e5.delay_pj / e1.delay_pj;
        assert!(ratio > 4.8 && ratio <= 5.0, "ratio {ratio}");
        assert_eq!(e5.vtc_pj, e1.vtc_pj);
    }

    #[test]
    fn energy_grows_with_terms() {
        let desc = SystemDescription::new(64, 64, vec![Kernel::pyr_down_5x5()], 2).unwrap();
        let e5 = Architecture::new(desc.clone(), ArchConfig::fast_1ns(5, 20))
            .unwrap()
            .energy_per_frame();
        let e20 = Architecture::new(desc, ArchConfig::fast_1ns(20, 20))
            .unwrap()
            .energy_per_frame();
        assert!(e20.delay_pj > e5.delay_pj);
    }

    #[test]
    fn gaussian_costs_more_than_pyr_down() {
        // Table 2: GaussianBlur roughly doubles pyrDown's energy and area.
        let pyr = Architecture::new(
            SystemDescription::new(150, 150, vec![Kernel::pyr_down_5x5()], 2).unwrap(),
            ArchConfig::fast_1ns(7, 20),
        )
        .unwrap();
        let gauss = Architecture::new(
            SystemDescription::new(150, 150, vec![Kernel::gaussian(7, 0.0)], 1).unwrap(),
            ArchConfig::fast_1ns(7, 20),
        )
        .unwrap();
        assert!(gauss.energy_per_frame().total_pj() > 1.5 * pyr.energy_per_frame().total_pj());
        assert!(gauss.area_mm2() > 1.5 * pyr.area_mm2());
    }

    #[test]
    fn pyr_down_and_gaussian_share_throughput() {
        // Table 2: same tree height ⇒ same max throughput (§5.3).
        let pyr = Architecture::new(
            SystemDescription::new(150, 150, vec![Kernel::pyr_down_5x5()], 2).unwrap(),
            ArchConfig::fast_1ns(7, 20),
        )
        .unwrap();
        let gauss = Architecture::new(
            SystemDescription::new(150, 150, vec![Kernel::gaussian(7, 0.0)], 1).unwrap(),
            ArchConfig::fast_1ns(7, 20),
        )
        .unwrap();
        assert_eq!(pyr.tree_depth(), gauss.tree_depth());
        let tp = pyr.timing().max_throughput_mfps();
        let tg = gauss.timing().max_throughput_mfps();
        assert!((tp - tg).abs() / tp < 1e-9);
    }

    #[test]
    fn area_in_plausible_band() {
        // Table 2 anchors Sobel 1 ns at 0.02 mm²; the calibrated model
        // should land within an order of magnitude.
        let a = sobel_arch().area_mm2();
        assert!(a > 0.002 && a < 0.2, "area {a} mm²");
    }

    #[test]
    fn tdc_adds_per_pixel_energy() {
        let desc = SystemDescription::new(64, 64, vec![Kernel::pyr_down_5x5()], 2).unwrap();
        let without = Architecture::new(desc.clone(), ArchConfig::fast_1ns(7, 20))
            .unwrap()
            .energy_per_frame();
        let with = Architecture::new(
            desc,
            ArchConfig::fast_1ns(7, 20).with_tdc(ta_circuits::TdcModel::asplos24()),
        )
        .unwrap()
        .energy_per_frame();
        let delta_per_pixel = (with.total_pj() - without.total_pj()) / (64.0 * 64.0);
        assert!((delta_per_pixel - 5.5).abs() < 1e-9);
    }

    #[test]
    fn describe_mentions_every_stage() {
        let s = sobel_arch().describe();
        for needle in [
            "MAC blocks",
            "split ⟨pos,neg⟩",
            "nLSE tree",
            "recurrence",
            "weight delay paths",
            "totals",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn output_shift_accounting() {
        let arch = sobel_arch();
        let exact = arch.output_shift_units(0, false);
        let approx = arch.output_shift_units(0, true);
        // Sobel weight shift is ln 2; approx adds depth × K.
        assert!((exact - 2.0_f64.ln()).abs() < 1e-12);
        let k = arch.nlse_unit().latency_units();
        assert!((approx - exact - 2.0 * k).abs() < 1e-12);
    }
}
