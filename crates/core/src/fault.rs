//! Architectural fault model: site-addressed fault injection across both
//! execution engines, with seeded reproducible campaigns.
//!
//! The race-logic layer injects faults by netlist node index
//! ([`ta_race_logic::FaultPlan`]); this module names faults by what the
//! hardware element *is* — a weight delay line, a pixel's VTC output, an
//! accumulation-tree chain, the recurrence loop line, the subtraction
//! unit — so one [`FaultMap`] can be lowered consistently onto both the
//! functional simulator ([`crate::exec::run_faulty`]) and the gate-level
//! engine ([`crate::GateEngine::run_faulty`]), which must agree under
//! injection just as they do fault-free.
//!
//! [`FaultModel`] draws a reproducible [`FaultMap`] from a seed: the same
//! architecture, model parameters and seed always select the same fault
//! sites with the same fault kinds, so campaign reports are replayable.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ta_race_logic::EdgeFault;

use crate::transform::Rail;
use crate::Architecture;

/// A physical element of the compiled architecture that can fault.
///
/// Ordered so that [`FaultMap`] iteration (and therefore campaign
/// reports) is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum FaultSite {
    /// The weight delay line of kernel `kernel`, rail `rail`, at kernel
    /// position `(kx, ky)`. Accepts every [`FaultKind`].
    WeightLine {
        /// Kernel index in the system description.
        kernel: usize,
        /// Rail the weight path sits on.
        rail: Rail,
        /// Kernel row.
        ky: usize,
        /// Kernel column.
        kx: usize,
    },
    /// The VTC output of pixel `(x, y)`: the converted edge every MAC
    /// block reading this pixel sees. Accepts edge faults only — a pixel
    /// has no delay line to drift.
    Pixel {
        /// Pixel column.
        x: usize,
        /// Pixel row.
        y: usize,
    },
    /// The shared delay chains of one accumulation tree (all nLSE blocks
    /// and balancing elements of kernel `kernel`, rail `rail`). Accepts
    /// [`FaultKind::DelayDrift`] only.
    TreeChain {
        /// Kernel index.
        kernel: usize,
        /// Rail of the tree.
        rail: Rail,
    },
    /// The recurrence loop delay line of kernel `kernel`, rail `rail`.
    /// Accepts [`FaultKind::DelayDrift`] only.
    LoopLine {
        /// Kernel index.
        kernel: usize,
        /// Rail of the loop.
        rail: Rail,
    },
    /// The subtraction (nLDE) unit's tap chains of kernel `kernel`.
    /// Accepts [`FaultKind::DelayDrift`] only.
    NldeChain {
        /// Kernel index.
        kernel: usize,
    },
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rail_tag = |r: Rail| match r {
            Rail::Pos => "pos",
            Rail::Neg => "neg",
        };
        match self {
            FaultSite::WeightLine {
                kernel,
                rail,
                ky,
                kx,
            } => {
                write!(f, "k{kernel}.{}.w[{ky}][{kx}]", rail_tag(*rail))
            }
            FaultSite::Pixel { x, y } => write!(f, "pixel({x},{y})"),
            FaultSite::TreeChain { kernel, rail } => {
                write!(f, "k{kernel}.{}.tree", rail_tag(*rail))
            }
            FaultSite::LoopLine { kernel, rail } => {
                write!(f, "k{kernel}.{}.loop", rail_tag(*rail))
            }
            FaultSite::NldeChain { kernel } => write!(f, "k{kernel}.nlde"),
        }
    }
}

/// What goes wrong at a fault site.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The element's output edge never fires (hard open).
    StuckAtNever,
    /// The element's output edge fires with the reference edge (short).
    StuckAtZero,
    /// The event is swallowed (marginal latch).
    DropEvent,
    /// A spurious edge fires early by `advance_units` (crosstalk).
    SpuriousEarly {
        /// How many abstract units early the spurious edge fires.
        advance_units: f64,
    },
    /// The element's nominal delay drifts multiplicatively to
    /// `nominal × (1 + fraction)` (aging, IR drop).
    DelayDrift {
        /// Signed drift fraction; below `-1` saturates at zero delay.
        fraction: f64,
    },
}

impl FaultKind {
    /// The netlist-level edge fault this kind lowers to, or `None` for
    /// drift (which lowers to a delay-nominal change instead).
    pub fn edge_fault(self) -> Option<EdgeFault> {
        match self {
            FaultKind::StuckAtNever => Some(EdgeFault::StuckAtNever),
            FaultKind::StuckAtZero => Some(EdgeFault::StuckAtZero),
            FaultKind::DropEvent => Some(EdgeFault::DropEvent),
            FaultKind::SpuriousEarly { advance_units } => {
                Some(EdgeFault::SpuriousEarly(advance_units))
            }
            FaultKind::DelayDrift { .. } => None,
        }
    }

    fn is_drift(self) -> bool {
        matches!(self, FaultKind::DelayDrift { .. })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckAtNever => write!(f, "stuck-at-never"),
            FaultKind::StuckAtZero => write!(f, "stuck-at-0"),
            FaultKind::DropEvent => write!(f, "drop-event"),
            FaultKind::SpuriousEarly { advance_units } => {
                write!(f, "spurious-early({advance_units:.3})")
            }
            FaultKind::DelayDrift { fraction } => {
                write!(f, "drift({:+.1}%)", fraction * 100.0)
            }
        }
    }
}

/// Errors of fault-model construction and fault-map assembly.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The per-site fault probability is outside `[0, 1]`.
    InvalidRate(f64),
    /// The spurious-early advance is negative or non-finite.
    InvalidAdvance(f64),
    /// The drift fraction is non-finite.
    InvalidDrift(f64),
    /// The fault kind cannot occur at the site (e.g. drift on a pixel,
    /// an edge fault on a shared chain).
    KindSiteMismatch {
        /// The offending site.
        site: FaultSite,
        /// The kind that does not apply there.
        kind: FaultKind,
    },
    /// Fault injection was requested in an arithmetic mode with no
    /// hardware to fault.
    UnsupportedMode(crate::ArithmeticMode),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidRate(r) => {
                write!(f, "fault rate must be a probability in [0, 1], got {r}")
            }
            FaultError::InvalidAdvance(a) => {
                write!(f, "spurious-early advance must be finite and ≥ 0, got {a}")
            }
            FaultError::InvalidDrift(d) => write!(f, "drift fraction must be finite, got {d}"),
            FaultError::KindSiteMismatch { site, kind } => {
                write!(f, "fault kind {kind} cannot occur at site {site}")
            }
            FaultError::UnsupportedMode(m) => {
                write!(f, "mode {m:?} models no hardware elements to fault")
            }
        }
    }
}

impl Error for FaultError {}

/// A concrete, validated assignment of faults to architectural sites.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultMap {
    faults: BTreeMap<FaultSite, FaultKind>,
}

impl FaultMap {
    /// An empty map (no faults; engines behave bit-identically to their
    /// fault-free entry points).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `kind` to `site`, replacing any previous fault there.
    ///
    /// # Errors
    ///
    /// [`FaultError::KindSiteMismatch`] when the kind cannot physically
    /// occur at the site: pixels have no delay line to drift, and the
    /// shared chains (tree, loop, nLDE) are modelled for drift only.
    pub fn insert(&mut self, site: FaultSite, kind: FaultKind) -> Result<(), FaultError> {
        let ok = match site {
            FaultSite::WeightLine { .. } => true,
            FaultSite::Pixel { .. } => !kind.is_drift(),
            FaultSite::TreeChain { .. }
            | FaultSite::LoopLine { .. }
            | FaultSite::NldeChain { .. } => kind.is_drift(),
        };
        if !ok {
            return Err(FaultError::KindSiteMismatch { site, kind });
        }
        self.faults.insert(site, kind);
        Ok(())
    }

    /// The fault at `site`, if any.
    pub fn get(&self, site: FaultSite) -> Option<FaultKind> {
        self.faults.get(&site).copied()
    }

    /// Iterates faults in deterministic site order.
    pub fn iter(&self) -> impl Iterator<Item = (FaultSite, FaultKind)> + '_ {
        self.faults.iter().map(|(&s, &k)| (s, k))
    }

    /// Number of faulted sites.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the map injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Fault on the given weight line, if any.
    pub fn weight_fault(
        &self,
        kernel: usize,
        rail: Rail,
        ky: usize,
        kx: usize,
    ) -> Option<FaultKind> {
        self.get(FaultSite::WeightLine {
            kernel,
            rail,
            ky,
            kx,
        })
    }

    /// Edge fault on the given pixel's VTC output, if any.
    pub fn pixel_fault(&self, x: usize, y: usize) -> Option<EdgeFault> {
        self.get(FaultSite::Pixel { x, y })
            .and_then(FaultKind::edge_fault)
    }

    /// Drift fraction of the given accumulation tree, if any.
    pub fn tree_drift(&self, kernel: usize, rail: Rail) -> Option<f64> {
        match self.get(FaultSite::TreeChain { kernel, rail }) {
            Some(FaultKind::DelayDrift { fraction }) => Some(fraction),
            _ => None,
        }
    }

    /// Drift fraction of the given loop line, if any.
    pub fn loop_drift(&self, kernel: usize, rail: Rail) -> Option<f64> {
        match self.get(FaultSite::LoopLine { kernel, rail }) {
            Some(FaultKind::DelayDrift { fraction }) => Some(fraction),
            _ => None,
        }
    }

    /// Drift fraction of the given kernel's nLDE unit, if any.
    pub fn nlde_drift(&self, kernel: usize) -> Option<f64> {
        match self.get(FaultSite::NldeChain { kernel }) {
            Some(FaultKind::DelayDrift { fraction }) => Some(fraction),
            _ => None,
        }
    }
}

/// Enumerates every fault site the compiled architecture exposes, in the
/// deterministic order campaigns and sampling use: per kernel, per rail,
/// the finite weight lines (row-major), then the tree chain, the loop
/// line (multi-row kernels only), the nLDE chain (split kernels only),
/// and finally the pixel array (row-major).
pub fn enumerate_sites(arch: &Architecture) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    for (k_idx, dk) in arch.delay_kernels().iter().enumerate() {
        for &rail in dk.rails() {
            for ky in 0..dk.height() {
                for kx in 0..dk.width() {
                    if !dk.rail_delay(rail, kx, ky).is_never() {
                        sites.push(FaultSite::WeightLine {
                            kernel: k_idx,
                            rail,
                            ky,
                            kx,
                        });
                    }
                }
            }
            sites.push(FaultSite::TreeChain {
                kernel: k_idx,
                rail,
            });
            if dk.height() > 1 {
                sites.push(FaultSite::LoopLine {
                    kernel: k_idx,
                    rail,
                });
            }
        }
        if dk.has_negative() {
            sites.push(FaultSite::NldeChain { kernel: k_idx });
        }
    }
    let desc = arch.desc();
    for y in 0..desc.image_height() {
        for x in 0..desc.image_width() {
            sites.push(FaultSite::Pixel { x, y });
        }
    }
    sites
}

/// A stochastic fault environment: per-site Bernoulli fault occurrence
/// with fixed fault-magnitude parameters. [`FaultModel::sample`] draws a
/// reproducible [`FaultMap`] from a seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Per-site fault probability in `[0, 1]`.
    pub rate: f64,
    /// Magnitude of delay drift at drifted sites; the sampled sign is
    /// random per site.
    pub drift_fraction: f64,
    /// Advance of spurious-early edges, in abstract units.
    pub early_advance_units: f64,
}

impl FaultModel {
    /// A model faulting each site with probability `rate`, with default
    /// magnitudes: ±20 % drift, 0.5-unit early edges.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidRate`] unless `rate ∈ [0, 1]`.
    pub fn with_rate(rate: f64) -> Result<Self, FaultError> {
        FaultModel {
            rate,
            drift_fraction: 0.2,
            early_advance_units: 0.5,
        }
        .validated()
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// The first violated constraint: rate a probability, advance finite
    /// and non-negative, drift finite.
    pub fn validated(self) -> Result<Self, FaultError> {
        if !(0.0..=1.0).contains(&self.rate) || self.rate.is_nan() {
            return Err(FaultError::InvalidRate(self.rate));
        }
        if !self.early_advance_units.is_finite() || self.early_advance_units < 0.0 {
            return Err(FaultError::InvalidAdvance(self.early_advance_units));
        }
        if !self.drift_fraction.is_finite() {
            return Err(FaultError::InvalidDrift(self.drift_fraction));
        }
        Ok(self)
    }

    /// The fault kinds this model can place at `site`, in selection order.
    fn kinds_for(&self, site: FaultSite) -> Vec<FaultKind> {
        let edge = [
            FaultKind::StuckAtNever,
            FaultKind::StuckAtZero,
            FaultKind::DropEvent,
            FaultKind::SpuriousEarly {
                advance_units: self.early_advance_units,
            },
        ];
        match site {
            FaultSite::WeightLine { .. } => {
                let mut all = edge.to_vec();
                all.push(FaultKind::DelayDrift {
                    fraction: self.drift_fraction,
                });
                all
            }
            FaultSite::Pixel { .. } => edge.to_vec(),
            FaultSite::TreeChain { .. }
            | FaultSite::LoopLine { .. }
            | FaultSite::NldeChain { .. } => {
                vec![FaultKind::DelayDrift {
                    fraction: self.drift_fraction,
                }]
            }
        }
    }

    /// Draws a fault map for `arch` from `seed`. Deterministic: the same
    /// architecture, parameters and seed produce the same map.
    pub fn sample(&self, arch: &Architecture, seed: u64) -> FaultMap {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17_ca57);
        let mut map = FaultMap::new();
        for site in enumerate_sites(arch) {
            if !rng.gen_bool(self.rate) {
                continue;
            }
            let kinds = self.kinds_for(site);
            let mut kind = kinds[rng.gen_range(0..kinds.len())];
            if let FaultKind::DelayDrift { fraction } = &mut kind {
                // Drift ages either way; draw the sign per site.
                if rng.gen_bool(0.5) {
                    *fraction = -*fraction;
                }
            }
            // `kinds_for` only offers site-compatible kinds, so the insert
            // cannot fail; a broken invariant surfaces in debug builds and
            // degrades to "site skipped" in release.
            let inserted = map.insert(site, kind);
            debug_assert!(inserted.is_ok(), "kinds_for offered an incompatible kind");
        }
        map
    }
}

/// Counters of graceful-degradation events observed during one faulty
/// run, surfaced in [`crate::RunResult`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Sites carrying a fault in the active map.
    pub sites_injected: usize,
    /// Edge-fault applications over the run (a persistent fault applies
    /// once per evaluation that reads the element).
    pub edges_faulted: usize,
    /// Events swallowed by drop faults.
    pub events_dropped: usize,
    /// Values clamped back into representable delay space instead of
    /// going negative/NaN (saturating arithmetic).
    pub saturations: usize,
}

impl FaultStats {
    /// Folds a netlist-level observation into the run counters.
    pub fn absorb_observation(&mut self, obs: ta_race_logic::FaultObservation) {
        self.edges_faulted += obs.edges_faulted;
        self.events_dropped += obs.events_dropped;
        self.saturations += obs.saturations;
    }

    /// Folds another set of counters into this one. Used to merge the
    /// per-worker stats the parallel frame engine accumulates: every
    /// field is an order-insensitive sum, so the merged totals are
    /// identical at any worker count.
    pub fn merge(&mut self, other: &FaultStats) {
        self.sites_injected += other.sites_injected;
        self.edges_faulted += other.edges_faulted;
        self.events_dropped += other.events_dropped;
        self.saturations += other.saturations;
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faulted sites, {} edge faults applied, {} events dropped, {} saturations",
            self.sites_injected, self.edges_faulted, self.events_dropped, self.saturations
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::{ArchConfig, SystemDescription};
    use ta_image::Kernel;

    fn arch() -> Architecture {
        let desc = SystemDescription::new(8, 8, vec![Kernel::sobel_x()], 1).unwrap();
        Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap()
    }

    #[test]
    fn site_enumeration_covers_architecture() {
        let arch = arch();
        let sites = enumerate_sites(&arch);
        // Sobel x: 3 finite paths per rail, tree + loop per rail, one
        // nLDE, 64 pixels.
        let weights = sites
            .iter()
            .filter(|s| matches!(s, FaultSite::WeightLine { .. }))
            .count();
        assert_eq!(weights, 6);
        assert_eq!(
            sites
                .iter()
                .filter(|s| matches!(s, FaultSite::TreeChain { .. }))
                .count(),
            2
        );
        assert_eq!(
            sites
                .iter()
                .filter(|s| matches!(s, FaultSite::LoopLine { .. }))
                .count(),
            2
        );
        assert_eq!(
            sites
                .iter()
                .filter(|s| matches!(s, FaultSite::NldeChain { .. }))
                .count(),
            1
        );
        assert_eq!(
            sites
                .iter()
                .filter(|s| matches!(s, FaultSite::Pixel { .. }))
                .count(),
            64
        );
    }

    #[test]
    fn kind_site_compatibility_enforced() {
        let mut map = FaultMap::new();
        let drift = FaultKind::DelayDrift { fraction: 0.1 };
        assert!(map.insert(FaultSite::Pixel { x: 0, y: 0 }, drift).is_err());
        assert!(map
            .insert(
                FaultSite::TreeChain {
                    kernel: 0,
                    rail: Rail::Pos
                },
                FaultKind::StuckAtNever
            )
            .is_err());
        assert!(map
            .insert(
                FaultSite::WeightLine {
                    kernel: 0,
                    rail: Rail::Pos,
                    ky: 0,
                    kx: 0
                },
                drift
            )
            .is_ok());
        assert!(map
            .insert(FaultSite::Pixel { x: 1, y: 2 }, FaultKind::DropEvent)
            .is_ok());
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn model_validation() {
        assert!(FaultModel::with_rate(0.0).is_ok());
        assert!(FaultModel::with_rate(1.0).is_ok());
        assert!(matches!(
            FaultModel::with_rate(1.5),
            Err(FaultError::InvalidRate(_))
        ));
        assert!(matches!(
            FaultModel {
                rate: 0.1,
                drift_fraction: f64::NAN,
                early_advance_units: 0.5
            }
            .validated(),
            Err(FaultError::InvalidDrift(_))
        ));
        assert!(matches!(
            FaultModel {
                rate: 0.1,
                drift_fraction: 0.2,
                early_advance_units: -1.0
            }
            .validated(),
            Err(FaultError::InvalidAdvance(_))
        ));
    }

    #[test]
    fn sampling_is_seeded_and_reproducible() {
        let arch = arch();
        let model = FaultModel::with_rate(0.1).unwrap();
        let a = model.sample(&arch, 7);
        let b = model.sample(&arch, 7);
        assert_eq!(a, b, "same seed must select identical fault sites");
        let c = model.sample(&arch, 8);
        assert_ne!(a, c, "different seeds must explore different sites");
    }

    #[test]
    fn rate_zero_samples_nothing_rate_one_faults_everything() {
        let arch = arch();
        assert!(FaultModel::with_rate(0.0)
            .unwrap()
            .sample(&arch, 3)
            .is_empty());
        let full = FaultModel::with_rate(1.0).unwrap().sample(&arch, 3);
        assert_eq!(full.len(), enumerate_sites(&arch).len());
    }

    #[test]
    fn accessors_match_inserted_faults() {
        let mut map = FaultMap::new();
        map.insert(
            FaultSite::LoopLine {
                kernel: 0,
                rail: Rail::Neg,
            },
            FaultKind::DelayDrift { fraction: -0.3 },
        )
        .unwrap();
        map.insert(
            FaultSite::NldeChain { kernel: 0 },
            FaultKind::DelayDrift { fraction: 0.4 },
        )
        .unwrap();
        map.insert(
            FaultSite::Pixel { x: 3, y: 1 },
            FaultKind::SpuriousEarly {
                advance_units: 0.25,
            },
        )
        .unwrap();
        assert_eq!(map.loop_drift(0, Rail::Neg), Some(-0.3));
        assert_eq!(map.loop_drift(0, Rail::Pos), None);
        assert_eq!(map.nlde_drift(0), Some(0.4));
        assert_eq!(map.pixel_fault(3, 1), Some(EdgeFault::SpuriousEarly(0.25)));
        assert_eq!(map.pixel_fault(0, 0), None);
        assert_eq!(map.tree_drift(0, Rail::Pos), None);
    }

    #[test]
    fn displays_are_stable() {
        let site = FaultSite::WeightLine {
            kernel: 1,
            rail: Rail::Neg,
            ky: 2,
            kx: 0,
        };
        assert_eq!(site.to_string(), "k1.neg.w[2][0]");
        assert_eq!(
            FaultKind::DelayDrift { fraction: -0.25 }.to_string(),
            "drift(-25.0%)"
        );
        assert_eq!(FaultSite::Pixel { x: 4, y: 5 }.to_string(), "pixel(4,5)");
    }
}
