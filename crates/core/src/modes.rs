//! The simulator's arithmetic modes (§5.1's verification ladder).

use std::fmt;

/// How the architecture's arithmetic is evaluated.
///
/// The paper verifies its simulator by running the *same* compiled
/// architecture under progressively more realistic arithmetic: the first
/// two modes must reproduce software convolution exactly, the third shows
/// pure approximation error, the fourth adds every hardware noise source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithmeticMode {
    /// Importance-space reference arithmetic (`+`, `·` on `f64`) routed
    /// through the architecture's schedule — must equal software
    /// convolution bit-for-bit up to float associativity.
    ImportanceExact,
    /// Exact delay-space arithmetic (true nLSE/nLDE) — must equal software
    /// convolution after decoding, up to floating-point rounding.
    DelayExact,
    /// The fitted min-of-max / min-of-inhibit hardware approximations with
    /// ideal (noiseless) delay elements.
    DelayApprox,
    /// Approximation hardware plus RJ, PSIJ and VTC noise — the mode every
    /// headline evaluation number uses.
    DelayApproxNoisy,
}

impl ArithmeticMode {
    /// All modes, in increasing realism.
    pub const ALL: [ArithmeticMode; 4] = [
        ArithmeticMode::ImportanceExact,
        ArithmeticMode::DelayExact,
        ArithmeticMode::DelayApprox,
        ArithmeticMode::DelayApproxNoisy,
    ];

    /// Whether this mode draws random numbers (needs a seed).
    pub fn is_stochastic(self) -> bool {
        matches!(self, ArithmeticMode::DelayApproxNoisy)
    }
}

impl fmt::Display for ArithmeticMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithmeticMode::ImportanceExact => "importance-exact",
            ArithmeticMode::DelayExact => "delay-exact",
            ArithmeticMode::DelayApprox => "delay-approx",
            ArithmeticMode::DelayApproxNoisy => "delay-approx-noisy",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn only_noisy_mode_is_stochastic() {
        assert!(ArithmeticMode::DelayApproxNoisy.is_stochastic());
        assert!(!ArithmeticMode::DelayExact.is_stochastic());
        assert!(!ArithmeticMode::ImportanceExact.is_stochastic());
        assert!(!ArithmeticMode::DelayApprox.is_stochastic());
    }

    #[test]
    fn display_distinct() {
        let names: Vec<String> = ArithmeticMode::ALL.iter().map(|m| m.to_string()).collect();
        for i in 0..names.len() {
            for j in i + 1..names.len() {
                assert_ne!(names[i], names[j]);
            }
        }
    }
}
