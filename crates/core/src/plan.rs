//! Compiled execution plans for the frame engine (DESIGN.md §5.11).
//!
//! The architecture's hot structure is fixed the moment the kernels are
//! compiled: the path-balanced nLSE tree topology, the per-level balancing
//! delays, the split-sign weight delay matrix, and — because the partial
//! accumulator re-enters the tree as its *last* leaf — the partition of
//! tree nodes into partial-free "row" nodes and the recurrent "spine"
//! (the rightmost root-to-partial path). `exec::run_delay` used to
//! re-derive all of it recursively per output pixel per cycle; a
//! [`FramePlan`] derives it exactly once, when [`crate::Architecture`] is
//! built, into flat arrays an iterative kernel can walk.
//!
//! Two structural facts make the plan more than a constant-fold:
//!
//! * **Row cells.** Everything a cycle computes *before* the partial
//!   joins in — the weighted, truncated leaves and every row-node
//!   reduction, exported as the balanced left inputs of the spine — is a
//!   pure function of `(kernel, rail, weight row, input row)`. Kernel
//!   rows with bit-identical per-rail weight delays (both rows of a box
//!   filter; rows 0 and 2 of `sobel_x`; the mirrored rows of the
//!   Gaussian pyramid tap) collapse onto one *row class*, so the cell is
//!   keyed `(kernel, rail, class, input row)` and shared by every output
//!   row whose rolling-shutter window covers that input row.
//! * **Domain-keyed noise.** Seeding the cell's draws from
//!   [`crate::seed::Domain::RowCycle`] with the cell's own flat index —
//!   instead of the consuming output row's stream — makes the cell's
//!   value independent of *who* computes it. Reuse (or recomputation,
//!   which is the same thing under counter-based RNG) is therefore
//!   bit-identical in all four arithmetic modes, not just the
//!   deterministic ones.
//!
//! The plan is mode-independent: balancing is stored as integer skipped
//! levels with the per-level latency `K` pre-applied into a small
//! per-level units table (`FramePlan::balance_units`) — index with the
//! level count at run time, exactly reproducing the recursive engine's
//! `(levels − l) as f64 * K` arithmetic bit for bit.

use std::collections::HashMap;

use crate::transform::{DelayKernel, Rail};

/// Where a tree-program operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// Leaf slot `kx` of the current cycle's weight row.
    Leaf(u16),
    /// The output of an earlier row node (program order index).
    Node(u16),
}

/// One partial-free nLSE node, in evaluation (post)order: both operands
/// are leaves or earlier row nodes, so the node belongs to the shareable
/// row cell.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowNode {
    pub left: Src,
    /// Skipped levels to balance under the left operand.
    pub left_bal: u32,
    pub right: Src,
    pub right_bal: u32,
}

/// One node on the recurrent spine, bottom-up (deepest first). Its left
/// operand comes from the row cell — *already balanced* by
/// [`SpineStep::input_bal`] in the row pass, so the stored value is
/// oy-independent — and its right operand is the running spine value
/// (the raw partial at the first step).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpineStep {
    pub input: Src,
    /// Skipped levels balanced onto the row-side input (applied in the
    /// row pass, drawn from the row stream).
    pub input_bal: u32,
    /// Skipped levels balanced onto the running spine value (applied in
    /// the spine pass, drawn from the consuming item's stream).
    pub spine_bal: u32,
}

/// The flattened path-balanced nLSE tree over `kw + 1` leaves (the last
/// leaf is the recurrent partial), split into row nodes and spine steps.
/// Mirrors `tree::eval`'s recursion exactly: left subtree takes
/// `ceil(n/2)` leaves, shallower subtrees are balanced by one latency per
/// skipped level, applied at the parent.
#[derive(Debug, Clone)]
pub(crate) struct TreeProgram {
    pub row_nodes: Vec<RowNode>,
    pub spine: Vec<SpineStep>,
    /// Tree depth in levels (for the balance-units table).
    pub depth: u32,
}

enum Built {
    /// A partial-free subtree: its value lives in the row cell.
    Row(Src, u32),
    /// The subtree containing the partial leaf: its value is the running
    /// spine accumulator.
    Spine(u32),
}

impl TreeProgram {
    /// Compiles the tree over `fan_in` leaves (`fan_in = kw + 1`; the
    /// partial is leaf `fan_in - 1`).
    pub(crate) fn compile(fan_in: usize) -> TreeProgram {
        assert!(fan_in >= 2, "recurrent tree needs a weight and a partial");
        let mut program = TreeProgram {
            row_nodes: Vec::new(),
            spine: Vec::new(),
            depth: 0,
        };
        match program.build(0, fan_in, fan_in - 1) {
            Built::Spine(levels) => program.depth = levels,
            Built::Row(..) => unreachable!("the root range contains the partial leaf"),
        }
        program
    }

    fn build(&mut self, lo: usize, hi: usize, partial: usize) -> Built {
        if hi - lo == 1 {
            return if lo == partial {
                Built::Spine(0)
            } else {
                Built::Row(Src::Leaf(lo as u16), 0)
            };
        }
        let mid = (hi - lo).div_ceil(2);
        let left = self.build(lo, lo + mid, partial);
        let right = self.build(lo + mid, hi, partial);
        match (left, right) {
            (Built::Row(ls, ll), Built::Row(rs, rl)) => {
                let lv = ll.max(rl);
                self.row_nodes.push(RowNode {
                    left: ls,
                    left_bal: lv - ll,
                    right: rs,
                    right_bal: lv - rl,
                });
                Built::Row(Src::Node((self.row_nodes.len() - 1) as u16), lv + 1)
            }
            (Built::Row(ls, ll), Built::Spine(rl)) => {
                let lv = ll.max(rl);
                self.spine.push(SpineStep {
                    input: ls,
                    input_bal: lv - ll,
                    spine_bal: lv - rl,
                });
                Built::Spine(lv + 1)
            }
            // The partial is the *last* leaf and the split is contiguous,
            // so it can only ever sit in a right subtree.
            (Built::Spine(_), _) => unreachable!("partial leaf escaped the right spine"),
        }
    }
}

/// One kernel row's finite weight taps: `(kx, delay units)` with the
/// never-weights (zero coefficients on this rail) pre-filtered — the
/// executor fills a zero-initialised leaf scratch and writes only these.
#[derive(Debug, Clone)]
pub(crate) struct RowTaps {
    pub finite: Vec<(u16, f64)>,
}

/// Per-(kernel, rail) plan: the row-class partition of its weight rows
/// plus this rail's slice of the global row-cell index space.
#[derive(Debug, Clone)]
pub(crate) struct RailPlan {
    pub rail: Rail,
    /// Row class of each weight row `ky` (first-occurrence order).
    pub class_of: Vec<u32>,
    /// Representative `ky` per class (the first row of the class).
    pub class_rep: Vec<u16>,
    /// Finite taps per weight row `ky`.
    pub taps: Vec<RowTaps>,
    /// Global row-cell base: cell index = `(cell_base + class) * image
    /// height + input row`. Also the [`crate::seed::Domain::RowCycle`]
    /// stream base, so noise streams are a static property of the plan.
    pub cell_base: usize,
}

/// Per-kernel plan (one [`RailPlan`] per rail, in `DelayKernel::rails()`
/// order).
#[derive(Debug, Clone)]
pub(crate) struct KernelPlan {
    pub rails: Vec<RailPlan>,
}

/// The compiled execution plan: flattened tree program, per-rail row
/// classes and tap lists, and the row-cell index space. Built once in
/// [`crate::Architecture::new`]; consumed by `exec::run_delay`.
#[derive(Debug, Clone)]
pub struct FramePlan {
    pub(crate) tree: TreeProgram,
    pub(crate) kernels: Vec<KernelPlan>,
    /// Total distinct `(kernel, rail, class)` triples — the number of
    /// row cells per input row.
    pub(crate) classes_total: usize,
}

/// Row-cell cache accounting for one executed frame, merged from the
/// per-worker tallies. The totals are schedule-independent: which worker
/// computes a cell varies, but every (cell, use) pair is classified the
/// same way at any worker count. Published to the metrics registry as
/// `ta_core_plan_rows_computed_total` / `ta_core_plan_rows_reused_total`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Row cells evaluated from scratch: cache first-uses plus
    /// weight-faulted rows, which bypass the cache.
    pub computed: u64,
    /// Cell uses served from the frame-local cache.
    pub reused: u64,
}

impl FramePlan {
    /// Compiles the plan from the split-sign delay kernels. `fan_in` is
    /// the tree fan-in (`kernel width + 1`).
    pub(crate) fn compile(delay_kernels: &[DelayKernel], fan_in: usize) -> FramePlan {
        let tree = TreeProgram::compile(fan_in);
        let mut cell_base = 0usize;
        let kernels = delay_kernels
            .iter()
            .map(|dk| {
                let rails = dk
                    .rails()
                    .iter()
                    .map(|&rail| {
                        let plan = RailPlan::compile(dk, rail, cell_base);
                        cell_base += plan.class_rep.len();
                        plan
                    })
                    .collect();
                KernelPlan { rails }
            })
            .collect();
        FramePlan {
            tree,
            kernels,
            classes_total: cell_base,
        }
    }

    /// The per-level balancing delay table for a given unit latency:
    /// `balance_units(k)[levels]` reproduces the recursive engine's
    /// `levels as f64 * k` bit for bit. (`k` is zero in the exact mode,
    /// collapsing every entry to zero.)
    pub(crate) fn balance_units(&self, k: f64) -> Vec<f64> {
        (0..=self.tree.depth)
            .map(|levels| levels as f64 * k)
            .collect()
    }

    /// Number of row classes summed over every kernel and rail — the
    /// width of the row-cell table (cells per input image row).
    #[must_use]
    pub fn row_classes(&self) -> usize {
        self.classes_total
    }

    /// Nodes on the recurrent spine (evaluated per output row) vs. total
    /// internal tree nodes — the shareable fraction of the tree is
    /// `1 - spine/total`.
    #[must_use]
    pub fn spine_len(&self) -> usize {
        self.tree.spine.len()
    }
}

impl RailPlan {
    fn compile(dk: &DelayKernel, rail: Rail, cell_base: usize) -> RailPlan {
        let (kw, kh) = (dk.width(), dk.height());
        let mut ids: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut class_of = Vec::with_capacity(kh);
        let mut class_rep = Vec::new();
        let mut taps = Vec::with_capacity(kh);
        for ky in 0..kh {
            let bits: Vec<u64> = (0..kw)
                .map(|kx| dk.rail_delay(rail, kx, ky).delay().to_bits())
                .collect();
            let next = class_rep.len() as u32;
            let id = *ids.entry(bits).or_insert(next);
            if id == next {
                class_rep.push(ky as u16);
            }
            class_of.push(id);
            taps.push(RowTaps {
                finite: (0..kw)
                    .filter_map(|kx| {
                        let w = dk.rail_delay(rail, kx, ky);
                        (!w.is_never()).then(|| (kx as u16, w.delay()))
                    })
                    .collect(),
            });
        }
        RailPlan {
            rail,
            class_of,
            class_rep,
            taps,
            cell_base,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::tree;
    use ta_image::Kernel;

    fn program_total_nodes(p: &TreeProgram) -> usize {
        p.row_nodes.len() + p.spine.len()
    }

    #[test]
    fn program_matches_tree_shape() {
        // fan_in leaves → fan_in − 1 internal nodes, depth from tree.rs.
        for fan_in in 2..=12 {
            let p = TreeProgram::compile(fan_in);
            assert_eq!(program_total_nodes(&p), fan_in - 1, "fan_in {fan_in}");
            assert_eq!(p.depth, tree::depth(fan_in), "fan_in {fan_in}");
            assert!(!p.spine.is_empty(), "partial always reaches the root");
        }
    }

    #[test]
    fn spine_is_rightmost_path() {
        // fan_in 4 (3×3 kernels): leaves 0,1,2 + partial 3.
        // Tree: ((0,1),(2,P)) → one row node, spine [(leaf 2), (node 0)].
        let p = TreeProgram::compile(4);
        assert_eq!(p.row_nodes.len(), 1);
        assert_eq!(p.spine.len(), 2);
        assert_eq!(p.row_nodes[0].left, Src::Leaf(0));
        assert_eq!(p.row_nodes[0].right, Src::Leaf(1));
        assert_eq!(p.spine[0].input, Src::Leaf(2));
        assert_eq!(p.spine[1].input, Src::Node(0));
        // Balanced tree of 4: no balancing anywhere.
        assert!(p
            .row_nodes
            .iter()
            .all(|n| n.left_bal == 0 && n.right_bal == 0));
        assert!(p.spine.iter().all(|s| s.input_bal == 0 && s.spine_bal == 0));
    }

    #[test]
    fn fan_in_six_balances_partial() {
        // fan_in 6 (5×5 kernels): left subtree (0,1,2) is depth 2, right
        // subtree (3,4,P) splits (3,4) vs P — both root inputs depth 2.
        let p = TreeProgram::compile(6);
        assert_eq!(p.row_nodes.len(), 3);
        assert_eq!(p.spine.len(), 2);
        assert_eq!(p.depth, 3);
        // Left subtree of the root has 3 leaves → depth 2; the right has
        // 3 leaves incl. the partial → depth 2; root balances nothing.
        assert_eq!(p.spine[1].input_bal, 0);
        assert_eq!(p.spine[1].spine_bal, 0);
    }

    #[test]
    fn minimal_fan_in_is_pure_spine() {
        // 1×1 kernel: one weight + partial, no row nodes at all.
        let p = TreeProgram::compile(2);
        assert!(p.row_nodes.is_empty());
        assert_eq!(p.spine.len(), 1);
        assert_eq!(p.spine[0].input, Src::Leaf(0));
    }

    #[test]
    fn sobel_x_rows_share_a_class() {
        // sobel_x rows (1,0,-1),(2,0,-2),(1,0,-1): rows 0 and 2 are
        // identical on both rails → 2 classes per rail.
        let dk = DelayKernel::compile(&Kernel::sobel_x());
        let plan = FramePlan::compile(std::slice::from_ref(&dk), 4);
        for rail_plan in &plan.kernels[0].rails {
            assert_eq!(rail_plan.class_of, vec![0, 1, 0], "{:?}", rail_plan.rail);
            assert_eq!(rail_plan.class_rep, vec![0, 1]);
        }
        assert_eq!(plan.row_classes(), 4); // 2 classes × 2 rails
    }

    #[test]
    fn box_filter_collapses_to_one_class() {
        let dk = DelayKernel::compile(&Kernel::box_filter(3));
        let plan = FramePlan::compile(std::slice::from_ref(&dk), 4);
        assert_eq!(plan.kernels[0].rails.len(), 1);
        assert_eq!(plan.kernels[0].rails[0].class_of, vec![0, 0, 0]);
        assert_eq!(plan.row_classes(), 1);
    }

    #[test]
    fn pyr_down_mirror_rows_share_classes() {
        // The 5×5 binomial pyramid tap: rows 0/4 and 1/3 mirror.
        let dk = DelayKernel::compile(&Kernel::pyr_down_5x5());
        let plan = FramePlan::compile(std::slice::from_ref(&dk), 6);
        let classes = &plan.kernels[0].rails[0].class_of;
        assert_eq!(classes[0], classes[4]);
        assert_eq!(classes[1], classes[3]);
        assert_eq!(plan.kernels[0].rails[0].class_rep.len(), 3);
    }

    #[test]
    fn cell_bases_are_disjoint() {
        let kernels = [Kernel::sobel_x(), Kernel::sobel_y()];
        let dks: Vec<DelayKernel> = kernels.iter().map(DelayKernel::compile).collect();
        let plan = FramePlan::compile(&dks, 4);
        let mut seen = Vec::new();
        for kp in &plan.kernels {
            for rp in &kp.rails {
                for class in 0..rp.class_rep.len() {
                    seen.push(rp.cell_base + class);
                }
            }
        }
        let total = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), total, "cell indices must never collide");
        assert_eq!(total, plan.row_classes());
    }

    #[test]
    fn taps_match_kernel_and_balance_table_matches_tree() {
        let dk = DelayKernel::compile(&Kernel::sobel_x());
        let plan = FramePlan::compile(std::slice::from_ref(&dk), 4);
        let pos = &plan.kernels[0].rails[0];
        // Each sobel_x rail carries exactly one finite tap per row; the
        // stored delays are the kernel's own, in kx order.
        for (ky, taps) in pos.taps.iter().enumerate() {
            let expect: Vec<(u16, f64)> = (0..3)
                .filter_map(|kx| {
                    let w = dk.rail_delay(pos.rail, kx, ky);
                    (!w.is_never()).then(|| (kx as u16, w.delay()))
                })
                .collect();
            assert_eq!(taps.finite, expect, "row {ky}");
            assert_eq!(taps.finite.len(), 1);
        }
        let units = plan.balance_units(1.5);
        assert_eq!(units.len(), plan.tree.depth as usize + 1);
        assert_eq!(units[0], 0.0);
        assert_eq!(units[2], 2.0 * 1.5);
    }
}
