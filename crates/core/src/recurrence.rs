//! Recurrence scheduling (§3): reference-frame shifting, cycle timing, and
//! the operating constraints of the output-to-input loop.
//!
//! A delay-space MAC needs state, but race logic is stateless. The paper's
//! trick: with inputs arriving at a fixed interval `T` (one rolling-shutter
//! row readout), the accumulation tree's output can be looped back into
//! its own input through a delay of `T − K_tree`. The loop delay plus the
//! next cycle's reference-frame shift cancel the tree's latency exactly,
//! so the *value* of the partial sum carries across cycles unchanged — a
//! stateless circuit acting as a classical state machine.

use crate::SystemError;

/// The timing solution of one recurrence loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecurrenceSchedule {
    /// Inherent latency of the accumulation tree (`depth × K`), in units.
    pub tree_latency_units: f64,
    /// Largest possible input value, in units (a value may not extend past
    /// the next reference frame — §3's second constraint).
    pub max_input_units: f64,
    /// Relaxation period between cycles so the previous cycle's falling
    /// edge cannot interfere (§3's third constraint), in units.
    pub relaxation_units: f64,
    /// The cycle time `T`, in units.
    pub cycle_units: f64,
    /// The loop delay `T − K_tree`, in units.
    pub loop_delay_units: f64,
}

impl RecurrenceSchedule {
    /// Solves the minimal cycle time satisfying all three §3 constraints.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Recurrence`] if the inputs are not finite,
    /// or `relaxation_units` is negative.
    pub fn solve(
        tree_latency_units: f64,
        max_input_units: f64,
        relaxation_units: f64,
    ) -> Result<Self, SystemError> {
        if !tree_latency_units.is_finite() || tree_latency_units < 0.0 {
            return Err(SystemError::Recurrence(format!(
                "tree latency must be finite and non-negative, got {tree_latency_units}"
            )));
        }
        if !max_input_units.is_finite() || max_input_units < 0.0 {
            return Err(SystemError::Recurrence(format!(
                "max input must be finite and non-negative, got {max_input_units}"
            )));
        }
        if relaxation_units.is_nan() || relaxation_units < 0.0 {
            return Err(SystemError::Recurrence(format!(
                "relaxation period cannot be negative, got {relaxation_units}"
            )));
        }
        // Row readout is pipelined with accumulation: while the tree
        // settles row k, the VTCs convert row k+1, so the cycle is set by
        // the longer of the two phases plus the relaxation period. The
        // loop delay T − K_tree is then automatically realisable.
        let cycle_units = tree_latency_units.max(max_input_units) + relaxation_units;
        Ok(RecurrenceSchedule {
            tree_latency_units,
            max_input_units,
            relaxation_units,
            cycle_units,
            loop_delay_units: cycle_units - tree_latency_units,
        })
    }

    /// Validates an externally imposed cycle time (e.g. a camera's actual
    /// row readout period) against the constraints.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Recurrence`] naming the violated constraint.
    pub fn with_cycle(
        tree_latency_units: f64,
        max_input_units: f64,
        relaxation_units: f64,
        cycle_units: f64,
    ) -> Result<Self, SystemError> {
        let minimal = Self::solve(tree_latency_units, max_input_units, relaxation_units)?;
        if cycle_units < minimal.cycle_units {
            return Err(SystemError::Recurrence(format!(
                "cycle {cycle_units} below the minimal feasible {}",
                minimal.cycle_units
            )));
        }
        Ok(RecurrenceSchedule {
            cycle_units,
            loop_delay_units: cycle_units - tree_latency_units,
            ..minimal
        })
    }
}

/// A reference-frame synchronisation strategy for serialised inputs
/// (Fig 7's three panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncStrategy {
    /// Fig 7a: every input gets its own delay line to the last input's
    /// reference frame, then one wide nLSE evaluates everything at once.
    DelayLines,
    /// Fig 7b: compute-on-arrival — a chain of two-input nLSE blocks, each
    /// holding the running partial until the next input lands.
    Staged,
    /// Fig 7c: the staged chain folded onto a single block whose output
    /// loops back through one reference-shifting delay.
    Recurrent,
}

/// Hardware cost of synchronising `n` serialised inputs arriving every
/// `cycle_units`, for one strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncCost {
    /// The strategy costed.
    pub strategy: SyncStrategy,
    /// Static delay-line length that must be built, in units.
    pub delay_line_units: f64,
    /// Number of two-input nLSE blocks instantiated.
    pub nlse_blocks: usize,
    /// Delay-line units *exercised* per completed accumulation (energy is
    /// proportional to this).
    pub exercised_units_per_result: f64,
}

/// Costs all three Fig 7 strategies for `n` inputs arriving every
/// `cycle_units`, with nLSE blocks of latency `k_units`.
///
/// # Panics
///
/// Panics if `n == 0` or `cycle_units < k_units` (infeasible staging).
pub fn sync_strategy_costs(n: usize, cycle_units: f64, k_units: f64) -> [SyncCost; 3] {
    assert!(n >= 1, "need at least one input");
    assert!(cycle_units >= k_units, "cycle must cover one block latency");
    let nf = n as f64;
    // Fig 7a: input i (0-based, last arrives at (n-1)·T) waits
    // (n-1-i)·T ⇒ total T·n(n-1)/2 of delay line; the wide nLSE tree is
    // modelled as (n-1) two-input blocks.
    let a_lines = cycle_units * nf * (nf - 1.0) / 2.0;
    let a = SyncCost {
        strategy: SyncStrategy::DelayLines,
        delay_line_units: a_lines,
        nlse_blocks: n.saturating_sub(1),
        exercised_units_per_result: a_lines,
    };
    // Fig 7b: each of the (n-1) stages holds its partial for T − K.
    let stage_hold = cycle_units - k_units;
    let b_lines = stage_hold * (nf - 1.0);
    let b = SyncCost {
        strategy: SyncStrategy::Staged,
        delay_line_units: b_lines,
        nlse_blocks: n.saturating_sub(1),
        exercised_units_per_result: b_lines,
    };
    // Fig 7c: one block, one loop line of T − K reused (n-1) times.
    let c = SyncCost {
        strategy: SyncStrategy::Recurrent,
        delay_line_units: stage_hold,
        nlse_blocks: usize::from(n > 1), // one shared block, none for a lone input
        exercised_units_per_result: stage_hold * (nf - 1.0),
    };
    [a, b, c]
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn solve_takes_the_binding_phase() {
        // Tree latency binds: loop shrinks to the relaxation period.
        let s = RecurrenceSchedule::solve(10.0, 4.0, 1.0).unwrap();
        assert_eq!(s.cycle_units, 11.0);
        assert_eq!(s.loop_delay_units, 1.0);
        // Input span binds: the partial waits out the difference too.
        let s = RecurrenceSchedule::solve(4.0, 10.0, 1.0).unwrap();
        assert_eq!(s.cycle_units, 11.0);
        assert_eq!(s.loop_delay_units, 7.0);
    }

    #[test]
    fn loop_delay_never_negative() {
        for (t, m, r) in [(5.0, 0.0, 0.0), (0.0, 9.0, 2.0), (3.3, 3.3, 0.1)] {
            let s = RecurrenceSchedule::solve(t, m, r).unwrap();
            assert!(s.loop_delay_units >= 0.0);
            assert!(s.cycle_units >= s.tree_latency_units);
            assert!(s.cycle_units >= s.max_input_units);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(RecurrenceSchedule::solve(f64::NAN, 1.0, 0.0).is_err());
        assert!(RecurrenceSchedule::solve(1.0, f64::INFINITY, 0.0).is_err());
        assert!(RecurrenceSchedule::solve(1.0, 1.0, -0.5).is_err());
    }

    #[test]
    fn external_cycle_validated() {
        let ok = RecurrenceSchedule::with_cycle(5.0, 3.0, 1.0, 20.0).unwrap();
        assert_eq!(ok.cycle_units, 20.0);
        assert_eq!(ok.loop_delay_units, 15.0);
        assert!(RecurrenceSchedule::with_cycle(5.0, 3.0, 1.0, 4.0).is_err());
    }

    #[test]
    fn recurrence_wins_on_static_hardware() {
        let [a, b, c] = sync_strategy_costs(9, 8.0, 3.0);
        assert!(c.delay_line_units < b.delay_line_units);
        assert!(b.delay_line_units < a.delay_line_units);
        assert_eq!(c.nlse_blocks, 1);
        assert_eq!(b.nlse_blocks, 8);
        // Energy (exercised delay) of staged and recurrent match; the
        // parallel delay-line approach pays quadratically.
        assert_eq!(b.exercised_units_per_result, c.exercised_units_per_result);
        assert!(a.exercised_units_per_result > b.exercised_units_per_result);
    }

    #[test]
    fn single_input_degenerates() {
        let [a, b, c] = sync_strategy_costs(1, 5.0, 2.0);
        assert_eq!(a.delay_line_units, 0.0);
        assert_eq!(b.nlse_blocks, 0);
        assert_eq!(c.nlse_blocks, 0);
        assert_eq!(c.exercised_units_per_result, 0.0);
    }
}
