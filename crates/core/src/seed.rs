//! Counter-based RNG stream derivation (DESIGN.md §5.10).
//!
//! The parallel frame engine requires bit-identical results at every
//! worker count, which rules out a single serial RNG stream threaded
//! through the hot loops: the draw order would depend on scheduling.
//! Instead, every independently-schedulable unit of work (an image row,
//! a campaign trial, a retry attempt) seeds its own `SmallRng` from a
//! *derived* seed that is a pure function of `(base, domain, index)`:
//!
//! * `base` — the caller's seed, the only user-visible knob;
//! * `domain` — a [`Domain`] tag separating the purposes a base seed is
//!   split into (VTC noise vs. tree noise vs. backoff jitter, …), so no
//!   two subsystems can collide onto the same stream — the class of bug
//!   behind the old `seed ^ 0x7a11_5eed` fold and the supervisor's
//!   jitter/frame-seed aliasing;
//! * `index` — the work item's position (row, trial, frame, …).
//!
//! The mix is a splitmix64 finalizer over a golden-ratio combination of
//! the three inputs — the same construction `SmallRng::seed_from_u64`
//! uses for its state expansion, so derived seeds are well-distributed
//! even for consecutive indices.

/// Stream domains. Each subsystem that derives per-item seeds from a
/// base seed owns one tag; two different domains never produce the same
/// derived seed for any `(base, index)` pair in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Domain {
    /// Per-image-row VTC conversion noise in `exec::run_delay`.
    VtcRow = 1,
    /// Per-(kernel, output-row) tree evaluation noise in
    /// `exec::run_delay` (PSIJ/RJ realizations, loop jitter, nLDE).
    TreeRow = 2,
    /// Per-frame seeds in `exec::run_sequence`.
    Frame = 3,
    /// The supervisor's retry backoff jitter (domain-separated from the
    /// frame seeds derived from the same base).
    Backoff = 4,
    /// Per-configuration seeds in the design-space explorer.
    Dse = 5,
    /// Per-(rate, trial) fault-map sampling in resilience campaigns.
    FaultTrial = 6,
    /// Per-site runs in the campaign sensitivity scan.
    FaultSite = 7,
    /// Per-(kernel, rail, weight-row class, input-row) noise streams for
    /// the plan executor's shared row cells (`exec`/`plan`): keying the
    /// draws by what the row *is* rather than which output row consumes
    /// it is what makes row reuse bit-identical in the noisy mode.
    RowCycle = 8,
}

/// Derives an independent stream seed from `(base, domain, index)`.
///
/// Pure and stateless: any worker can compute the seed for any item, so
/// parallel schedules reproduce the serial engine bit for bit. The
/// output is splitmix64-finalized, so even adjacent indices land far
/// apart in seed space (and `SmallRng::seed_from_u64`'s own expansion
/// decorrelates whatever structure remains).
#[must_use]
pub fn derive_seed(base: u64, domain: Domain, index: u64) -> u64 {
    let mut z = base
        .wrapping_add((domain as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(index.wrapping_add(1).wrapping_mul(0xd1b5_4a32_d192_ed03));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_domains_distinct_streams() {
        let base = 42;
        let domains = [
            Domain::VtcRow,
            Domain::TreeRow,
            Domain::Frame,
            Domain::Backoff,
            Domain::Dse,
            Domain::FaultTrial,
            Domain::FaultSite,
            Domain::RowCycle,
        ];
        for (i, &a) in domains.iter().enumerate() {
            for &b in &domains[i + 1..] {
                for index in 0..64 {
                    assert_ne!(
                        derive_seed(base, a, index),
                        derive_seed(base, b, index),
                        "{a:?} vs {b:?} at {index}"
                    );
                }
            }
        }
    }

    #[test]
    fn adjacent_indices_decorrelate() {
        let mut seen = std::collections::HashSet::new();
        for index in 0..10_000u64 {
            assert!(seen.insert(derive_seed(7, Domain::TreeRow, index)));
        }
        // No trivial xor relationship between neighbours (the old
        // `seed ^ CONST` fold failed exactly this).
        let a = derive_seed(7, Domain::TreeRow, 0);
        let b = derive_seed(7, Domain::TreeRow, 1);
        let c = derive_seed(7, Domain::TreeRow, 2);
        assert_ne!(a ^ b, b ^ c);
    }

    #[test]
    fn base_seed_perturbations_do_not_alias() {
        // Regression shape for the `seed ^ 0x7a11_5eed` bug: two base
        // seeds related by the old xor constant must not share streams.
        for index in 0..64 {
            assert_ne!(
                derive_seed(9, Domain::TreeRow, index),
                derive_seed(9 ^ 0x7a11_5eed, Domain::TreeRow, index)
            );
        }
    }

    #[test]
    fn deterministic_function() {
        assert_eq!(
            derive_seed(123, Domain::Frame, 456),
            derive_seed(123, Domain::Frame, 456)
        );
    }
}
