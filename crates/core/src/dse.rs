//! Design-space exploration (§5.3, Fig 12): sweep approximation term
//! counts and unit scales, measure per-configuration energy and accuracy,
//! and extract the Pareto-optimal frontier.

use ta_circuits::UnitScale;
use ta_image::{conv, metrics, Image};

use crate::seed::{derive_seed, Domain};
use crate::{exec, ArchConfig, Architecture, ArithmeticMode, Error, SystemDescription};

/// The sweep grid. Defaults reproduce the paper's exploration: term
/// counts {5, 7, 10, 15, 20} for both nLSE and nLDE, unit scales
/// {1, 5, 10} ns, inverters at 50× minimal delay, 10 mV V_DD swing.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// nLSE max-term counts to sweep.
    pub nlse_terms: Vec<usize>,
    /// nLDE inhibit-term counts to sweep (collapsed to one point for
    /// all-positive kernels, which build no subtraction unit).
    pub nlde_terms: Vec<usize>,
    /// Unit scales in nanoseconds.
    pub unit_scales_ns: Vec<f64>,
    /// Delay-element multiplier (× minimal inverter delay).
    pub element_multiplier: f64,
    /// Base seed for the noisy runs.
    pub seed: u64,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid {
            nlse_terms: vec![5, 7, 10, 15, 20],
            nlde_terms: vec![5, 7, 10, 15, 20],
            unit_scales_ns: vec![1.0, 5.0, 10.0],
            element_multiplier: 50.0,
            seed: 0,
        }
    }
}

/// One explored configuration with its measured cost and accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsePoint {
    /// Unit scale in nanoseconds.
    pub unit_ns: f64,
    /// nLSE max-term count.
    pub nlse_terms: usize,
    /// nLDE inhibit-term count.
    pub nlde_terms: usize,
    /// Frame energy in microjoules (Fig 12's x-axis).
    pub energy_uj: f64,
    /// Pooled range-normalised RMSE over the evaluation images (Fig 12's
    /// y-axis).
    pub rmse: f64,
    /// Whether the point lies on the Pareto-optimal frontier.
    pub pareto: bool,
}

/// Runs the exploration: every grid configuration is compiled, executed in
/// the noisy mode over `images`, and scored against software convolution.
///
/// # Errors
///
/// Propagates [`crate::SystemError`] from architecture compilation and
/// [`crate::exec::ExecError`] from evaluation runs (e.g. an image that
/// mismatches `desc`'s geometry), both through the unified [`Error`].
///
/// # Panics
///
/// Panics if `images` is empty.
pub fn explore(
    desc: &SystemDescription,
    images: &[Image],
    grid: &SweepGrid,
) -> Result<Vec<DsePoint>, Error> {
    assert!(!images.is_empty(), "need at least one evaluation image");

    // References once per image/kernel.
    let references: Vec<Vec<Image>> = images
        .iter()
        .map(|img| {
            desc.kernels()
                .iter()
                .map(|k| conv::convolve(img, k, desc.stride()))
                .collect()
        })
        .collect();

    let needs_nlde = desc.kernels().iter().any(|k| k.has_negative_weights());
    let nlde_sweep: Vec<usize> = if needs_nlde {
        grid.nlde_terms.clone()
    } else {
        vec![grid.nlde_terms.first().copied().unwrap_or(5)]
    };

    // Enumerate configurations, then measure them on a scoped thread pool
    // (each configuration is independent and seeds are derived per image,
    // so the result is identical to the sequential sweep).
    let mut configs = Vec::new();
    for &unit_ns in &grid.unit_scales_ns {
        for &nlse in &grid.nlse_terms {
            for &nlde in &nlde_sweep {
                configs.push((unit_ns, nlse, nlde));
            }
        }
    }
    // Pre-fit the approximations serially: the fits are cached
    // process-wide and fitting inside the pool would duplicate work.
    for &(_, nlse, nlde) in &configs {
        let _ = ta_approx::NlseApprox::fit(nlse);
        let _ = ta_approx::NldeApprox::fit(nlde);
    }

    let measure = |&(unit_ns, nlse, nlde): &(f64, usize, usize)| -> Result<DsePoint, Error> {
        let cfg = ArchConfig::new(UnitScale::new(unit_ns, grid.element_multiplier), nlse, nlde);
        let arch = Architecture::new(desc.clone(), cfg)?;
        let mut per_image = Vec::with_capacity(images.len());
        for (i, img) in images.iter().enumerate() {
            let run = exec::run(
                &arch,
                img,
                ArithmeticMode::DelayApproxNoisy,
                derive_seed(grid.seed, Domain::Dse, i as u64),
            )?;
            per_image.push(run.pooled_rmse(&references[i]));
        }
        Ok(DsePoint {
            unit_ns,
            nlse_terms: nlse,
            nlde_terms: nlde,
            energy_uj: arch.energy_per_frame().total_uj(),
            rmse: metrics::pool_rmse(&per_image),
            pareto: false,
        })
    };

    // Fan the grid out over the shared pool: each configuration is an
    // independent measurement (per-image seeds are derived, so results
    // do not depend on which worker runs which point), and the pool
    // re-raises any worker panic on this thread.
    let mut points = ta_pool::Pool::current()
        .map(configs.len(), |i| measure(&configs[i]))
        .into_iter()
        .collect::<Result<Vec<DsePoint>, Error>>()?;
    mark_pareto(&mut points);
    Ok(points)
}

/// Marks the Pareto-optimal points (no other point is at least as good on
/// both axes and strictly better on one).
pub fn mark_pareto(points: &mut [DsePoint]) {
    for i in 0..points.len() {
        let p = points[i];
        let dominated = points.iter().enumerate().any(|(j, q)| {
            j != i
                && q.energy_uj <= p.energy_uj
                && q.rmse <= p.rmse
                && (q.energy_uj < p.energy_uj || q.rmse < p.rmse)
        });
        points[i].pareto = !dominated;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use ta_image::{synth, Kernel};

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            nlse_terms: vec![3, 8],
            nlde_terms: vec![6],
            unit_scales_ns: vec![1.0, 5.0],
            element_multiplier: 50.0,
            seed: 1,
        }
    }

    #[test]
    fn explore_covers_grid_and_marks_pareto() {
        let desc = SystemDescription::new(24, 24, vec![Kernel::pyr_down_5x5()], 2).unwrap();
        let images = vec![synth::natural_image(24, 24, 0)];
        let points = explore(&desc, &images, &tiny_grid()).unwrap();
        // Positive-only kernel collapses the nLDE axis: 2 terms × 2 units.
        assert_eq!(points.len(), 4);
        assert!(points.iter().any(|p| p.pareto));
        // At a fixed unit scale, more terms must cost more energy.
        let e3 = points
            .iter()
            .find(|p| p.unit_ns == 1.0 && p.nlse_terms == 3)
            .unwrap()
            .energy_uj;
        let e8 = points
            .iter()
            .find(|p| p.unit_ns == 1.0 && p.nlse_terms == 8)
            .unwrap()
            .energy_uj;
        assert!(e8 > e3);
    }

    #[test]
    fn pareto_marking_logic() {
        let mut pts = vec![
            DsePoint {
                unit_ns: 1.0,
                nlse_terms: 1,
                nlde_terms: 1,
                energy_uj: 1.0,
                rmse: 0.10,
                pareto: false,
            },
            DsePoint {
                unit_ns: 1.0,
                nlse_terms: 2,
                nlde_terms: 1,
                energy_uj: 2.0,
                rmse: 0.05,
                pareto: false,
            },
            DsePoint {
                unit_ns: 1.0,
                nlse_terms: 3,
                nlde_terms: 1,
                energy_uj: 3.0,
                rmse: 0.08, // dominated by the 2.0/0.05 point
                pareto: false,
            },
        ];
        mark_pareto(&mut pts);
        assert!(pts[0].pareto);
        assert!(pts[1].pareto);
        assert!(!pts[2].pareto);
    }
}
