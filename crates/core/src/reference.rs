//! The serial reference engine the plan executor is verified against
//! (DESIGN.md §5.11).
//!
//! [`run_frame`] evaluates a frame with none of the hot path's machinery:
//! no compiled [`crate::plan::FramePlan`] (the tree shape, balancing
//! levels, row classes and cell numbering are re-derived here by the
//! recursion that defined them), no row-cell cache (every cycle is
//! recomputed from scratch), no thread pool (strictly serial). Under
//! counter-based RNG, recomputing a row cell from its
//! [`Domain::RowCycle`] stream *is* reuse — same stream, same draws, same
//! bits — so a cache hit in the optimised engine and a fresh evaluation
//! here must agree bit for bit, in all four arithmetic modes, clean or
//! faulted, at any worker count. The `plan_equivalence` integration test
//! pins exactly that.
//!
//! Compiled only for tests and under the `reference` feature (the
//! equivalence test and the `sequential` bench enable it); it never ships
//! on the production path.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ta_delay_space::DelayValue;
use ta_image::Image;
use ta_race_logic::{FaultObservation, NormalSampler};

use crate::census::{self, OpCounts};
use crate::exec::{combine_rails, run_importance, tree_mode_ops, ExecError, ShiftExps};
use crate::fault::{FaultError, FaultKind, FaultMap, FaultStats};
use crate::seed::{derive_seed, Domain};
use crate::transform::{DelayKernel, Rail};
use crate::tree::TreeOps;
use crate::{Architecture, ArithmeticMode, RunResult};

/// Row classes of one (kernel, rail): first-occurrence ids over bitwise
/// weight-row equality — independently re-deriving the numbering
/// convention [`crate::plan::FramePlan`] compiles, so the equivalence
/// test would catch a plan that mis-classifies rows.
fn row_classes(dk: &DelayKernel, rail: Rail) -> Vec<usize> {
    let (kw, kh) = (dk.width(), dk.height());
    let mut classes = Vec::with_capacity(kh);
    let mut reps: Vec<usize> = Vec::new();
    for ky in 0..kh {
        let same = |&rep: &usize| {
            (0..kw).all(|kx| {
                dk.rail_delay(rail, kx, rep).delay().to_bits()
                    == dk.rail_delay(rail, kx, ky).delay().to_bits()
            })
        };
        classes.push(reps.iter().position(same).unwrap_or_else(|| {
            reps.push(ky);
            reps.len() - 1
        }));
    }
    classes
}

/// One collected spine input: the value of a partial-free subtree that
/// feeds a spine node, with the balancing levels for its own edge
/// (`input_lv`, drawn from the row stream) and for the running spine
/// value it merges with (`spine_lv`, drawn from the consuming item's
/// stream).
struct SpineInput {
    value: DelayValue,
    input_lv: u32,
    spine_lv: u32,
}

enum Sub {
    /// A partial-free subtree: `(value, levels)`.
    Row(DelayValue, u32),
    /// The subtree containing the partial leaf: `levels`.
    Spine(u32),
}

/// Walks the path-balanced tree over `leaves + partial` exactly like
/// `tree::eval_rec`, evaluating the partial-free row nodes in place and
/// collecting the (unbalanced) spine inputs bottom-up. The partial is
/// the virtual last leaf (`index == leaves.len()`).
fn collect_rec(
    ops: &TreeOps<'_>,
    leaves: &[DelayValue],
    lo: usize,
    hi: usize,
    rng: &mut SmallRng,
    out: &mut Vec<SpineInput>,
) -> Sub {
    if hi - lo == 1 {
        return if lo == leaves.len() {
            Sub::Spine(0)
        } else {
            Sub::Row(leaves[lo], 0)
        };
    }
    let mid = (hi - lo).div_ceil(2);
    let left = collect_rec(ops, leaves, lo, lo + mid, rng, out);
    let right = collect_rec(ops, leaves, lo + mid, hi, rng, out);
    let k = ops.k();
    match (left, right) {
        (Sub::Row(a, ll), Sub::Row(b, rl)) => {
            let lv = ll.max(rl);
            let a = ops.balance(a, (lv - ll) as f64 * k, rng);
            let b = ops.balance(b, (lv - rl) as f64 * k, rng);
            Sub::Row(ops.combine(a, b, rng), lv + 1)
        }
        (Sub::Row(a, ll), Sub::Spine(rl)) => {
            let lv = ll.max(rl);
            out.push(SpineInput {
                value: a,
                input_lv: lv - ll,
                spine_lv: lv - rl,
            });
            Sub::Spine(lv + 1)
        }
        // The partial is the last leaf of a contiguous split: it can only
        // ever sit in a right subtree.
        (Sub::Spine(..), _) => unreachable!("partial leaf escaped the right spine"),
    }
}

/// Pushes one frame through the architecture serially and recursively —
/// same semantics as [`crate::exec::run`] / [`crate::exec::run_faulty`]
/// (pass an empty map for the clean path), minus the telemetry epilogue.
///
/// # Errors
///
/// [`ExecError::DimensionMismatch`] on geometry mismatch;
/// [`ExecError::Fault`] when faults are injected under
/// [`ArithmeticMode::ImportanceExact`].
pub fn run_frame(
    arch: &Architecture,
    image: &Image,
    mode: ArithmeticMode,
    seed: u64,
    faults: &FaultMap,
) -> Result<RunResult, ExecError> {
    let desc = arch.desc();
    if (image.width(), image.height()) != (desc.image_width(), desc.image_height()) {
        return Err(ExecError::DimensionMismatch {
            expected: (desc.image_width(), desc.image_height()),
            got: (image.width(), image.height()),
        });
    }
    if mode == ArithmeticMode::ImportanceExact {
        if !faults.is_empty() {
            return Err(FaultError::UnsupportedMode(mode).into());
        }
        return Ok(RunResult {
            outputs: run_importance(arch, image),
            energy: arch.energy_per_frame(),
            timing: arch.timing(),
            mode,
            fault_stats: FaultStats::default(),
            ops: OpCounts::default(),
            stages: None,
        });
    }

    let cfg = arch.cfg();
    let stride = desc.stride();
    let (ow, oh) = desc.output_dims();
    let kw = desc.kernel_width();
    let kh = desc.kernel_height();
    let noisy = mode == ArithmeticMode::DelayApproxNoisy;
    let approximate = mode != ArithmeticMode::DelayExact;
    let mut stats = FaultStats {
        sites_injected: faults.len(),
        ..FaultStats::default()
    };

    // Stage 1 — serial VTC conversion, one derived stream per image row
    // (identical to the pool version: counter-based seeding makes the
    // schedule irrelevant).
    let vtc = arch.vtc();
    let img_w = image.width();
    let img_h = image.height();
    let mut pixel_delays: Vec<DelayValue> = Vec::with_capacity(img_w * img_h);
    let mut sampler = NormalSampler::new();
    for y in 0..img_h {
        let mut rng = SmallRng::seed_from_u64(derive_seed(seed, Domain::VtcRow, y as u64));
        for (x, &p) in image.row(y).iter().enumerate() {
            let v = if noisy {
                vtc.convert_with(p, &mut rng, &mut sampler)
            } else {
                vtc.convert_ideal(p)
            };
            pixel_delays.push(match faults.pixel_fault(x, y) {
                None => v,
                Some(fault) => {
                    let mut obs = FaultObservation::default();
                    let v = fault.apply(v, &mut obs);
                    stats.absorb_observation(obs);
                    v
                }
            });
        }
    }

    let k_tree = if approximate {
        arch.tree_depth() as f64 * arch.nlse_unit().latency_units()
    } else {
        0.0
    };
    let loop_delay = arch.schedule().loop_delay_units;
    let truncate_at = if approximate {
        arch.schedule().cycle_units
    } else {
        f64::INFINITY
    };

    // Row-cell stream numbering: cumulative class count over (kernel,
    // rail) in declaration order, re-derived without the plan.
    let delay_kernels = arch.delay_kernels();
    let mut cell_bases: Vec<Vec<usize>> = Vec::with_capacity(delay_kernels.len());
    let mut classes: Vec<Vec<Vec<usize>>> = Vec::with_capacity(delay_kernels.len());
    let mut base = 0usize;
    for dk in delay_kernels {
        let mut kernel_bases = Vec::new();
        let mut kernel_classes = Vec::new();
        for &rail in dk.rails() {
            let cls = row_classes(dk, rail);
            let count = cls.iter().max().map_or(0, |&m| m + 1);
            kernel_bases.push(base);
            kernel_classes.push(cls);
            base += count;
        }
        cell_bases.push(kernel_bases);
        classes.push(kernel_classes);
    }

    // Stage 2 — serial, in flat item order, with the executor's canonical
    // loop structure (rail-outer, cycle, then column-inner spine pass and
    // a final rail-combine pass) so the two engines' per-stream draw
    // orders line up. Every cycle's shareable part is evaluated afresh
    // from its own RowCycle stream — recomputation is reuse.
    let mut outputs: Vec<Image> = (0..delay_kernels.len())
        .map(|_| Image::zeros(ow, oh))
        .collect();
    let mut leaves = vec![DelayValue::ZERO; kw];
    for item in 0..delay_kernels.len() * oh {
        let k_idx = item / oh;
        let oy = item % oh;
        let dk = &delay_kernels[k_idx];
        let shift_exps = ShiftExps::new(arch, arch.output_shift_units(k_idx, approximate));
        let mut rng = SmallRng::seed_from_u64(derive_seed(seed, Domain::TreeRow, item as u64));
        let mut rail_vals: [Vec<DelayValue>; 2] = [Vec::new(), Vec::new()];

        for (rail_i, &rail) in dk.rails().iter().enumerate() {
            let tree_drift = faults.tree_drift(k_idx, rail);
            let drift_saturates =
                mode != ArithmeticMode::DelayExact && tree_drift.is_some_and(|f| 1.0 + f < 0.0);
            let loop_drift = faults.loop_drift(k_idx, rail);
            let mut partials = vec![DelayValue::ZERO; ow];
            for (ky, &class) in classes[k_idx][rail_i].iter().enumerate() {
                let r = oy * stride + ky;
                // The whole cycle row, recomputed from the cell's own
                // stream. The cell index is keyed by the row *class* even
                // though the taps below use `ky` itself: same-class rows
                // are bitwise-equal, and a fault on this row must not
                // re-roll its noise.
                let cell = (cell_bases[k_idx][rail_i] + class) * img_h + r;
                let mut cell_rng =
                    SmallRng::seed_from_u64(derive_seed(seed, Domain::RowCycle, cell as u64));
                let realization = noisy.then(|| cfg.noise.begin_eval(cfg.unit, &mut cell_rng));
                let ops = tree_mode_ops(mode, arch.nlse_unit(), tree_drift, realization.as_ref());
                let k = ops.k();
                let mut row_inputs: Vec<Vec<SpineInput>> = Vec::with_capacity(ow);
                for ox in 0..ow {
                    for (kx, slot) in leaves.iter_mut().enumerate() {
                        let w = dk.rail_delay(rail, kx, ky);
                        if w.is_never() {
                            *slot = DelayValue::ZERO;
                            continue;
                        }
                        let weight_fault = faults.weight_fault(k_idx, rail, ky, kx);
                        let nominal = match weight_fault {
                            Some(FaultKind::DelayDrift { fraction }) => {
                                let factor = 1.0 + fraction;
                                if factor < 0.0 {
                                    stats.saturations += 1;
                                    0.0
                                } else {
                                    w.delay() * factor
                                }
                            }
                            _ => w.delay(),
                        };
                        let w_delay = match &realization {
                            Some(rz) => rz.perturb_units(nominal, &mut cell_rng),
                            None => nominal,
                        };
                        let mut leaf = pixel_delays[r * img_w + ox * stride + kx].delayed(w_delay);
                        if let Some(fault) = weight_fault.and_then(FaultKind::edge_fault) {
                            let mut obs = FaultObservation::default();
                            leaf = fault.apply(leaf, &mut obs);
                            stats.absorb_observation(obs);
                        }
                        *slot = if leaf.delay() > truncate_at {
                            DelayValue::ZERO
                        } else {
                            leaf
                        };
                    }
                    let mut inputs = Vec::new();
                    collect_rec(&ops, &leaves, 0, kw + 1, &mut cell_rng, &mut inputs);
                    for si in &mut inputs {
                        si.value = ops.balance(si.value, si.input_lv as f64 * k, &mut cell_rng);
                    }
                    row_inputs.push(inputs);
                }

                // Spine pass, from the consuming item's stream.
                for (ox, partial) in partials.iter_mut().enumerate() {
                    if drift_saturates {
                        stats.saturations += 1;
                    }
                    let mut s = *partial;
                    for si in &row_inputs[ox] {
                        s = ops.balance(s, si.spine_lv as f64 * k, &mut rng);
                        s = ops.combine(si.value, s, &mut rng);
                    }
                    let raw = s;
                    if ky + 1 < kh {
                        let jitter = match (&realization, raw.is_never()) {
                            (Some(rz), false) => {
                                rz.perturb_units(loop_delay, &mut rng) - loop_delay
                            }
                            _ => 0.0,
                        };
                        *partial = match loop_drift {
                            None => {
                                if raw.is_never() {
                                    raw
                                } else {
                                    raw.delayed(jitter - k_tree)
                                }
                            }
                            Some(fraction) => {
                                let excess = if 1.0 + fraction < 0.0 {
                                    stats.saturations += 1;
                                    -loop_delay
                                } else {
                                    loop_delay * fraction
                                };
                                if raw.is_never() {
                                    raw
                                } else {
                                    raw.delayed(jitter + excess - k_tree)
                                }
                            }
                        };
                    } else {
                        *partial = raw;
                    }
                }
            }
            rail_vals[rail_i] = partials;
        }

        let mut counts = OpCounts::default();
        for (ox, &pos_raw) in rail_vals[0].iter().enumerate() {
            let rail_raw = [
                pos_raw,
                if dk.rails().len() == 2 {
                    rail_vals[1][ox]
                } else {
                    DelayValue::ZERO
                },
            ];
            let value = combine_rails::<false>(
                arch,
                k_idx,
                dk.rails(),
                rail_raw,
                mode,
                &shift_exps,
                faults,
                &mut stats,
                &mut counts,
                &mut rng,
            );
            outputs[k_idx].set(ox, oy, value);
        }
    }

    Ok(RunResult {
        outputs,
        energy: arch.energy_per_frame(),
        timing: arch.timing(),
        mode,
        fault_stats: stats,
        ops: census::expected_ops(arch, mode),
        stages: None,
    })
}
