//! The delay-space convolution architecture (paper §3–§5): the automated
//! transformation from traditional convolutions to temporal hardware, the
//! recurrence engine, the rolling-shutter architectural simulator, and the
//! design-space exploration driver.
//!
//! # Layering
//!
//! * [`SystemDescription`] — what to compute: image geometry, kernels,
//!   stride (the paper's "system description", §5.1).
//! * [`ArchConfig`] — how to build it: unit scale, approximation term
//!   counts, noise environment, energy/area models.
//! * [`Architecture`] — the compiled design: split-sign delay kernels,
//!   nLSE accumulation trees, recurrence schedule, replicated MAC blocks;
//!   knows its own **area**, **per-frame energy** and **timing** (both are
//!   static properties of the hardware, independent of pixel data).
//! * [`exec::run`] — executes an image through the architecture in one of
//!   four [`ArithmeticMode`]s: exact importance-space arithmetic, exact
//!   delay-space arithmetic (nLSE/nLDE), ideal approximation hardware, or
//!   approximation hardware with RJ/PSIJ/VTC noise — the verification
//!   ladder of §5.1.
//! * [`dse`] — the Fig 12 design-space exploration and Pareto frontier.
//!
//! # Quick example
//!
//! ```
//! use ta_core::{ArchConfig, Architecture, ArithmeticMode, SystemDescription, exec};
//! use ta_image::{synth, Kernel};
//!
//! let desc = SystemDescription::new(32, 32, vec![Kernel::sobel_x()], 1)?;
//! let cfg = ArchConfig::fast_1ns(7, 20);
//! let arch = Architecture::new(desc, cfg)?;
//! let img = synth::natural_image(32, 32, 1);
//! let run = exec::run(&arch, &img, ArithmeticMode::DelayApprox, 0)?;
//! assert_eq!(run.outputs.len(), 1);
//! println!("energy: {}", run.energy);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
pub mod campaign;
pub mod census;
pub mod dse;
mod error;
pub mod exec;
pub mod fault;
pub mod gate_engine;
mod modes;
pub mod plan;
pub mod recurrence;
#[cfg(any(test, feature = "reference"))]
pub mod reference;
mod report;
pub mod seed;
mod system;
pub mod transform;
mod tree;

pub use arch::Architecture;
pub use census::{OpCounts, StageEnergy, StageProfile};
pub use error::Error;
pub use fault::{
    enumerate_sites, FaultError, FaultKind, FaultMap, FaultModel, FaultSite, FaultStats,
};
pub use gate_engine::{GateEngine, GateOptSummary, GateRunStats};
pub use modes::ArithmeticMode;
pub use plan::{FramePlan, PlanCacheStats};
pub use report::{RunResult, TimingReport, ValidationError};
pub use system::{ArchConfig, SystemDescription, SystemError};
