//! A gate-level compilation of the convolution engine: the same
//! architecture the functional simulator models, but built out of actual
//! race-logic netlists and executed edge by edge.
//!
//! This is the strongest verification layer in the workspace: the
//! functional simulator (`exec`, fast, used for full evaluations) and the
//! gate-level engine (this module, faithful, used on small frames) are
//! produced from one [`Architecture`] and must agree to floating-point
//! precision — asserted in tests and in `tests/hardware_stack.rs`.
//!
//! One netlist is compiled per (kernel, rail, kernel-row): the circuit of
//! a single recurrence cycle, containing that row's weight delay lines and
//! the accumulation tree (Fig 9's MAC block datapath for one cycle). The
//! recurrence loop is the only piece modelled outside the netlists — a
//! combinational netlist cannot contain its own feedback path; the loop's
//! reference-frame algebra (value preserved, tree latency cancelled, §3)
//! is applied between cycle evaluations exactly as the hardware's loop
//! delay line does.

// The netlist compiler establishes structural invariants (arity, presence
// of the nLDE circuit for split kernels) that the evaluator then relies
// on; the `expect`s below document those invariants rather than guard
// user input, and converting them to `Result` would obscure the datapath.
#![allow(clippy::expect_used)]

use ta_delay_space::DelayValue;
use ta_image::Image;
use ta_race_logic::blocks::{self, TermPair};
use ta_race_logic::opt::{optimize, EventSim, Optimized};
use ta_race_logic::{Circuit, CircuitBuilder, FaultObservation, FaultPlan, NoNoise};

use crate::exec::ExecError;
use crate::fault::{FaultKind, FaultMap, FaultStats};
use crate::transform::Rail;
use crate::Architecture;

/// One compiled cycle netlist: the datapath a MAC block evaluates when a
/// given kernel row's pixels arrive.
#[derive(Debug, Clone)]
struct CycleCircuit {
    /// Inputs: `kw` pixel edges, then the recurrent partial, then one
    /// always-never feed for absent weight paths.
    circuit: Circuit,
    /// The tree's uniform output shift for this netlist.
    tree_shift: f64,
    /// Netlist node index of each weight delay line, by kernel column
    /// (`None` for absent paths) — the anchor fault injection uses to
    /// address individual weight lines inside the netlist.
    weight_nodes: Vec<Option<usize>>,
}

/// The optimizer side of a compiled engine: one optimized netlist per
/// cycle slot (each carrying the sharing map back to the unoptimized
/// [`CycleCircuit`] it was compiled from), plus the static census of the
/// pass pipeline.
#[derive(Debug, Clone)]
struct GateOptInfo {
    /// `slots[kernel][rail][ky]`, parallel to `GateEngine::cycles`.
    slots: Vec<Vec<Vec<Optimized>>>,
    summary: GateOptSummary,
}

/// Static optimizer census for one compiled engine (DESIGN.md §5.16).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateOptSummary {
    /// Gates across all unoptimized cycle netlists.
    pub gates_pre: usize,
    /// Gates across the optimized netlists, counting structurally
    /// identical (deduplicated) netlists once.
    pub gates_post: usize,
    /// Gates folded to constants or collapsed onto surviving wires.
    pub folded: usize,
    /// Gates merged into an identical gate by hash-consing.
    pub shared: usize,
    /// Gates dropped as unreachable from the output.
    pub dead: usize,
    /// Cycle netlists compiled.
    pub netlists: usize,
    /// Netlists that deduplicated onto an earlier identical one.
    pub netlists_deduped: usize,
}

impl GateOptSummary {
    /// Fraction of gates removed by the pipeline, `0.0..=1.0`.
    pub fn reduction(&self) -> f64 {
        if self.gates_pre == 0 {
            return 0.0;
        }
        1.0 - (self.gates_post as f64 / self.gates_pre as f64)
    }
}

/// Dynamic evaluation counters for one frame run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateRunStats {
    /// Cycle-netlist evaluations (windows × rows × rails).
    pub cycle_evals: u64,
    /// Individual gate evaluations performed. The event-driven path
    /// counts only gates whose fan-in changed; the full sweep counts
    /// every gate of every evaluation.
    pub gate_evals: u64,
}

/// The gate-level engine compiled from an [`Architecture`].
#[derive(Debug, Clone)]
pub struct GateEngine {
    /// `cycles[kernel][rail][ky]` — one netlist per kernel row per rail.
    /// Always compiled, optimizer or not: the unoptimized netlists are
    /// the golden reference and carry the node indices fault maps use.
    cycles: Vec<Vec<Vec<CycleCircuit>>>,
    /// The subtraction netlist, if any kernel is split.
    nlde: Option<(Circuit, f64)>,
    /// Rails per kernel, mirroring the delay kernels.
    rails: Vec<Vec<Rail>>,
    /// Optimized netlists + event-driven evaluation, when enabled.
    opt: Option<GateOptInfo>,
}

impl GateEngine {
    /// Compiles every cycle datapath of `arch` into race-logic netlists,
    /// runs the optimizer pass pipeline over them, and sets up
    /// event-driven evaluation. Output values are bit-identical to
    /// [`GateEngine::compile_unoptimized`] in every mode, clean and
    /// faulty.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (the architecture was
    /// already validated at construction).
    pub fn compile(arch: &Architecture) -> Self {
        Self::compile_with(arch, true)
    }

    /// Compiles without the optimizer: every netlist keeps its built
    /// structure and every evaluation is a full sweep. The golden
    /// reference the optimized engine is pinned against.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations.
    pub fn compile_unoptimized(arch: &Architecture) -> Self {
        Self::compile_with(arch, false)
    }

    fn compile_with(arch: &Architecture, optimizer: bool) -> Self {
        let terms: Vec<TermPair> = arch.nlse_unit().approx().terms().to_vec();
        let k = arch.nlse_unit().latency_units();
        let kw = arch.desc().kernel_width();

        let mut cycles = Vec::new();
        let mut rails = Vec::new();
        for dk in arch.delay_kernels() {
            let mut per_rail = Vec::new();
            for &rail in dk.rails() {
                let mut per_row = Vec::new();
                for ky in 0..dk.height() {
                    per_row.push(compile_cycle(dk, rail, ky, kw, &terms, k));
                }
                per_rail.push(per_row);
            }
            cycles.push(per_rail);
            rails.push(dk.rails().to_vec());
        }

        let nlde = arch.nlde_unit().map(|unit| {
            let nk = unit.latency_units();
            let c = blocks::nlde_circuit(unit.approx().terms(), nk)
                .expect("fitted constants are realisable");
            (c, nk)
        });

        let truncate_at = arch.schedule().cycle_units;
        let opt = optimizer.then(|| build_opt(&cycles, truncate_at));
        if let Some(info) = &opt {
            crate::census::publish_gate_opt_compile(
                info.summary.gates_pre as u64,
                info.summary.gates_post as u64,
            );
        }

        GateEngine {
            cycles,
            nlde,
            rails,
            opt,
        }
    }

    /// The optimizer's static census, if this engine was compiled with
    /// the pass pipeline enabled.
    pub fn opt_summary(&self) -> Option<GateOptSummary> {
        self.opt.as_ref().map(|o| o.summary)
    }

    /// Executes one frame through the compiled netlists (ideal delay
    /// elements), producing decoded importance-space outputs — the
    /// gate-level equivalent of `exec::run` in `DelayApprox` mode.
    ///
    /// With the optimizer enabled (the [`GateEngine::compile`] default)
    /// this takes the event-driven path; the outputs are bit-identical to
    /// the full-sweep path either way.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DimensionMismatch`] if the image does not
    /// match the compiled geometry.
    pub fn run(&self, arch: &Architecture, image: &Image) -> Result<Vec<Image>, ExecError> {
        Ok(self.run_counted(arch, image)?.0)
    }

    /// [`GateEngine::run`], also returning the frame's evaluation
    /// counters — the instrumented entry point benches and profiling use.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DimensionMismatch`] if the image does not
    /// match the compiled geometry.
    pub fn run_counted(
        &self,
        arch: &Architecture,
        image: &Image,
    ) -> Result<(Vec<Image>, GateRunStats), ExecError> {
        let desc = arch.desc();
        if (image.width(), image.height()) != (desc.image_width(), desc.image_height()) {
            return Err(ExecError::DimensionMismatch {
                expected: (desc.image_width(), desc.image_height()),
                got: (image.width(), image.height()),
            });
        }
        match &self.opt {
            Some(info) => self.run_optimized(arch, image, info),
            None => self.run_sweep(arch, image),
        }
    }

    /// The unoptimized full-sweep frame run — the golden reference path.
    fn run_sweep(
        &self,
        arch: &Architecture,
        image: &Image,
    ) -> Result<(Vec<Image>, GateRunStats), ExecError> {
        let desc = arch.desc();
        let stride = desc.stride();
        let (ow, oh) = desc.output_dims();
        let kw = desc.kernel_width();
        let kh = desc.kernel_height();
        let truncate_at = arch.schedule().cycle_units;
        let vtc = arch.vtc();
        let mut span = ta_telemetry::tracer().span("gate_engine.run");
        let mut cycle_evals: u64 = 0;
        let mut nlde_evals: u64 = 0;
        let mut gate_evals: u64 = 0;

        let mut outputs = Vec::with_capacity(self.cycles.len());
        for (k_idx, per_rail) in self.cycles.iter().enumerate() {
            let shift = arch.output_shift_units(k_idx, true);
            let mut out = Image::zeros(ow, oh);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut rail_raw = [DelayValue::ZERO; 2];
                    for (r_i, per_row) in per_rail.iter().enumerate() {
                        let mut partial = DelayValue::ZERO;
                        for (ky, cycle) in per_row.iter().enumerate() {
                            // Inputs: kw pixels, the partial, the never
                            // feed, and the frame-boundary reference edge
                            // gating late arrivals (ε keeps the inhibit's
                            // strict comparison aligned with the
                            // functional engine's inclusive one).
                            let mut inputs = Vec::with_capacity(kw + 3);
                            for kx in 0..kw {
                                let p = vtc
                                    .convert_ideal(image.get(ox * stride + kx, oy * stride + ky));
                                inputs.push(p);
                            }
                            inputs.push(partial);
                            inputs.push(DelayValue::ZERO);
                            inputs.push(DelayValue::from_delay(truncate_at + 1e-9));
                            cycle_evals += 1;
                            gate_evals +=
                                (cycle.circuit.node_count() - cycle.circuit.input_count()) as u64;
                            let raw = cycle
                                .circuit
                                .evaluate(&inputs)
                                .expect("compiled arity matches")[0];
                            partial = if ky + 1 < kh {
                                if raw.is_never() {
                                    raw
                                } else {
                                    // The loop delay line: value preserved,
                                    // tree latency cancelled (§3).
                                    raw.delayed(-cycle.tree_shift)
                                }
                            } else {
                                raw
                            };
                        }
                        rail_raw[r_i] = partial;
                    }
                    if self.rails[k_idx].len() == 2 {
                        nlde_evals += 1;
                    }
                    let value = self.combine(&self.rails[k_idx], rail_raw, shift);
                    out.set(ox, oy, value);
                }
            }
            outputs.push(out);
        }
        span.add_field("cycle_evals", cycle_evals);
        span.add_field("nlde_evals", nlde_evals);
        drop(span);
        crate::census::publish_gate(cycle_evals, nlde_evals);
        Ok((
            outputs,
            GateRunStats {
                cycle_evals,
                gate_evals,
            },
        ))
    }

    /// The event-driven frame run over the optimized netlists. Pixel
    /// readout is hoisted to once per frame (`convert_ideal` is pure, so
    /// sharing the converted edge across windows is bit-identical to the
    /// sweep path's per-window readout), each cycle slot keeps a
    /// persistent [`EventSim`] so only gates whose fan-in changed since
    /// the previous window re-evaluate, and the per-pixel nLDE renorm
    /// runs through a persistent [`EventSim`] as well (with the decode
    /// scale factors hoisted out of the scan — `exp` is deterministic, so
    /// computing each scale once per kernel is bit-identical to once per
    /// pixel).
    fn run_optimized(
        &self,
        arch: &Architecture,
        image: &Image,
        info: &GateOptInfo,
    ) -> Result<(Vec<Image>, GateRunStats), ExecError> {
        let desc = arch.desc();
        let stride = desc.stride();
        let (ow, oh) = desc.output_dims();
        let kw = desc.kernel_width();
        let kh = desc.kernel_height();
        let truncate_at = arch.schedule().cycle_units;
        let vtc = arch.vtc();
        let mut span = ta_telemetry::tracer().span("gate_engine.run_opt");
        let mut cycle_evals: u64 = 0;
        let mut nlde_evals: u64 = 0;

        let img_w = image.width();
        let pixel_delays: Vec<DelayValue> = image
            .pixels()
            .iter()
            .map(|&p| vtc.convert_ideal(p))
            .collect();

        let never = DelayValue::ZERO;
        let boundary = DelayValue::from_delay(truncate_at + 1e-9);
        let mut sims: Vec<Vec<Vec<EventSim>>> = info
            .slots
            .iter()
            .map(|per_rail| {
                per_rail
                    .iter()
                    .map(|rows| rows.iter().map(Optimized::event_sim).collect())
                    .collect()
            })
            .collect();
        let mut nlde_sim = self.nlde.as_ref().map(|(c, _)| EventSim::new(c));
        let mut inputs: Vec<DelayValue> = vec![never; kw + 3];
        inputs[kw + 2] = boundary;

        let mut outputs = Vec::with_capacity(self.cycles.len());
        for (k_idx, per_rail) in info.slots.iter().enumerate() {
            let shift = arch.output_shift_units(k_idx, true);
            let decode_scale = shift.exp();
            let nlde_scale = self.nlde.as_ref().map(|(_, nk)| (shift + nk).exp());
            let single_rail = self.rails[k_idx].len() == 1;
            let mut out = Image::zeros(ow, oh);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut rail_raw = [DelayValue::ZERO; 2];
                    let sims_k = &mut sims[k_idx];
                    for (r_i, per_row) in per_rail.iter().enumerate() {
                        let row_cycles = &self.cycles[k_idx][r_i];
                        let sims_r = &mut sims_k[r_i];
                        let mut partial = DelayValue::ZERO;
                        for (ky, slot) in per_row.iter().enumerate() {
                            let row = (oy * stride + ky) * img_w + ox * stride;
                            inputs[..kw].copy_from_slice(&pixel_delays[row..row + kw]);
                            inputs[kw] = partial;
                            cycle_evals += 1;
                            let raw = match slot.const_output(0) {
                                Some(v) => v,
                                None => sims_r[ky]
                                    .eval_one(&inputs)
                                    .expect("compiled arity matches"),
                            };
                            let tree_shift = row_cycles[ky].tree_shift;
                            partial = if ky + 1 < kh {
                                if raw.is_never() {
                                    raw
                                } else {
                                    raw.delayed(-tree_shift)
                                }
                            } else {
                                raw
                            };
                        }
                        rail_raw[r_i] = partial;
                    }
                    let value = if single_rail {
                        rail_raw[0].decode() * decode_scale
                    } else {
                        nlde_evals += 1;
                        let sim = nlde_sim
                            .as_mut()
                            .expect("split kernels carry an nLDE netlist");
                        let (pos, neg) = (rail_raw[0], rail_raw[1]);
                        let (minuend, subtrahend, sign) = if pos <= neg {
                            (pos, neg, 1.0)
                        } else {
                            (neg, pos, -1.0)
                        };
                        let diff = sim
                            .eval_one(&[minuend, subtrahend])
                            .expect("two-input netlist");
                        sign * diff.decode()
                            * nlde_scale.expect("split kernels carry an nLDE netlist")
                    };
                    out.set(ox, oy, value);
                }
            }
            outputs.push(out);
        }
        let gate_evals: u64 = sims
            .iter()
            .flatten()
            .flatten()
            .map(|sim| sim.events())
            .sum();
        span.add_field("cycle_evals", cycle_evals);
        span.add_field("nlde_evals", nlde_evals);
        span.add_field("gate_evals", gate_evals);
        drop(span);
        crate::census::publish_gate(cycle_evals, nlde_evals);
        crate::census::publish_gate_events(gate_evals);
        Ok((
            outputs,
            GateRunStats {
                cycle_evals,
                gate_evals,
            },
        ))
    }

    /// Executes one frame with *noisy* delay elements: every delay gate in
    /// every netlist is jittered through the architecture's RJ model via
    /// the race-logic simulator's [`DelayPerturb`] hook (PSIJ, being
    /// common-mode per evaluation, is sampled once per cycle netlist and
    /// folded into the same hook).
    ///
    /// The functional engine's noisy mode consumes randomness in a
    /// different order, so outputs are not bit-identical — tests compare
    /// error statistics instead.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DimensionMismatch`] if the image does not
    /// match the compiled geometry.
    ///
    /// [`DelayPerturb`]: ta_race_logic::DelayPerturb
    pub fn run_noisy(
        &self,
        arch: &Architecture,
        image: &Image,
        seed: u64,
    ) -> Result<Vec<Image>, ExecError> {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let desc = arch.desc();
        if (image.width(), image.height()) != (desc.image_width(), desc.image_height()) {
            return Err(ExecError::DimensionMismatch {
                expected: (desc.image_width(), desc.image_height()),
                got: (image.width(), image.height()),
            });
        }
        let cfg = arch.cfg();
        let stride = desc.stride();
        let (ow, oh) = desc.output_dims();
        let kw = desc.kernel_width();
        let kh = desc.kernel_height();
        let truncate_at = arch.schedule().cycle_units;
        let vtc = arch.vtc();
        let mut span = ta_telemetry::tracer().span("gate_engine.run_noisy");
        let mut cycle_evals: u64 = 0;
        let mut nlde_evals: u64 = 0;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6a7e_0e19);

        // Pixel readout once per frame, with VTC noise. One sampler,
        // reset inside `convert_with` per pixel, replaces the
        // per-pixel `NormalSampler` construction without perturbing the
        // RNG draw order.
        let mut sampler = ta_race_logic::NormalSampler::new();
        let pixel_delays: Vec<DelayValue> = image
            .pixels()
            .iter()
            .map(|&p| vtc.convert_with(p, &mut rng, &mut sampler))
            .collect();
        let pixel_at = |x: usize, y: usize| -> DelayValue { pixel_delays[y * image.width() + x] };

        let mut outputs = Vec::with_capacity(self.cycles.len());
        for (k_idx, per_rail) in self.cycles.iter().enumerate() {
            let shift = arch.output_shift_units(k_idx, true);
            let mut out = Image::zeros(ow, oh);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut rail_raw = [DelayValue::ZERO; 2];
                    for (r_i, per_row) in per_rail.iter().enumerate() {
                        let mut partial = DelayValue::ZERO;
                        for (ky, cycle) in per_row.iter().enumerate() {
                            let mut inputs = Vec::with_capacity(kw + 3);
                            for kx in 0..kw {
                                inputs.push(pixel_at(ox * stride + kx, oy * stride + ky));
                            }
                            inputs.push(partial);
                            inputs.push(DelayValue::ZERO);
                            inputs.push(DelayValue::from_delay(truncate_at + 1e-9));
                            // One realization per cycle: common-mode PSIJ
                            // covers the netlist and the loop line alike.
                            let realization = cfg.noise.begin_eval(cfg.unit, &mut rng);
                            let mut hook = PerturbHook {
                                realization,
                                rng: &mut rng,
                            };
                            cycle_evals += 1;
                            let raw = cycle
                                .circuit
                                .evaluate_noisy(&inputs, &mut hook)
                                .expect("compiled arity matches")[0];
                            partial = if ky + 1 < kh {
                                if raw.is_never() {
                                    raw
                                } else {
                                    let loop_delay = arch.schedule().loop_delay_units;
                                    let jitter = realization.perturb_units(loop_delay, &mut rng)
                                        - loop_delay;
                                    raw.delayed(jitter - cycle.tree_shift)
                                }
                            } else {
                                raw
                            };
                        }
                        rail_raw[r_i] = partial;
                    }
                    if self.rails[k_idx].len() == 2 {
                        nlde_evals += 1;
                    }
                    let value = self.combine(&self.rails[k_idx], rail_raw, shift);
                    out.set(ox, oy, value);
                }
            }
            outputs.push(out);
        }
        span.add_field("cycle_evals", cycle_evals);
        span.add_field("nlde_evals", nlde_evals);
        drop(span);
        crate::census::publish_gate(cycle_evals, nlde_evals);
        Ok(outputs)
    }

    /// Executes one frame with the given faults lowered onto the compiled
    /// netlists (ideal delay elements otherwise) — the gate-level
    /// counterpart of [`crate::exec::run_faulty`] in `DelayApprox` mode.
    /// Both engines lower one [`FaultMap`] the same way, so they must
    /// still agree under injection; with an empty map the outputs are
    /// bit-identical to [`GateEngine::run`].
    ///
    /// Returns the decoded outputs together with the run's
    /// [`FaultStats`]. The *values* match the functional engine; the
    /// counters may differ (this engine re-reads faulted pixels per
    /// window instead of once per frame).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DimensionMismatch`] if the image does not
    /// match the compiled geometry.
    pub fn run_faulty(
        &self,
        arch: &Architecture,
        image: &Image,
        faults: &FaultMap,
    ) -> Result<(Vec<Image>, FaultStats), ExecError> {
        let desc = arch.desc();
        if (image.width(), image.height()) != (desc.image_width(), desc.image_height()) {
            return Err(ExecError::DimensionMismatch {
                expected: (desc.image_width(), desc.image_height()),
                got: (image.width(), image.height()),
            });
        }
        if let Some(info) = &self.opt {
            // Lower each slot's plan through its sharing map. Engine
            // fault classes always lower cleanly (weight lines survive
            // as physical gates, drift on folded never-paths drops); the
            // sweep fallback is defensive, for plans the map rejects.
            if let Some(lowered) = self.lower_all(info, faults) {
                return self.run_faulty_opt(arch, image, faults, info, &lowered);
            }
        }
        self.run_faulty_sweep(arch, image, faults)
    }

    /// Lowers the fault map onto every optimized slot, or `None` if any
    /// slot's sharing map rejects its plan.
    fn lower_all(&self, info: &GateOptInfo, faults: &FaultMap) -> Option<Vec<Vec<Vec<FaultPlan>>>> {
        let mut all = Vec::with_capacity(self.cycles.len());
        for (k_idx, per_rail) in self.cycles.iter().enumerate() {
            let mut rails_v = Vec::with_capacity(per_rail.len());
            for (r_i, per_row) in per_rail.iter().enumerate() {
                let rail = self.rails[k_idx][r_i];
                let mut rows_v = Vec::with_capacity(per_row.len());
                for (ky, cycle) in per_row.iter().enumerate() {
                    let plan = cycle_plan(cycle, faults, k_idx, rail, ky);
                    let lowered = info.slots[k_idx][r_i][ky].map().lower_plan(&plan).ok()?;
                    rows_v.push(lowered);
                }
                rails_v.push(rows_v);
            }
            all.push(rails_v);
        }
        Some(all)
    }

    /// Event-driven faulty run: like [`GateEngine::run_optimized`], with
    /// the lowered plans baked into each slot's [`EventSim`]. Output
    /// values are bit-identical to the sweep path; the stats *counters*
    /// tally fault applications actually performed, which event skipping
    /// makes ≤ the sweep path's per-evaluation totals (an empty map still
    /// observes exactly nothing).
    #[allow(clippy::too_many_lines)]
    fn run_faulty_opt(
        &self,
        arch: &Architecture,
        image: &Image,
        faults: &FaultMap,
        info: &GateOptInfo,
        lowered: &[Vec<Vec<FaultPlan>>],
    ) -> Result<(Vec<Image>, FaultStats), ExecError> {
        let desc = arch.desc();
        let stride = desc.stride();
        let (ow, oh) = desc.output_dims();
        let kw = desc.kernel_width();
        let kh = desc.kernel_height();
        let truncate_at = arch.schedule().cycle_units;
        let loop_delay = arch.schedule().loop_delay_units;
        let vtc = arch.vtc();
        let mut span = ta_telemetry::tracer().span("gate_engine.run_faulty_opt");
        let mut cycle_evals: u64 = 0;
        let mut nlde_evals: u64 = 0;
        let mut stats = FaultStats {
            sites_injected: faults.len(),
            ..FaultStats::default()
        };

        // Pixel readout once per frame: the faulted VTC edge is shared by
        // every window reading the pixel, as in the functional engine.
        let img_w = image.width();
        let pixel_delays: Vec<DelayValue> = image
            .pixels()
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let v = vtc.convert_ideal(p);
                match faults.pixel_fault(i % img_w, i / img_w) {
                    None => v,
                    Some(fault) => {
                        let mut obs = FaultObservation::default();
                        let v = fault.apply(v, &mut obs);
                        stats.absorb_observation(obs);
                        v
                    }
                }
            })
            .collect();

        let nlde_plans: Vec<Option<FaultPlan>> = self
            .cycles
            .iter()
            .enumerate()
            .map(|(k_idx, _)| {
                let fraction = faults.nlde_drift(k_idx)?;
                let (circuit, _) = self.nlde.as_ref()?;
                let mut plan = FaultPlan::new();
                for (idx, _) in circuit.delay_elements() {
                    plan.set_delay_drift(idx, fraction);
                }
                Some(plan)
            })
            .collect();

        let never = DelayValue::ZERO;
        let boundary = DelayValue::from_delay(truncate_at + 1e-9);
        let mut sims: Vec<Vec<Vec<EventSim>>> = info
            .slots
            .iter()
            .enumerate()
            .map(|(k_idx, per_rail)| {
                per_rail
                    .iter()
                    .enumerate()
                    .map(|(r_i, rows)| {
                        rows.iter()
                            .enumerate()
                            .map(|(ky, s)| {
                                EventSim::with_plan(s.circuit(), &lowered[k_idx][r_i][ky])
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut inputs: Vec<DelayValue> = Vec::with_capacity(kw + 3);

        let mut outputs = Vec::with_capacity(self.cycles.len());
        for (k_idx, per_rail) in info.slots.iter().enumerate() {
            let shift = arch.output_shift_units(k_idx, true);
            let mut out = Image::zeros(ow, oh);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut rail_raw = [DelayValue::ZERO; 2];
                    for (r_i, per_row) in per_rail.iter().enumerate() {
                        let rail = self.rails[k_idx][r_i];
                        let mut partial = DelayValue::ZERO;
                        for (ky, slot) in per_row.iter().enumerate() {
                            inputs.clear();
                            let row = (oy * stride + ky) * img_w + ox * stride;
                            inputs.extend_from_slice(&pixel_delays[row..row + kw]);
                            inputs.push(partial);
                            inputs.push(never);
                            inputs.push(boundary);
                            cycle_evals += 1;
                            let raw = match slot.const_output(0) {
                                Some(v) => v,
                                None => sims[k_idx][r_i][ky]
                                    .eval(&inputs)
                                    .expect("compiled arity matches")[0],
                            };
                            let tree_shift = self.cycles[k_idx][r_i][ky].tree_shift;
                            partial = if ky + 1 < kh {
                                if raw.is_never() {
                                    raw
                                } else {
                                    match faults.loop_drift(k_idx, rail) {
                                        None => raw.delayed(-tree_shift),
                                        Some(fraction) => {
                                            let excess = if 1.0 + fraction < 0.0 {
                                                stats.saturations += 1;
                                                -loop_delay
                                            } else {
                                                loop_delay * fraction
                                            };
                                            raw.delayed(excess - tree_shift)
                                        }
                                    }
                                }
                            } else {
                                raw
                            };
                        }
                        rail_raw[r_i] = partial;
                    }
                    if self.rails[k_idx].len() == 2 {
                        nlde_evals += 1;
                    }
                    let value = self.combine_faulty(
                        &self.rails[k_idx],
                        rail_raw,
                        shift,
                        nlde_plans[k_idx].as_ref(),
                        &mut stats,
                    );
                    out.set(ox, oy, value);
                }
            }
            outputs.push(out);
        }
        let mut gate_evals: u64 = 0;
        for sim in sims.iter_mut().flatten().flatten() {
            gate_evals += sim.events();
            stats.absorb_observation(sim.take_observation());
        }
        span.add_field("cycle_evals", cycle_evals);
        span.add_field("gate_evals", gate_evals);
        span.add_field("edges_faulted", stats.edges_faulted);
        drop(span);
        crate::census::publish_gate(cycle_evals, nlde_evals);
        crate::census::publish_gate_events(gate_evals);
        Ok((outputs, stats))
    }

    /// The unoptimized full-sweep faulty run — the golden reference path.
    fn run_faulty_sweep(
        &self,
        arch: &Architecture,
        image: &Image,
        faults: &FaultMap,
    ) -> Result<(Vec<Image>, FaultStats), ExecError> {
        let desc = arch.desc();
        let stride = desc.stride();
        let (ow, oh) = desc.output_dims();
        let kw = desc.kernel_width();
        let kh = desc.kernel_height();
        let truncate_at = arch.schedule().cycle_units;
        let loop_delay = arch.schedule().loop_delay_units;
        let vtc = arch.vtc();
        let mut span = ta_telemetry::tracer().span("gate_engine.run_faulty");
        let mut cycle_evals: u64 = 0;
        let mut nlde_evals: u64 = 0;
        let mut stats = FaultStats {
            sites_injected: faults.len(),
            ..FaultStats::default()
        };

        // Pixel readout once per frame: the faulted VTC edge is shared by
        // every window reading the pixel, as in the functional engine.
        let img_w = image.width();
        let pixel_delays: Vec<DelayValue> = image
            .pixels()
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let v = vtc.convert_ideal(p);
                match faults.pixel_fault(i % img_w, i / img_w) {
                    None => v,
                    Some(fault) => {
                        let mut obs = FaultObservation::default();
                        let v = fault.apply(v, &mut obs);
                        stats.absorb_observation(obs);
                        v
                    }
                }
            })
            .collect();
        let pixel_at = |x: usize, y: usize| -> DelayValue { pixel_delays[y * image.width() + x] };

        // Lower the map onto each cycle netlist once up front.
        let plans: Vec<Vec<Vec<FaultPlan>>> = self
            .cycles
            .iter()
            .enumerate()
            .map(|(k_idx, per_rail)| {
                per_rail
                    .iter()
                    .enumerate()
                    .map(|(r_i, per_row)| {
                        let rail = self.rails[k_idx][r_i];
                        per_row
                            .iter()
                            .enumerate()
                            .map(|(ky, cycle)| cycle_plan(cycle, faults, k_idx, rail, ky))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let nlde_plans: Vec<Option<FaultPlan>> = self
            .cycles
            .iter()
            .enumerate()
            .map(|(k_idx, _)| {
                let fraction = faults.nlde_drift(k_idx)?;
                let (circuit, _) = self.nlde.as_ref()?;
                let mut plan = FaultPlan::new();
                for (idx, _) in circuit.delay_elements() {
                    plan.set_delay_drift(idx, fraction);
                }
                Some(plan)
            })
            .collect();

        let mut outputs = Vec::with_capacity(self.cycles.len());
        for (k_idx, per_rail) in self.cycles.iter().enumerate() {
            let shift = arch.output_shift_units(k_idx, true);
            let mut out = Image::zeros(ow, oh);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut rail_raw = [DelayValue::ZERO; 2];
                    for (r_i, per_row) in per_rail.iter().enumerate() {
                        let rail = self.rails[k_idx][r_i];
                        let mut partial = DelayValue::ZERO;
                        for (ky, cycle) in per_row.iter().enumerate() {
                            let mut inputs = Vec::with_capacity(kw + 3);
                            for kx in 0..kw {
                                inputs.push(pixel_at(ox * stride + kx, oy * stride + ky));
                            }
                            inputs.push(partial);
                            inputs.push(DelayValue::ZERO);
                            inputs.push(DelayValue::from_delay(truncate_at + 1e-9));
                            let plan = &plans[k_idx][r_i][ky];
                            cycle_evals += 1;
                            let raw = if plan.is_empty() {
                                cycle
                                    .circuit
                                    .evaluate(&inputs)
                                    .expect("compiled arity matches")[0]
                            } else {
                                let (outs, obs) = cycle
                                    .circuit
                                    .evaluate_faulty(&inputs, &mut NoNoise, plan)
                                    .expect("compiled arity matches");
                                stats.absorb_observation(obs);
                                outs[0]
                            };
                            partial = if ky + 1 < kh {
                                if raw.is_never() {
                                    raw
                                } else {
                                    match faults.loop_drift(k_idx, rail) {
                                        None => raw.delayed(-cycle.tree_shift),
                                        Some(fraction) => {
                                            // The drifted loop line realises
                                            // loop_delay × (1 + fraction);
                                            // the reference-frame shift
                                            // still cancels the nominal.
                                            let excess = if 1.0 + fraction < 0.0 {
                                                stats.saturations += 1;
                                                -loop_delay
                                            } else {
                                                loop_delay * fraction
                                            };
                                            raw.delayed(excess - cycle.tree_shift)
                                        }
                                    }
                                }
                            } else {
                                raw
                            };
                        }
                        rail_raw[r_i] = partial;
                    }
                    if self.rails[k_idx].len() == 2 {
                        nlde_evals += 1;
                    }
                    let value = self.combine_faulty(
                        &self.rails[k_idx],
                        rail_raw,
                        shift,
                        nlde_plans[k_idx].as_ref(),
                        &mut stats,
                    );
                    out.set(ox, oy, value);
                }
            }
            outputs.push(out);
        }
        span.add_field("cycle_evals", cycle_evals);
        span.add_field("edges_faulted", stats.edges_faulted);
        drop(span);
        crate::census::publish_gate(cycle_evals, nlde_evals);
        Ok((outputs, stats))
    }

    fn combine_faulty(
        &self,
        rails: &[Rail],
        rail_raw: [DelayValue; 2],
        shift: f64,
        nlde_plan: Option<&FaultPlan>,
        stats: &mut FaultStats,
    ) -> f64 {
        if rails.len() == 1 {
            return rail_raw[0].decode() * shift.exp();
        }
        let (pos, neg) = (rail_raw[0], rail_raw[1]);
        let (minuend, subtrahend, sign) = if pos <= neg {
            (pos, neg, 1.0)
        } else {
            (neg, pos, -1.0)
        };
        let (circuit, nk) = self
            .nlde
            .as_ref()
            .expect("split kernels carry an nLDE netlist");
        let diff = match nlde_plan {
            None => circuit
                .evaluate(&[minuend, subtrahend])
                .expect("two-input netlist")[0],
            Some(plan) => {
                let (outs, obs) = circuit
                    .evaluate_faulty(&[minuend, subtrahend], &mut NoNoise, plan)
                    .expect("two-input netlist");
                stats.absorb_observation(obs);
                outs[0]
            }
        };
        // The decoder's shift stays nominal even under drift, mirroring
        // the functional engine's fixed readout.
        sign * diff.decode() * (shift + nk).exp()
    }

    fn combine(&self, rails: &[Rail], rail_raw: [DelayValue; 2], shift: f64) -> f64 {
        if rails.len() == 1 {
            return rail_raw[0].decode() * shift.exp();
        }
        let (pos, neg) = (rail_raw[0], rail_raw[1]);
        let (minuend, subtrahend, sign) = if pos <= neg {
            (pos, neg, 1.0)
        } else {
            (neg, pos, -1.0)
        };
        let (circuit, nk) = self
            .nlde
            .as_ref()
            .expect("split kernels carry an nLDE netlist");
        let diff = circuit
            .evaluate(&[minuend, subtrahend])
            .expect("two-input netlist")[0];
        sign * diff.decode() * (shift + nk).exp()
    }
}

/// Adapts the architecture's noise realization to the race-logic
/// simulator's per-delay-element hook.
struct PerturbHook<'a> {
    realization: ta_circuits::NoiseRealization,
    rng: &'a mut rand::rngs::SmallRng,
}

impl ta_race_logic::DelayPerturb for PerturbHook<'_> {
    fn perturb(&mut self, nominal: f64) -> f64 {
        self.realization.perturb_units(nominal, self.rng)
    }
}

/// Runs the optimizer pass pipeline over every compiled cycle netlist,
/// declaring the two constant feeds (the always-never input and the
/// frame-boundary reference edge) so folding can propagate them, and
/// dedupes structurally identical optimized netlists across slots —
/// repeated kernel rows are one piece of physical hardware, so the area
/// census counts them once.
fn build_opt(cycles: &[Vec<Vec<CycleCircuit>>], truncate_at: f64) -> GateOptInfo {
    let boundary = DelayValue::from_delay(truncate_at + 1e-9);
    let mut summary = GateOptSummary::default();
    let mut reps: Vec<(u64, Optimized)> = Vec::new();
    let mut slots = Vec::with_capacity(cycles.len());
    for per_rail in cycles {
        let mut rails_v = Vec::with_capacity(per_rail.len());
        for per_row in per_rail {
            let mut rows_v = Vec::with_capacity(per_row.len());
            for cycle in per_row {
                let n_inputs = cycle.circuit.input_count();
                let mut consts = vec![None; n_inputs];
                consts[n_inputs - 2] = Some(DelayValue::ZERO);
                consts[n_inputs - 1] = Some(boundary);
                let optimized =
                    optimize(&cycle.circuit, &consts).expect("compiled netlists optimize cleanly");
                let st = optimized.stats();
                summary.gates_pre += st.gates_pre;
                summary.folded += st.folded;
                summary.shared += st.shared;
                summary.dead += st.dead;
                summary.netlists += 1;
                let fp = optimized.fingerprint();
                let is_dup = reps
                    .iter()
                    .any(|(f, rep)| *f == fp && rep.structurally_equal(&optimized));
                if is_dup {
                    summary.netlists_deduped += 1;
                } else {
                    summary.gates_post += st.gates_post;
                    reps.push((fp, optimized.clone()));
                }
                rows_v.push(optimized);
            }
            rails_v.push(rows_v);
        }
        slots.push(rails_v);
    }
    GateOptInfo { slots, summary }
}

/// Builds one cycle's netlist: weight delays on the firing columns feed a
/// path-balanced nLSE tree together with the recurrent partial. Each
/// weighted leaf is gated by an inhibit cell against the frame-boundary
/// reference edge — the hardware form of §2's "less important
/// contributions can be truncated at any time" (edges landing past the
/// next reference frame never enter the tree).
fn compile_cycle(
    dk: &crate::transform::DelayKernel,
    rail: Rail,
    ky: usize,
    kw: usize,
    terms: &[TermPair],
    k: f64,
) -> CycleCircuit {
    let mut b = CircuitBuilder::new();
    let pixels: Vec<_> = (0..kw).map(|kx| b.input(format!("px{kx}"))).collect();
    let partial = b.input("partial");
    let never = b.input("never");
    let boundary = b.input("frame_boundary");

    let mut leaves = Vec::with_capacity(kw + 1);
    let mut weight_nodes = Vec::with_capacity(kw);
    for (kx, &px) in pixels.iter().enumerate() {
        let w = dk.rail_delay(rail, kx, ky);
        if w.is_never() {
            leaves.push(never);
            weight_nodes.push(None);
        } else {
            let weighted = b.delay(px, w.delay());
            weight_nodes.push(Some(weighted.index()));
            leaves.push(b.inhibit(weighted, boundary));
        }
    }
    leaves.push(partial);

    let out = blocks::build_nlse_tree(&mut b, &leaves, terms, k);
    b.output("partial_out", out.node);
    CycleCircuit {
        circuit: b.build().expect("compiled datapaths are valid netlists"),
        tree_shift: out.shift,
        weight_nodes,
    }
}

/// Lowers the architectural fault map onto one cycle netlist: weight-line
/// faults land on the recorded weight delay nodes, and a tree-chain drift
/// lands on every *other* delay element of the netlist — the nLSE taps
/// and path-balancing chains, i.e. the shared tree hardware. An empty
/// result means the netlist evaluates on its fault-free fast path.
fn cycle_plan(
    cycle: &CycleCircuit,
    faults: &FaultMap,
    k_idx: usize,
    rail: Rail,
    ky: usize,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for (kx, node) in cycle.weight_nodes.iter().enumerate() {
        let Some(idx) = node else { continue };
        match faults.weight_fault(k_idx, rail, ky, kx) {
            None => {}
            Some(FaultKind::DelayDrift { fraction }) => plan.set_delay_drift(*idx, fraction),
            Some(kind) => {
                let fault = kind
                    .edge_fault()
                    .expect("non-drift kinds lower to edge faults");
                plan.set_edge_fault(*idx, fault);
            }
        }
    }
    if let Some(fraction) = faults.tree_drift(k_idx, rail) {
        let weight_idx: std::collections::HashSet<usize> =
            cycle.weight_nodes.iter().flatten().copied().collect();
        for (idx, _) in cycle.circuit.delay_elements() {
            if !weight_idx.contains(&idx) {
                plan.set_delay_drift(idx, fraction);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {

    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    use crate::fault::{FaultModel, FaultSite};
    use crate::{exec, ArchConfig, ArithmeticMode, SystemDescription};
    use ta_image::{metrics, synth, Kernel};

    fn check_agreement(kernels: Vec<Kernel>, stride: usize, size: usize, seed: u64) {
        let desc = SystemDescription::new(size, size, kernels, stride).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(size, size, seed);
        let gate_outs = engine.run(&arch, &img).unwrap();
        let functional = exec::run(&arch, &img, ArithmeticMode::DelayApprox, 0).unwrap();
        for (g, f) in gate_outs.iter().zip(&functional.outputs) {
            assert!(
                metrics::rmse(g, f) < 1e-9,
                "gate-level and functional engines diverge: rmse {}",
                metrics::rmse(g, f)
            );
        }
    }

    #[test]
    fn gate_engine_matches_functional_positive_kernel() {
        check_agreement(vec![Kernel::box_filter(3)], 1, 12, 1);
        check_agreement(vec![Kernel::pyr_down_5x5()], 2, 13, 2);
    }

    #[test]
    fn gate_engine_matches_functional_split_kernel() {
        check_agreement(vec![Kernel::sobel_x()], 1, 10, 3);
        check_agreement(vec![Kernel::laplacian()], 1, 10, 4);
    }

    #[test]
    fn gate_engine_matches_functional_multi_kernel() {
        check_agreement(vec![Kernel::sobel_x(), Kernel::sobel_y()], 1, 9, 5);
    }

    #[test]
    fn noisy_gate_engine_tracks_functional_statistics() {
        let size = 16;
        let desc = SystemDescription::new(size, size, vec![Kernel::pyr_down_5x5()], 2).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(size, size, 8);
        let reference = ta_image::conv::convolve(&img, &Kernel::pyr_down_5x5(), 2);

        let gate_outs = engine.run_noisy(&arch, &img, 1).unwrap();
        let gate_err = metrics::normalized_rmse(&gate_outs[0], &reference);
        let functional = exec::run(&arch, &img, ArithmeticMode::DelayApproxNoisy, 1).unwrap();
        let fun_err = metrics::normalized_rmse(&functional.outputs[0], &reference);
        // Same noise model through two simulators: errors agree within a
        // small multiplicative band (different RNG consumption order).
        assert!(gate_err > 0.0 && fun_err > 0.0);
        assert!(
            gate_err < 4.0 * fun_err + 0.02 && fun_err < 4.0 * gate_err + 0.02,
            "gate {gate_err} vs functional {fun_err}"
        );
        // Seeded determinism.
        let again = engine.run_noisy(&arch, &img, 1).unwrap();
        assert_eq!(gate_outs[0], again[0]);
    }

    #[test]
    fn empty_fault_map_is_bit_identical_to_run() {
        let desc = SystemDescription::new(10, 10, vec![Kernel::sobel_x()], 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(10, 10, 6);
        let clean = engine.run(&arch, &img).unwrap();
        let (faulty, stats) = engine.run_faulty(&arch, &img, &FaultMap::new()).unwrap();
        for (a, b) in clean.iter().zip(&faulty) {
            for (pa, pb) in a.pixels().iter().zip(b.pixels()) {
                assert_eq!(pa.to_bits(), pb.to_bits());
            }
        }
        assert_eq!(stats, FaultStats::default());
    }

    #[test]
    fn engines_agree_under_every_fault_class() {
        // One instance of every fault class on a split kernel: both
        // engines lower the same map and must still agree.
        let desc = SystemDescription::new(10, 10, vec![Kernel::sobel_x()], 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(10, 10, 7);
        let mut map = FaultMap::new();
        map.insert(
            FaultSite::WeightLine {
                kernel: 0,
                rail: Rail::Pos,
                ky: 0,
                kx: 2,
            },
            FaultKind::StuckAtNever,
        )
        .unwrap();
        map.insert(
            FaultSite::WeightLine {
                kernel: 0,
                rail: Rail::Neg,
                ky: 1,
                kx: 0,
            },
            FaultKind::DelayDrift { fraction: 0.3 },
        )
        .unwrap();
        map.insert(
            FaultSite::WeightLine {
                kernel: 0,
                rail: Rail::Pos,
                ky: 2,
                kx: 2,
            },
            FaultKind::SpuriousEarly { advance_units: 0.4 },
        )
        .unwrap();
        map.insert(FaultSite::Pixel { x: 4, y: 5 }, FaultKind::StuckAtZero)
            .unwrap();
        map.insert(FaultSite::Pixel { x: 2, y: 7 }, FaultKind::DropEvent)
            .unwrap();
        map.insert(
            FaultSite::TreeChain {
                kernel: 0,
                rail: Rail::Pos,
            },
            FaultKind::DelayDrift { fraction: -0.2 },
        )
        .unwrap();
        map.insert(
            FaultSite::LoopLine {
                kernel: 0,
                rail: Rail::Neg,
            },
            FaultKind::DelayDrift { fraction: 0.15 },
        )
        .unwrap();
        map.insert(
            FaultSite::NldeChain { kernel: 0 },
            FaultKind::DelayDrift { fraction: 0.25 },
        )
        .unwrap();

        let (gate_outs, gate_stats) = engine.run_faulty(&arch, &img, &map).unwrap();
        let functional =
            exec::run_faulty(&arch, &img, ArithmeticMode::DelayApprox, 0, &map).unwrap();
        for (g, f) in gate_outs.iter().zip(&functional.outputs) {
            assert!(
                metrics::rmse(g, f) < 1e-9,
                "engines diverge under injection: rmse {}",
                metrics::rmse(g, f)
            );
        }
        assert!(gate_stats.edges_faulted > 0);
        assert!(functional.fault_stats.edges_faulted > 0);
        // The injection visibly moved the output.
        let clean = engine.run(&arch, &img).unwrap();
        assert!(metrics::rmse(&gate_outs[0], &clean[0]) > 1e-6);
    }

    #[test]
    fn engines_agree_under_sampled_maps() {
        // Campaign-style sampled maps on a single-rail multi-row kernel
        // (loop line + deep tree) and on a split kernel.
        for (kernels, stride, size) in [
            (vec![Kernel::pyr_down_5x5()], 2, 11),
            (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1, 8),
        ] {
            let desc = SystemDescription::new(size, size, kernels, stride).unwrap();
            let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
            let engine = GateEngine::compile(&arch);
            let img = synth::natural_image(size, size, 9);
            for seed in 0..3 {
                let map = FaultModel::with_rate(0.1).unwrap().sample(&arch, seed);
                let (gate_outs, _) = engine.run_faulty(&arch, &img, &map).unwrap();
                let functional =
                    exec::run_faulty(&arch, &img, ArithmeticMode::DelayApprox, 0, &map).unwrap();
                for (g, f) in gate_outs.iter().zip(&functional.outputs) {
                    assert!(
                        metrics::rmse(g, f) < 1e-9,
                        "seed {seed}: engines diverge: rmse {}",
                        metrics::rmse(g, f)
                    );
                }
            }
        }
    }

    #[test]
    fn dimension_mismatch_propagates() {
        let desc = SystemDescription::new(12, 12, vec![Kernel::box_filter(3)], 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(3, 5)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(8, 8, 0);
        assert!(matches!(
            engine.run(&arch, &img),
            Err(ExecError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn compiled_netlists_have_expected_shape() {
        let desc = SystemDescription::new(16, 16, vec![Kernel::sobel_x()], 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(5, 10)).unwrap();
        let engine = GateEngine::compile(&arch);
        // One kernel, two rails, three rows each.
        assert_eq!(engine.cycles.len(), 1);
        assert_eq!(engine.cycles[0].len(), 2);
        assert_eq!(engine.cycles[0][0].len(), 3);
        assert!(engine.nlde.is_some());
        // Each cycle circuit takes kw + partial + never + boundary inputs.
        assert_eq!(engine.cycles[0][0][0].circuit.input_count(), 6);
    }
}
