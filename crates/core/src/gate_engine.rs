//! A gate-level compilation of the convolution engine: the same
//! architecture the functional simulator models, but built out of actual
//! race-logic netlists and executed edge by edge.
//!
//! This is the strongest verification layer in the workspace: the
//! functional simulator (`exec`, fast, used for full evaluations) and the
//! gate-level engine (this module, faithful, used on small frames) are
//! produced from one [`Architecture`] and must agree to floating-point
//! precision — asserted in tests and in `tests/hardware_stack.rs`.
//!
//! One netlist is compiled per (kernel, rail, kernel-row): the circuit of
//! a single recurrence cycle, containing that row's weight delay lines and
//! the accumulation tree (Fig 9's MAC block datapath for one cycle). The
//! recurrence loop is the only piece modelled outside the netlists — a
//! combinational netlist cannot contain its own feedback path; the loop's
//! reference-frame algebra (value preserved, tree latency cancelled, §3)
//! is applied between cycle evaluations exactly as the hardware's loop
//! delay line does.

use ta_delay_space::DelayValue;
use ta_image::Image;
use ta_race_logic::blocks::{self, TermPair};
use ta_race_logic::{Circuit, CircuitBuilder};

use crate::exec::ExecError;
use crate::transform::Rail;
use crate::Architecture;

/// One compiled cycle netlist: the datapath a MAC block evaluates when a
/// given kernel row's pixels arrive.
#[derive(Debug, Clone)]
struct CycleCircuit {
    /// Inputs: `kw` pixel edges, then the recurrent partial, then one
    /// always-never feed for absent weight paths.
    circuit: Circuit,
    /// The tree's uniform output shift for this netlist.
    tree_shift: f64,
}

/// The gate-level engine compiled from an [`Architecture`].
#[derive(Debug, Clone)]
pub struct GateEngine {
    /// `cycles[kernel][rail][ky]` — one netlist per kernel row per rail.
    cycles: Vec<Vec<Vec<CycleCircuit>>>,
    /// The subtraction netlist, if any kernel is split.
    nlde: Option<(Circuit, f64)>,
    /// Rails per kernel, mirroring the delay kernels.
    rails: Vec<Vec<Rail>>,
}

impl GateEngine {
    /// Compiles every cycle datapath of `arch` into race-logic netlists.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (the architecture was
    /// already validated at construction).
    pub fn compile(arch: &Architecture) -> Self {
        let terms: Vec<TermPair> = arch.nlse_unit().approx().terms().to_vec();
        let k = arch.nlse_unit().latency_units();
        let kw = arch.desc().kernel_width();

        let mut cycles = Vec::new();
        let mut rails = Vec::new();
        for dk in arch.delay_kernels() {
            let mut per_rail = Vec::new();
            for &rail in dk.rails() {
                let mut per_row = Vec::new();
                for ky in 0..dk.height() {
                    per_row.push(compile_cycle(dk, rail, ky, kw, &terms, k));
                }
                per_rail.push(per_row);
            }
            cycles.push(per_rail);
            rails.push(dk.rails().to_vec());
        }

        let nlde = arch.nlde_unit().map(|unit| {
            let nk = unit.latency_units();
            let c = blocks::nlde_circuit(unit.approx().terms(), nk)
                .expect("fitted constants are realisable");
            (c, nk)
        });

        GateEngine {
            cycles,
            nlde,
            rails,
        }
    }

    /// Executes one frame through the compiled netlists (ideal delay
    /// elements), producing decoded importance-space outputs — the
    /// gate-level equivalent of `exec::run` in `DelayApprox` mode.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DimensionMismatch`] if the image does not
    /// match the compiled geometry.
    pub fn run(&self, arch: &Architecture, image: &Image) -> Result<Vec<Image>, ExecError> {
        let desc = arch.desc();
        if (image.width(), image.height()) != (desc.image_width(), desc.image_height()) {
            return Err(ExecError::DimensionMismatch {
                expected: (desc.image_width(), desc.image_height()),
                got: (image.width(), image.height()),
            });
        }
        let stride = desc.stride();
        let (ow, oh) = desc.output_dims();
        let kw = desc.kernel_width();
        let kh = desc.kernel_height();
        let truncate_at = arch.schedule().cycle_units;
        let vtc = arch.vtc();

        let mut outputs = Vec::with_capacity(self.cycles.len());
        for (k_idx, per_rail) in self.cycles.iter().enumerate() {
            let shift = arch.output_shift_units(k_idx, true);
            let mut out = Image::zeros(ow, oh);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut rail_raw = [DelayValue::ZERO; 2];
                    for (r_i, per_row) in per_rail.iter().enumerate() {
                        let mut partial = DelayValue::ZERO;
                        for (ky, cycle) in per_row.iter().enumerate() {
                            // Inputs: kw pixels, the partial, the never
                            // feed, and the frame-boundary reference edge
                            // gating late arrivals (ε keeps the inhibit's
                            // strict comparison aligned with the
                            // functional engine's inclusive one).
                            let mut inputs = Vec::with_capacity(kw + 3);
                            for kx in 0..kw {
                                let p = vtc.convert_ideal(
                                    image.get(ox * stride + kx, oy * stride + ky),
                                );
                                inputs.push(p);
                            }
                            inputs.push(partial);
                            inputs.push(DelayValue::ZERO);
                            inputs.push(DelayValue::from_delay(truncate_at + 1e-9));
                            let raw = cycle
                                .circuit
                                .evaluate(&inputs)
                                .expect("compiled arity matches")[0];
                            partial = if ky + 1 < kh {
                                if raw.is_never() {
                                    raw
                                } else {
                                    // The loop delay line: value preserved,
                                    // tree latency cancelled (§3).
                                    raw.delayed(-cycle.tree_shift)
                                }
                            } else {
                                raw
                            };
                        }
                        rail_raw[r_i] = partial;
                    }
                    let value = self.combine(&self.rails[k_idx], rail_raw, shift);
                    out.set(ox, oy, value);
                }
            }
            outputs.push(out);
        }
        Ok(outputs)
    }

    /// Executes one frame with *noisy* delay elements: every delay gate in
    /// every netlist is jittered through the architecture's RJ model via
    /// the race-logic simulator's [`DelayPerturb`] hook (PSIJ, being
    /// common-mode per evaluation, is sampled once per cycle netlist and
    /// folded into the same hook).
    ///
    /// The functional engine's noisy mode consumes randomness in a
    /// different order, so outputs are not bit-identical — tests compare
    /// error statistics instead.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DimensionMismatch`] if the image does not
    /// match the compiled geometry.
    ///
    /// [`DelayPerturb`]: ta_race_logic::DelayPerturb
    pub fn run_noisy(
        &self,
        arch: &Architecture,
        image: &Image,
        seed: u64,
    ) -> Result<Vec<Image>, ExecError> {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let desc = arch.desc();
        if (image.width(), image.height()) != (desc.image_width(), desc.image_height()) {
            return Err(ExecError::DimensionMismatch {
                expected: (desc.image_width(), desc.image_height()),
                got: (image.width(), image.height()),
            });
        }
        let cfg = arch.cfg();
        let stride = desc.stride();
        let (ow, oh) = desc.output_dims();
        let kw = desc.kernel_width();
        let kh = desc.kernel_height();
        let truncate_at = arch.schedule().cycle_units;
        let vtc = arch.vtc();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6a7e_0e19);

        // Pixel readout once per frame, with VTC noise.
        let pixel_delays: Vec<DelayValue> = image
            .pixels()
            .iter()
            .map(|&p| vtc.convert(p, &mut rng))
            .collect();
        let pixel_at =
            |x: usize, y: usize| -> DelayValue { pixel_delays[y * image.width() + x] };

        let mut outputs = Vec::with_capacity(self.cycles.len());
        for (k_idx, per_rail) in self.cycles.iter().enumerate() {
            let shift = arch.output_shift_units(k_idx, true);
            let mut out = Image::zeros(ow, oh);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut rail_raw = [DelayValue::ZERO; 2];
                    for (r_i, per_row) in per_rail.iter().enumerate() {
                        let mut partial = DelayValue::ZERO;
                        for (ky, cycle) in per_row.iter().enumerate() {
                            let mut inputs = Vec::with_capacity(kw + 3);
                            for kx in 0..kw {
                                inputs.push(pixel_at(ox * stride + kx, oy * stride + ky));
                            }
                            inputs.push(partial);
                            inputs.push(DelayValue::ZERO);
                            inputs.push(DelayValue::from_delay(truncate_at + 1e-9));
                            // One realization per cycle: common-mode PSIJ
                            // covers the netlist and the loop line alike.
                            let realization = cfg.noise.begin_eval(cfg.unit, &mut rng);
                            let mut hook = PerturbHook {
                                realization,
                                rng: &mut rng,
                            };
                            let raw = cycle
                                .circuit
                                .evaluate_noisy(&inputs, &mut hook)
                                .expect("compiled arity matches")[0];
                            partial = if ky + 1 < kh {
                                if raw.is_never() {
                                    raw
                                } else {
                                    let loop_delay = arch.schedule().loop_delay_units;
                                    let jitter = realization
                                        .perturb_units(loop_delay, &mut rng)
                                        - loop_delay;
                                    raw.delayed(jitter - cycle.tree_shift)
                                }
                            } else {
                                raw
                            };
                        }
                        rail_raw[r_i] = partial;
                    }
                    let value = self.combine(&self.rails[k_idx], rail_raw, shift);
                    out.set(ox, oy, value);
                }
            }
            outputs.push(out);
        }
        Ok(outputs)
    }

    fn combine(&self, rails: &[Rail], rail_raw: [DelayValue; 2], shift: f64) -> f64 {
        if rails.len() == 1 {
            return rail_raw[0].decode() * shift.exp();
        }
        let (pos, neg) = (rail_raw[0], rail_raw[1]);
        let (minuend, subtrahend, sign) = if pos <= neg {
            (pos, neg, 1.0)
        } else {
            (neg, pos, -1.0)
        };
        let (circuit, nk) = self.nlde.as_ref().expect("split kernels carry an nLDE netlist");
        let diff = circuit
            .evaluate(&[minuend, subtrahend])
            .expect("two-input netlist")[0];
        sign * diff.decode() * (shift + nk).exp()
    }
}

/// Adapts the architecture's noise realization to the race-logic
/// simulator's per-delay-element hook.
struct PerturbHook<'a> {
    realization: ta_circuits::NoiseRealization,
    rng: &'a mut rand::rngs::SmallRng,
}

impl ta_race_logic::DelayPerturb for PerturbHook<'_> {
    fn perturb(&mut self, nominal: f64) -> f64 {
        self.realization.perturb_units(nominal, self.rng)
    }
}

/// Builds one cycle's netlist: weight delays on the firing columns feed a
/// path-balanced nLSE tree together with the recurrent partial. Each
/// weighted leaf is gated by an inhibit cell against the frame-boundary
/// reference edge — the hardware form of §2's "less important
/// contributions can be truncated at any time" (edges landing past the
/// next reference frame never enter the tree).
fn compile_cycle(
    dk: &crate::transform::DelayKernel,
    rail: Rail,
    ky: usize,
    kw: usize,
    terms: &[TermPair],
    k: f64,
) -> CycleCircuit {
    let mut b = CircuitBuilder::new();
    let pixels: Vec<_> = (0..kw).map(|kx| b.input(format!("px{kx}"))).collect();
    let partial = b.input("partial");
    let never = b.input("never");
    let boundary = b.input("frame_boundary");

    let mut leaves = Vec::with_capacity(kw + 1);
    for (kx, &px) in pixels.iter().enumerate() {
        let w = dk.rail_delay(rail, kx, ky);
        if w.is_never() {
            leaves.push(never);
        } else {
            let weighted = b.delay(px, w.delay());
            leaves.push(b.inhibit(weighted, boundary));
        }
    }
    leaves.push(partial);

    let out = blocks::build_nlse_tree(&mut b, &leaves, terms, k);
    b.output("partial_out", out.node);
    CycleCircuit {
        circuit: b.build().expect("compiled datapaths are valid netlists"),
        tree_shift: out.shift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exec, ArchConfig, ArithmeticMode, SystemDescription};
    use ta_image::{metrics, synth, Kernel};

    fn check_agreement(kernels: Vec<Kernel>, stride: usize, size: usize, seed: u64) {
        let desc = SystemDescription::new(size, size, kernels, stride).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(size, size, seed);
        let gate_outs = engine.run(&arch, &img).unwrap();
        let functional = exec::run(&arch, &img, ArithmeticMode::DelayApprox, 0).unwrap();
        for (g, f) in gate_outs.iter().zip(&functional.outputs) {
            assert!(
                metrics::rmse(g, f) < 1e-9,
                "gate-level and functional engines diverge: rmse {}",
                metrics::rmse(g, f)
            );
        }
    }

    #[test]
    fn gate_engine_matches_functional_positive_kernel() {
        check_agreement(vec![Kernel::box_filter(3)], 1, 12, 1);
        check_agreement(vec![Kernel::pyr_down_5x5()], 2, 13, 2);
    }

    #[test]
    fn gate_engine_matches_functional_split_kernel() {
        check_agreement(vec![Kernel::sobel_x()], 1, 10, 3);
        check_agreement(vec![Kernel::laplacian()], 1, 10, 4);
    }

    #[test]
    fn gate_engine_matches_functional_multi_kernel() {
        check_agreement(vec![Kernel::sobel_x(), Kernel::sobel_y()], 1, 9, 5);
    }

    #[test]
    fn noisy_gate_engine_tracks_functional_statistics() {
        let size = 16;
        let desc =
            SystemDescription::new(size, size, vec![Kernel::pyr_down_5x5()], 2).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(size, size, 8);
        let reference = ta_image::conv::convolve(&img, &Kernel::pyr_down_5x5(), 2);

        let gate_outs = engine.run_noisy(&arch, &img, 1).unwrap();
        let gate_err = metrics::normalized_rmse(&gate_outs[0], &reference);
        let functional = exec::run(&arch, &img, ArithmeticMode::DelayApproxNoisy, 1).unwrap();
        let fun_err = metrics::normalized_rmse(&functional.outputs[0], &reference);
        // Same noise model through two simulators: errors agree within a
        // small multiplicative band (different RNG consumption order).
        assert!(gate_err > 0.0 && fun_err > 0.0);
        assert!(
            gate_err < 4.0 * fun_err + 0.02 && fun_err < 4.0 * gate_err + 0.02,
            "gate {gate_err} vs functional {fun_err}"
        );
        // Seeded determinism.
        let again = engine.run_noisy(&arch, &img, 1).unwrap();
        assert_eq!(gate_outs[0], again[0]);
    }

    #[test]
    fn dimension_mismatch_propagates() {
        let desc = SystemDescription::new(12, 12, vec![Kernel::box_filter(3)], 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(3, 5)).unwrap();
        let engine = GateEngine::compile(&arch);
        let img = synth::natural_image(8, 8, 0);
        assert!(matches!(
            engine.run(&arch, &img),
            Err(ExecError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn compiled_netlists_have_expected_shape() {
        let desc = SystemDescription::new(16, 16, vec![Kernel::sobel_x()], 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(5, 10)).unwrap();
        let engine = GateEngine::compile(&arch);
        // One kernel, two rails, three rows each.
        assert_eq!(engine.cycles.len(), 1);
        assert_eq!(engine.cycles[0].len(), 2);
        assert_eq!(engine.cycles[0][0].len(), 3);
        assert!(engine.nlde.is_some());
        // Each cycle circuit takes kw + partial + never + boundary inputs.
        assert_eq!(engine.cycles[0][0][0].circuit.input_count(), 6);
    }
}
