//! System descriptions and architecture configurations (§5.1).

use std::error::Error;
use std::fmt;

use ta_circuits::{AreaModel, EnergyModel, NoiseModel, TdcModel, UnitScale};
use ta_image::{conv, Kernel};

/// Errors raised while validating a system description or compiling an
/// architecture from it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SystemError {
    /// No kernels were supplied.
    NoKernels,
    /// The kernels do not all share one shape (the hard-coded engine
    /// replicates one MAC block geometry).
    MixedKernelShapes,
    /// A kernel does not fit in the image at the given stride.
    KernelDoesNotFit,
    /// Stride was zero.
    ZeroStride,
    /// The recurrence constraints cannot be satisfied (e.g. a negative
    /// loop delay); carries a human-readable explanation.
    Recurrence(String),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::NoKernels => write!(f, "at least one kernel is required"),
            SystemError::MixedKernelShapes => {
                write!(f, "all kernels must share one shape")
            }
            SystemError::KernelDoesNotFit => {
                write!(f, "kernel does not fit in the image at this stride")
            }
            SystemError::ZeroStride => write!(f, "stride must be non-zero"),
            SystemError::Recurrence(why) => write!(f, "recurrence constraint violated: {why}"),
        }
    }
}

impl Error for SystemError {}

/// What the engine must compute: image geometry, filter bank, stride
/// (the input to the paper's architectural simulator, §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemDescription {
    image_width: usize,
    image_height: usize,
    kernels: Vec<Kernel>,
    stride: usize,
}

impl SystemDescription {
    /// Validates and builds a system description.
    ///
    /// # Errors
    ///
    /// Returns a [`SystemError`] if the kernel set is empty or
    /// shape-mixed, the stride is zero, or the kernel does not fit.
    pub fn new(
        image_width: usize,
        image_height: usize,
        kernels: Vec<Kernel>,
        stride: usize,
    ) -> Result<Self, SystemError> {
        if stride == 0 {
            return Err(SystemError::ZeroStride);
        }
        let Some(first) = kernels.first() else {
            return Err(SystemError::NoKernels);
        };
        let shape = (first.width(), first.height());
        if kernels.iter().any(|k| (k.width(), k.height()) != shape) {
            return Err(SystemError::MixedKernelShapes);
        }
        if conv::output_dims(image_width, image_height, first, stride).is_none() {
            return Err(SystemError::KernelDoesNotFit);
        }
        Ok(SystemDescription {
            image_width,
            image_height,
            kernels,
            stride,
        })
    }

    /// Image width in pixels.
    pub fn image_width(&self) -> usize {
        self.image_width
    }

    /// Image height in pixels (rows read out by the rolling shutter).
    pub fn image_height(&self) -> usize {
        self.image_height
    }

    /// The filter bank.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Kernel width (all kernels share it).
    pub fn kernel_width(&self) -> usize {
        self.kernels[0].width()
    }

    /// Kernel height.
    pub fn kernel_height(&self) -> usize {
        self.kernels[0].height()
    }

    /// Output geometry per kernel.
    pub fn output_dims(&self) -> (usize, usize) {
        match conv::output_dims(
            self.image_width,
            self.image_height,
            &self.kernels[0],
            self.stride,
        ) {
            Some(dims) => dims,
            None => unreachable!("geometry validated at construction"),
        }
    }

    /// Number of MAC blocks along the row axis:
    /// `1 + (pixel_width - filter_width)/stride` (§4.3).
    pub fn mac_blocks(&self) -> usize {
        (self.image_width - self.kernel_width()) / self.stride + 1
    }

    /// Accumulation units per MAC block: `ceil(filter_length / stride)`
    /// (§4.3).
    pub fn accum_units_per_block(&self) -> usize {
        self.kernel_height().div_ceil(self.stride)
    }
}

/// How the architecture is realised: approximation sizes, physical scale,
/// noise environment and cost models (the configurable knobs of §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Physical time mapping (unit scale + delay-element multiplier).
    pub unit: UnitScale,
    /// Number of nLSE max-terms.
    pub nlse_terms: usize,
    /// Number of nLDE inhibit-terms (used only for kernels with negative
    /// weights).
    pub nlde_terms: usize,
    /// Delay-element jitter environment.
    pub noise: NoiseModel,
    /// σ of pre-VTC (sensor, voltage-domain) noise as a fraction of full
    /// scale.
    pub vtc_pre_noise_frac: f64,
    /// σ of post-VTC (time-domain) noise in nanoseconds.
    pub vtc_post_noise_ns: f64,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Area constants.
    pub area: AreaModel,
    /// Optional output digitisation (Table 3's "w/TDC" accounting: one
    /// conversion per pixel per frame).
    pub tdc: Option<TdcModel>,
    /// Extra relaxation period appended to each recurrence cycle, in
    /// abstract units (§3's third operating constraint).
    pub relaxation_units: f64,
}

impl ArchConfig {
    /// A full configuration from the three swept knobs, with the paper's
    /// defaults elsewhere: 50× element delay, 10 mV V_DD swing, no sensor
    /// noise, calibrated energy/area models, one unit of relaxation.
    pub fn new(unit: UnitScale, nlse_terms: usize, nlde_terms: usize) -> Self {
        ArchConfig {
            unit,
            nlse_terms,
            nlde_terms,
            noise: NoiseModel::asplos24(10.0),
            vtc_pre_noise_frac: 0.0,
            vtc_post_noise_ns: 0.0,
            energy: EnergyModel::asplos24(),
            area: AreaModel::asplos24(),
            tdc: None,
            relaxation_units: 1.0,
        }
    }

    /// The paper's 1 ns Pareto configuration shape: 1 ns units, 50×
    /// element delay.
    pub fn fast_1ns(nlse_terms: usize, nlde_terms: usize) -> Self {
        ArchConfig::new(UnitScale::new(1.0, 50.0), nlse_terms, nlde_terms)
    }

    /// Replaces the noise model (e.g. a different V_DD swing).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the VTC noise injection points (Fig 13 sweep).
    pub fn with_vtc_noise(mut self, pre_frac: f64, post_ns: f64) -> Self {
        self.vtc_pre_noise_frac = pre_frac;
        self.vtc_post_noise_ns = post_ns;
        self
    }

    /// Adds output digitisation (Table 3's "w/TDC" columns).
    pub fn with_tdc(mut self, tdc: TdcModel) -> Self {
        self.tdc = Some(tdc);
        self
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn validation_catches_bad_descriptions() {
        assert_eq!(
            SystemDescription::new(10, 10, vec![], 1).unwrap_err(),
            SystemError::NoKernels
        );
        assert_eq!(
            SystemDescription::new(10, 10, vec![Kernel::sobel_x()], 0).unwrap_err(),
            SystemError::ZeroStride
        );
        assert_eq!(
            SystemDescription::new(2, 2, vec![Kernel::sobel_x()], 1).unwrap_err(),
            SystemError::KernelDoesNotFit
        );
        assert_eq!(
            SystemDescription::new(10, 10, vec![Kernel::sobel_x(), Kernel::box_filter(5)], 1)
                .unwrap_err(),
            SystemError::MixedKernelShapes
        );
    }

    #[test]
    fn geometry_helpers() {
        let d = SystemDescription::new(150, 150, vec![Kernel::pyr_down_5x5()], 2).unwrap();
        assert_eq!(d.output_dims(), (73, 73));
        assert_eq!(d.mac_blocks(), 73);
        assert_eq!(d.accum_units_per_block(), 3); // ceil(5/2)
    }

    #[test]
    fn sobel_pair_accepted() {
        let d = SystemDescription::new(150, 150, vec![Kernel::sobel_x(), Kernel::sobel_y()], 1)
            .unwrap();
        assert_eq!(d.mac_blocks(), 148);
        assert_eq!(d.accum_units_per_block(), 3);
        assert_eq!(d.kernels().len(), 2);
    }

    #[test]
    fn config_builders() {
        let cfg = ArchConfig::fast_1ns(7, 20)
            .with_vtc_noise(0.01, 0.05)
            .with_tdc(TdcModel::asplos24());
        assert_eq!(cfg.nlse_terms, 7);
        assert_eq!(cfg.vtc_pre_noise_frac, 0.01);
        assert!(cfg.tdc.is_some());
    }
}
