//! Executing images through a compiled architecture (§5.1).

use std::error::Error;
use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ta_circuits::{NldeUnit, NlseUnit, NoiseRealization};
use ta_delay_space::{ops, DelayValue};
use ta_image::Image;
use ta_race_logic::{FaultObservation, NormalSampler};
use ta_simd::SimdMode;

use crate::census::{self, OpCounts, StageProfile};
use crate::fault::{FaultError, FaultKind, FaultMap, FaultStats};
use crate::plan::{PlanCacheStats, RailPlan, Src};
use crate::seed::{derive_seed, Domain};
use crate::transform::Rail;
use crate::tree::TreeOps;
use crate::{Architecture, ArithmeticMode, RunResult};

/// Errors raised while executing a frame.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// The image does not match the architecture's pixel-array geometry.
    DimensionMismatch {
        /// Geometry the architecture was compiled for.
        expected: (usize, usize),
        /// Geometry of the supplied image.
        got: (usize, usize),
    },
    /// A fault-injection request could not be honoured.
    Fault(FaultError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DimensionMismatch { expected, got } => write!(
                f,
                "architecture compiled for {}×{} pixels, image is {}×{}",
                expected.0, expected.1, got.0, got.1
            ),
            ExecError::Fault(e) => write!(f, "fault injection: {e}"),
        }
    }
}

impl Error for ExecError {}

impl From<FaultError> for ExecError {
    fn from(e: FaultError) -> Self {
        ExecError::Fault(e)
    }
}

/// Pushes one frame through the architecture under the given arithmetic
/// mode. `seed` drives every stochastic element (VTC noise, RJ, PSIJ) and
/// is ignored by deterministic modes.
///
/// # Errors
///
/// Returns [`ExecError::DimensionMismatch`] if the image does not match
/// the compiled pixel-array geometry.
pub fn run(
    arch: &Architecture,
    image: &Image,
    mode: ArithmeticMode,
    seed: u64,
) -> Result<RunResult, ExecError> {
    let desc = arch.desc();
    if (image.width(), image.height()) != (desc.image_width(), desc.image_height()) {
        return Err(ExecError::DimensionMismatch {
            expected: (desc.image_width(), desc.image_height()),
            got: (image.width(), image.height()),
        });
    }

    let started = Instant::now();
    let no_faults = FaultMap::new();
    let mut stats = FaultStats::default();
    let (outputs, ops, stages) = match mode {
        ArithmeticMode::ImportanceExact => (run_importance(arch, image), OpCounts::default(), None),
        // Dispatch once per frame on the profiling flag: the profiling
        // twin carries the genuine per-leaf/per-cycle counters and the
        // stage clocks; the common twin runs the bare kernel and takes
        // its (deterministic, data-independent) op counts from the
        // closed form instead — validated against the genuine counters
        // by the census tests, and free on the hot path.
        _ if ta_telemetry::tracer().profiling() => {
            let (outputs, ops, stages, cache) =
                run_delay::<true>(arch, image, mode, seed, &no_faults, &mut stats);
            census::publish_plan_cache(cache);
            (outputs, ops, stages)
        }
        _ => {
            let (outputs, _, stages, cache) =
                run_delay::<false>(arch, image, mode, seed, &no_faults, &mut stats);
            census::publish_plan_cache(cache);
            (outputs, census::expected_ops(arch, mode), stages)
        }
    };

    let result = RunResult {
        outputs,
        energy: arch.energy_per_frame(),
        timing: arch.timing(),
        mode,
        fault_stats: stats,
        ops,
        stages,
    };
    census::publish_frame(&result, started.elapsed());
    Ok(result)
}

/// Twin of [`run`] without the telemetry epilogue (no op-count census, no
/// wall clock, no metric publication), so the `telemetry` criterion bench
/// can measure instrumentation overhead against a bare baseline living in
/// the same binary. The hot kernel is the *same* monomorphisation the
/// instrumented path executes — the measured delta is exactly the
/// telemetry work, not code-placement luck between two near-identical
/// function copies. Not intended for normal use: the result's
/// [`RunResult::ops`] is all zeros.
///
/// # Errors
///
/// Same contract as [`run`].
pub fn run_uninstrumented(
    arch: &Architecture,
    image: &Image,
    mode: ArithmeticMode,
    seed: u64,
) -> Result<RunResult, ExecError> {
    let desc = arch.desc();
    if (image.width(), image.height()) != (desc.image_width(), desc.image_height()) {
        return Err(ExecError::DimensionMismatch {
            expected: (desc.image_width(), desc.image_height()),
            got: (image.width(), image.height()),
        });
    }

    let no_faults = FaultMap::new();
    let mut stats = FaultStats::default();
    let (outputs, ops, stages) = match mode {
        ArithmeticMode::ImportanceExact => (run_importance(arch, image), OpCounts::default(), None),
        _ => {
            // The cache census is deliberately dropped: this twin exists
            // to measure the bare kernel without telemetry work.
            let (outputs, ops, stages, _) =
                run_delay::<false>(arch, image, mode, seed, &no_faults, &mut stats);
            (outputs, ops, stages)
        }
    };

    Ok(RunResult {
        outputs,
        energy: arch.energy_per_frame(),
        timing: arch.timing(),
        mode,
        fault_stats: stats,
        ops,
        stages,
    })
}

/// Pushes one frame through the architecture with the given faults
/// injected. The same [`FaultMap`] drives [`crate::GateEngine::run_faulty`]
/// identically, so the two engines stay cross-checkable under injection.
///
/// With an empty map the arithmetic is bit-identical to [`run`]; fault
/// effects saturate into representable delay-space values and are counted
/// in the result's [`FaultStats`] instead of producing NaN or panics.
///
/// # Errors
///
/// [`ExecError::DimensionMismatch`] on geometry mismatch, and
/// [`ExecError::Fault`] with [`FaultError::UnsupportedMode`] for
/// [`ArithmeticMode::ImportanceExact`] — pure importance-space arithmetic
/// models no hardware elements to fault.
pub fn run_faulty(
    arch: &Architecture,
    image: &Image,
    mode: ArithmeticMode,
    seed: u64,
    faults: &FaultMap,
) -> Result<RunResult, ExecError> {
    if mode == ArithmeticMode::ImportanceExact {
        return Err(FaultError::UnsupportedMode(mode).into());
    }
    let desc = arch.desc();
    if (image.width(), image.height()) != (desc.image_width(), desc.image_height()) {
        return Err(ExecError::DimensionMismatch {
            expected: (desc.image_width(), desc.image_height()),
            got: (image.width(), image.height()),
        });
    }

    let started = Instant::now();
    let mut stats = FaultStats {
        sites_injected: faults.len(),
        ..FaultStats::default()
    };
    let (outputs, ops, stages) = if ta_telemetry::tracer().profiling() {
        let (outputs, ops, stages, cache) =
            run_delay::<true>(arch, image, mode, seed, faults, &mut stats);
        census::publish_plan_cache(cache);
        (outputs, ops, stages)
    } else {
        let (outputs, _, stages, cache) =
            run_delay::<false>(arch, image, mode, seed, faults, &mut stats);
        census::publish_plan_cache(cache);
        // Faults never change the data-independent op counts: trees are
        // evaluated (and charged) whether or not their edges fire.
        (outputs, census::expected_ops(arch, mode), stages)
    };

    let result = RunResult {
        outputs,
        energy: arch.energy_per_frame(),
        timing: arch.timing(),
        mode,
        fault_stats: stats,
        ops,
        stages,
    };
    census::publish_frame(&result, started.elapsed());
    Ok(result)
}

/// Importance-space arithmetic routed through the engine's schedule: rail
/// accumulators advance row by row exactly like the recurrent trees, and
/// rails combine through a final subtraction — the paper's first
/// verification mode.
pub(crate) fn run_importance(arch: &Architecture, image: &Image) -> Vec<Image> {
    let desc = arch.desc();
    let stride = desc.stride();
    let (ow, oh) = desc.output_dims();
    desc.kernels()
        .iter()
        .map(|kernel| {
            let (pos_k, neg_k) = kernel.split_signs();
            Image::from_fn(ow, oh, |ox, oy| {
                let mut pos = 0.0;
                let mut neg = 0.0;
                for ky in 0..kernel.height() {
                    // One rolling-shutter cycle: this kernel row's products
                    // join the running rail partials.
                    for kx in 0..kernel.width() {
                        let p = image.get(ox * stride + kx, oy * stride + ky);
                        pos += pos_k.weight(kx, ky) * p;
                        neg += neg_k.weight(kx, ky) * p;
                    }
                }
                pos - neg
            })
        })
        .collect()
}

/// Per-worker accumulator for the parallel row stage: output rows plus
/// every counter the serial engine used to update in place. Workers fill
/// private instances; [`run_delay`] merges them once at join, so the
/// merged totals are exact (the census tests compare them against the
/// closed-form op counts) and identical at any worker count.
struct RowAcc {
    /// `(flat item index, output row)` pairs, reassembled by the caller.
    rows: Vec<(usize, Vec<f64>)>,
    counts: OpCounts,
    stats: FaultStats,
    stage: StageProfile,
    /// Row cells this worker computed (cache first-uses plus faulted-row
    /// bypasses) and served from the frame-local cache. The totals are
    /// schedule-independent even though the split between workers is not.
    rows_computed: u64,
    rows_reused: u64,
}

impl RowAcc {
    fn new() -> Self {
        RowAcc {
            rows: Vec::new(),
            counts: OpCounts::default(),
            stats: FaultStats::default(),
            stage: StageProfile::default(),
            rows_computed: 0,
            rows_reused: 0,
        }
    }
}

/// Delay-space execution (exact, approximate or noisy hardware), with
/// optional site-addressed fault injection. Every fault lookup keeps the
/// fault-free expression verbatim in its `None` arm, so an empty map is
/// bit-identical to the unfaulted engine.
///
/// The frame is data-parallel and runs on [`ta_pool::Pool::current`]:
/// stage 1 converts pixels through the VTC one *image row* per work
/// item; stage 2 evaluates the recurrent MAC trees one *(kernel, output
/// row)* per work item, driven by the architecture's compiled
/// [`crate::plan::FramePlan`] — a flat, cache-friendly encoding of the
/// balanced nLSE tree with the per-level balancing delays and finite tap
/// lists precomputed at `Architecture::new` time, executed iteratively
/// instead of by recursive descent. The partial-free part of each cycle
/// (the *row cell*) is shared across stride-shifted output rows through
/// a frame-local cache (DESIGN.md §5.11). Determinism at every worker
/// count is structural: each work item seeds its own `SmallRng` from
/// [`derive_seed`]`(seed, domain, item)` — [`Domain::VtcRow`] for stage
/// 1, [`Domain::TreeRow`] for stage 2, [`Domain::RowCycle`] for the
/// shared row cells — so no RNG state crosses an item boundary and the
/// schedule cannot influence a single draw. All other mutable state
/// (fault counters, op counts, stage clocks) accumulates per worker in
/// [`RowAcc`] and merges order-insensitively at join.
///
/// `PROF` selects the profiling twin: genuine per-leaf/per-cycle op
/// counters plus per-stage clocks (an `Instant` pair per inner-loop
/// stage — too expensive even to branch on dynamically, so the caller
/// dispatches on the tracer's profiling flag once per frame and the
/// common twin monomorphises every hook away). Stage durations are the
/// *sum of per-worker busy time* — CPU-seconds, not wall-clock — which
/// coincides with the old meaning on one thread and keeps the per-stage
/// energy attribution thread-count-independent. Instrumentation is
/// purely observational — it never touches the RNG streams or the
/// arithmetic, so both twins are bit-identical.
fn run_delay<const PROF: bool>(
    arch: &Architecture,
    image: &Image,
    mode: ArithmeticMode,
    seed: u64,
    faults: &FaultMap,
    stats: &mut FaultStats,
) -> (Vec<Image>, OpCounts, Option<StageProfile>, PlanCacheStats) {
    let desc = arch.desc();
    let stride = desc.stride();
    let (ow, oh) = desc.output_dims();
    let kw = desc.kernel_width();
    let kh = desc.kernel_height();
    let noisy = mode == ArithmeticMode::DelayApproxNoisy;
    let approximate = mode != ArithmeticMode::DelayExact;
    let pool = ta_pool::Pool::current();

    let mut counts = OpCounts::default();
    let mut stage = StageProfile::default();
    let stage_clock = || -> Option<Instant> { PROF.then(Instant::now) };

    // Stage 1 — pixel readout, parallel over image rows: one VTC
    // conversion per pixel (noise applied here for the noisy mode, from
    // the row's derived stream; the same converted value feeds every MAC
    // block that uses the pixel, as in hardware). Pixel faults hit the
    // converted edge, so every reader of the pixel sees the same faulted
    // value.
    let vtc = arch.vtc();
    let img_w = image.width();
    let img_h = image.height();
    let simd = ta_simd::mode();
    let mut pixel_delays: Vec<DelayValue> = vec![DelayValue::ZERO; img_w * img_h];
    for (acc_rows, acc_stats, busy) in pool.run(
        img_h,
        || (Vec::new(), FaultStats::default(), Duration::ZERO),
        |y, (acc_rows, acc_stats, busy): &mut (Vec<(usize, Vec<DelayValue>)>, _, _)| {
            let t_vtc = stage_clock();
            let mut rng = SmallRng::seed_from_u64(derive_seed(seed, Domain::VtcRow, y as u64));
            let pixels = image.row(y);
            let mut row: Vec<DelayValue> = if noisy {
                // One sampler per row, reset inside `convert_with` at
                // each pixel: identical RNG draw order to the old
                // sampler-per-pixel construction, without the per-pixel
                // setup.
                let mut sampler = NormalSampler::new();
                pixels
                    .iter()
                    .map(|&p| vtc.convert_with(p, &mut rng, &mut sampler))
                    .collect()
            } else if simd == SimdMode::Tolerant && pixels.iter().all(|p| p.is_finite()) {
                // Vectorized encode (polynomial `ln`); the identical
                // mode keeps the scalar libm path below, bit-for-bit.
                vtc.convert_ideal_row(pixels, true)
            } else {
                pixels.iter().map(|&p| vtc.convert_ideal(p)).collect()
            };
            for (x, v) in row.iter_mut().enumerate() {
                if let Some(fault) = faults.pixel_fault(x, y) {
                    let mut obs = FaultObservation::default();
                    *v = fault.apply(*v, &mut obs);
                    acc_stats.absorb_observation(obs);
                }
            }
            acc_rows.push((y, row));
            if let Some(t) = t_vtc {
                *busy += t.elapsed();
            }
        },
    ) {
        stats.merge(&acc_stats);
        stage.vtc_encode += busy;
        for (y, row) in acc_rows {
            pixel_delays[y * img_w..(y + 1) * img_w].copy_from_slice(&row);
        }
    }
    if PROF {
        counts.vtc_conversions = pixel_delays.len() as u64;
    }
    let pixel_delays: &[DelayValue] = &pixel_delays;

    let k_tree = if approximate {
        arch.tree_depth() as f64 * arch.nlse_unit().latency_units()
    } else {
        0.0
    };
    let loop_delay = arch.schedule().loop_delay_units;
    // Edges pushed past the reference-frame boundary carry importance
    // below e^-cycle and are truncated by the hardware (see
    // `Architecture::new`); the exact mode is the mathematical reference
    // and keeps them.
    let truncate_at = if approximate {
        arch.schedule().cycle_units
    } else {
        f64::INFINITY
    };

    // Stage 2 — tree evaluation over the compiled plan (see `plan`),
    // parallel over (kernel, output row) items. Flat item index
    // `item = k_idx * oh + oy` names both the output row and its RNG
    // stream. Each cycle splits at the recurrent spine: the partial-free
    // *row cell* — weighted, truncated leaves plus every row-node
    // reduction, exported as the balanced spine inputs for all output
    // columns — is a pure function of `(kernel, rail, weight-row class,
    // input row)` drawing from its own [`Domain::RowCycle`] stream, so
    // the stride-shifted output rows whose windows overlap share it
    // through a frame-local `OnceLock` cache, bit-identically in every
    // arithmetic mode. Weight-faulted rows bypass the cache (their value
    // differs) but draw the *same* stream as their clean twin, so fault
    // injection never re-rolls the noise.
    let plan = arch.plan();
    let n_spine = plan.tree.spine.len();
    let delay_kernels = arch.delay_kernels();
    // Decoder exponentials, one pair per kernel per frame (the shift is
    // row-invariant; recomputing `exp(shift)` per output pixel was pure
    // waste).
    let shift_exps: Vec<ShiftExps> = (0..delay_kernels.len())
        .map(|k_idx| ShiftExps::new(arch, arch.output_shift_units(k_idx, approximate)))
        .collect();
    // Per-work-item stream seeds, precomputed once per frame.
    let tree_seeds: Vec<u64> = (0..delay_kernels.len() * oh)
        .map(|item| derive_seed(seed, Domain::TreeRow, item as u64))
        .collect();
    // Per-level balancing delays with the unit latency K pre-applied
    // (all zero in the exact mode) — indexed by skipped levels, bit-for-
    // bit the recursive engine's `(levels − l) as f64 * K`.
    let lvl_units = plan.balance_units(if approximate {
        arch.nlse_unit().latency_units()
    } else {
        0.0
    });

    // Weight faults per (kernel, rail, weight row), hoisted out of the
    // hot loop: `None` marks a clean (cacheable) row, `Some` carries the
    // per-tap overlay for the inline path.
    type TapOverlay = Option<Vec<Option<FaultKind>>>;
    let fault_rows: Option<Vec<Vec<Vec<TapOverlay>>>> = (!faults.is_empty()).then(|| {
        plan.kernels
            .iter()
            .enumerate()
            .map(|(k_idx, kp)| {
                kp.rails
                    .iter()
                    .map(|rp| {
                        (0..kh)
                            .map(|ky| {
                                let tf: Vec<Option<FaultKind>> = rp.taps[ky]
                                    .finite
                                    .iter()
                                    .map(|&(kx, _)| {
                                        faults.weight_fault(k_idx, rp.rail, ky, kx as usize)
                                    })
                                    .collect();
                                tf.iter().any(Option::is_some).then_some(tf)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    });

    // The frame-local row-cell cache: one slot per (kernel, rail, class,
    // input row). `OnceLock` keeps concurrent workers deterministic: the
    // cell is a pure function of its key, so whoever computes it first
    // stores the bits every other worker would have.
    let cells: Vec<OnceLock<RowCell>> = std::iter::repeat_with(OnceLock::new)
        .take(plan.row_classes() * img_h)
        .collect();

    let ctx = CellCtx {
        arch,
        faults,
        mode,
        noisy,
        seed,
        truncate_at,
        kw,
        lvl_units: &lvl_units,
        pixel_delays,
        img_w,
        img_h,
        ow,
        stride,
        simd,
    };

    let row_accs = pool.run(delay_kernels.len() * oh, RowAcc::new, |item, acc| {
        let k_idx = item / oh;
        let oy = item % oh;
        let kp = &plan.kernels[k_idx];
        let sx = &shift_exps[k_idx];
        let mut rng = SmallRng::seed_from_u64(tree_seeds[item]);
        // The per-leaf/per-cycle counters live in scalar locals (not
        // `acc.counts` fields) so they stay in registers across the
        // inner loops; `acc.counts` is threaded by `&mut` through
        // `combine_rails`, which would force reloads around every call.
        let mut edge_events: u64 = 0;
        let mut nlse_ops: u64 = 0;
        let mut rail_vals: [Vec<DelayValue>; 2] = [Vec::new(), Vec::new()];

        for (rail_i, rp) in kp.rails.iter().enumerate() {
            let tree_drift = faults.tree_drift(k_idx, rp.rail);
            // The recursive engine counted one saturation per tree
            // evaluation; the exact mode has no chains to age.
            let drift_saturates =
                mode != ArithmeticMode::DelayExact && tree_drift.is_some_and(|f| 1.0 + f < 0.0);
            let loop_drift = faults.loop_drift(k_idx, rp.rail);
            // Batched spine pass: each spine step's inputs are one
            // contiguous row of the cell, so the whole recurrence streams
            // through the SIMD kernels. Qualifies only when nothing in
            // the rail draws from the stream or perturbs per column —
            // no noise (clean cells carry no realization), no tree or
            // loop drift — and never on the profiling twin (per-column
            // clocks and counters).
            let spine_batch = !PROF
                && simd != SimdMode::Off
                && !noisy
                && tree_drift.is_none()
                && loop_drift.is_none();
            let exact = mode == ArithmeticMode::DelayExact;
            let tolerant = simd == SimdMode::Tolerant;
            let mut partials: Vec<DelayValue> = if spine_batch {
                Vec::new()
            } else {
                vec![DelayValue::ZERO; ow] // no edges yet
            };
            let mut partials_f: Vec<f64> = if spine_batch {
                vec![f64::INFINITY; ow]
            } else {
                Vec::new()
            };
            for ky in 0..kh {
                let r = oy * stride + ky;
                let overlay = fault_rows
                    .as_ref()
                    .and_then(|fr| fr[k_idx][rail_i][ky].as_deref());
                let inline_cell;
                let cell: &RowCell = match overlay {
                    None => {
                        // Clean row: serve the (kernel, rail, class, r)
                        // cell from the cache, computing it on first use
                        // from the class representative's taps.
                        let class = rp.class_of[ky] as usize;
                        let idx = (rp.cell_base + class) * img_h + r;
                        let mut fresh = false;
                        let cell = cells[idx].get_or_init(|| {
                            fresh = true;
                            compute_row_cell::<PROF>(
                                &ctx,
                                k_idx,
                                rp,
                                rp.class_rep[class] as usize,
                                r,
                                None,
                                acc,
                            )
                        });
                        if fresh {
                            acc.rows_computed += 1;
                        } else {
                            acc.rows_reused += 1;
                        }
                        cell
                    }
                    Some(overlay) => {
                        // Faulted row: same stream, fresh value.
                        inline_cell =
                            compute_row_cell::<PROF>(&ctx, k_idx, rp, ky, r, Some(overlay), acc);
                        acc.rows_computed += 1;
                        &inline_cell
                    }
                };

                let ops = tree_mode_ops(
                    mode,
                    arch.nlse_unit(),
                    tree_drift,
                    cell.realization.as_ref(),
                );
                if PROF {
                    edge_events += cell.edges;
                    // One nLSE op per internal node, charged on *every*
                    // use: the hardware in every MAC block still
                    // switches — only the simulator reuses — which keeps
                    // the dynamic census equal to the static one.
                    nlse_ops += (plan.tree.row_nodes.len() + n_spine) as u64 * ow as u64;
                }
                let t_tree = stage_clock();
                if spine_batch {
                    // Balanced accumulate, one spine step across every
                    // output column: `combine(cell_row, balance(acc,
                    // units))`, identical operand order to the scalar
                    // loop below.
                    for (s_i, step) in plan.tree.spine.iter().enumerate() {
                        let row = &cell.vals[s_i * ow..(s_i + 1) * ow];
                        let bal = lvl_units[step.spine_bal as usize];
                        if exact {
                            ta_simd::nlse_exact_rows_inplace(
                                row,
                                0.0,
                                &mut partials_f,
                                bal,
                                tolerant,
                            );
                        } else {
                            arch.nlse_unit().eval_ideal_rows_inplace(
                                row,
                                0.0,
                                &mut partials_f,
                                bal,
                            );
                        }
                    }
                    if ky + 1 < kh {
                        // Loop back: jitter is zero on the clean path, so
                        // only the reference-frame cancellation of the
                        // tree latency remains (`+∞` rides through the
                        // add unchanged, like the scalar never-guard).
                        ta_simd::add_units(&mut partials_f, 0.0 - k_tree);
                    }
                    if let Some(t) = t_tree {
                        acc.stage.nlse_tree += t.elapsed();
                    }
                    continue;
                }
                for (ox, partial) in partials.iter_mut().enumerate() {
                    if drift_saturates {
                        acc.stats.saturations += 1;
                    }
                    let mut s = *partial;
                    if PROF {
                        edge_events += u64::from(!s.is_never());
                    }
                    for (s_i, step) in plan.tree.spine.iter().enumerate() {
                        s = ops.balance(s, lvl_units[step.spine_bal as usize], &mut rng);
                        s = ops.combine(
                            DelayValue::from_delay(cell.vals[s_i * ow + ox]),
                            s,
                            &mut rng,
                        );
                    }
                    let raw = s;
                    if ky + 1 < kh {
                        // Loop back: the reference-frame shift cancels
                        // the tree latency; only loop-line jitter
                        // survives into the value.
                        let jitter = match (&cell.realization, raw.is_never()) {
                            (Some(rz), false) => {
                                rz.perturb_units(loop_delay, &mut rng) - loop_delay
                            }
                            _ => 0.0,
                        };
                        *partial = match loop_drift {
                            None => {
                                if raw.is_never() {
                                    raw
                                } else {
                                    raw.delayed(jitter - k_tree)
                                }
                            }
                            Some(fraction) => {
                                // The drifted loop line realises
                                // loop_delay × (1 + fraction) while the
                                // reference-frame shift still cancels
                                // the nominal; the excess survives.
                                let excess = if 1.0 + fraction < 0.0 {
                                    acc.stats.saturations += 1;
                                    -loop_delay
                                } else {
                                    loop_delay * fraction
                                };
                                if raw.is_never() {
                                    raw
                                } else {
                                    raw.delayed(jitter + excess - k_tree)
                                }
                            }
                        };
                    } else {
                        *partial = raw;
                    }
                }
                if let Some(t) = t_tree {
                    acc.stage.nlse_tree += t.elapsed();
                }
            }
            rail_vals[rail_i] = if spine_batch {
                // Back to the newtype for rail renormalisation (non-NaN
                // by construction, so the round-trip is lossless).
                partials_f.into_iter().map(DelayValue::from_delay).collect()
            } else {
                partials
            };
        }

        let t_renorm = stage_clock();
        let rails = delay_kernels[k_idx].rails();
        let mut row_out: Vec<f64> = Vec::with_capacity(ow);
        for (ox, &pos_raw) in rail_vals[0].iter().enumerate() {
            let rail_raw = [
                pos_raw,
                if rails.len() == 2 {
                    rail_vals[1][ox]
                } else {
                    DelayValue::ZERO
                },
            ];
            row_out.push(combine_rails::<PROF>(
                arch,
                k_idx,
                rails,
                rail_raw,
                mode,
                sx,
                faults,
                &mut acc.stats,
                &mut acc.counts,
                &mut rng,
            ));
        }
        if let Some(t) = t_renorm {
            acc.stage.nlde_renorm += t.elapsed();
        }
        if PROF {
            acc.counts.edge_events += edge_events;
            acc.counts.nlse_ops += nlse_ops;
        }
        acc.rows.push((item, row_out));
    });

    let mut outputs: Vec<Image> = (0..delay_kernels.len())
        .map(|_| Image::zeros(ow, oh))
        .collect();
    let mut cache = PlanCacheStats::default();
    for acc in row_accs {
        stats.merge(&acc.stats);
        cache.computed += acc.rows_computed;
        cache.reused += acc.rows_reused;
        if PROF {
            counts += acc.counts;
            stage += acc.stage;
        }
        for (item, row) in acc.rows {
            let out = &mut outputs[item / oh];
            let oy = item % oh;
            for (ox, &value) in row.iter().enumerate() {
                out.set(ox, oy, value);
            }
        }
    }
    (outputs, counts, PROF.then_some(stage), cache)
}

/// One row cell: the balanced spine inputs for every output column plus
/// the cycle's noise realization and its data-dependent profiling
/// counters — everything an output row consumes from the shareable part
/// of a cycle.
struct RowCell {
    /// `spine_len × ow` balanced spine inputs as raw delays, spine-step
    /// major: `vals[s_i * ow + ox]`. Step-major rows keep each spine
    /// step's inputs contiguous so the batched spine pass streams them
    /// through the SIMD kernels; the scalar path re-wraps single
    /// elements through [`DelayValue::from_delay`] (the engine
    /// guarantees non-NaN, so the round-trip is free and lossless).
    vals: Vec<f64>,
    /// The cycle's common-mode noise realization (noisy mode only); the
    /// spine pass and loop line of every consuming output row see the
    /// same supply excursion the row's weight lines saw.
    realization: Option<NoiseRealization>,
    /// Finite leaves that fired (post-truncation), added to the census on
    /// *every* use so reuse keeps the dynamic counters exact.
    edges: u64,
}

/// Immutable per-frame context shared by every row-cell computation.
struct CellCtx<'a> {
    arch: &'a Architecture,
    faults: &'a FaultMap,
    mode: ArithmeticMode,
    noisy: bool,
    seed: u64,
    truncate_at: f64,
    kw: usize,
    lvl_units: &'a [f64],
    pixel_delays: &'a [DelayValue],
    img_w: usize,
    img_h: usize,
    ow: usize,
    stride: usize,
    /// The session's SIMD dispatch mode; `Off` pins every cell to the
    /// scalar golden path.
    simd: SimdMode,
}

/// Selects the tree-node arithmetic for one cycle: mode × tree-chain
/// drift fault × noise realization. The exact mode evaluates pure
/// mathematics — there are no chains for drift to age.
pub(crate) fn tree_mode_ops<'a>(
    mode: ArithmeticMode,
    unit: &'a NlseUnit,
    tree_drift: Option<f64>,
    realization: Option<&'a NoiseRealization>,
) -> TreeOps<'a> {
    match (mode, tree_drift, realization) {
        (ArithmeticMode::DelayExact, ..) => TreeOps::Exact,
        (ArithmeticMode::DelayApprox, None, _) => TreeOps::Approx(unit),
        (ArithmeticMode::DelayApprox, Some(f), _) => TreeOps::Drifted(unit, f),
        (ArithmeticMode::DelayApproxNoisy, None, Some(rz)) => TreeOps::Noisy(unit, rz),
        (ArithmeticMode::DelayApproxNoisy, Some(f), Some(rz)) => TreeOps::NoisyDrifted(unit, rz, f),
        (ArithmeticMode::DelayApproxNoisy, _, None) | (ArithmeticMode::ImportanceExact, ..) => {
            unreachable!("noisy cycles carry a realization; importance mode never reaches trees")
        }
    }
}

/// Resolves a tree-program operand against the current scratch arrays.
#[inline]
fn fetch(src: Src, leaves: &[DelayValue], nodes: &[DelayValue]) -> DelayValue {
    match src {
        Src::Leaf(i) => leaves[i as usize],
        Src::Node(i) => nodes[i as usize],
    }
}

/// Evaluates one row cell — the cycle's weighted, truncated leaves and
/// every partial-free tree reduction for all output columns, exported as
/// the balanced spine inputs. Draws exclusively from the cell's own
/// [`Domain::RowCycle`] stream (indexed by the cell's slot), making the
/// result a pure function of `(kernel, rail, class, input row)` — the
/// property both the cache and the reference engine rely on. `ky` is the
/// weight row whose taps (and, via `overlay`, faults) apply: the class
/// representative for cached cells, the consuming row itself for the
/// faulted inline path.
#[allow(clippy::too_many_arguments)]
fn compute_row_cell<const PROF: bool>(
    ctx: &CellCtx<'_>,
    k_idx: usize,
    rp: &RailPlan,
    ky: usize,
    r: usize,
    overlay: Option<&[Option<FaultKind>]>,
    acc: &mut RowAcc,
) -> RowCell {
    let cfg = ctx.arch.cfg();
    let plan = ctx.arch.plan();
    let class = rp.class_of[ky] as usize;
    let cell_idx = (rp.cell_base + class) * ctx.img_h + r;
    let mut rng = SmallRng::seed_from_u64(derive_seed(ctx.seed, Domain::RowCycle, cell_idx as u64));
    // One noise realization covers the whole cycle: PSIJ is common-mode
    // supply droop, so the weight lines, tree chains and loop line of a
    // cycle all see the same excursion — and because the cell is keyed
    // by what it computes, every output row sharing it sees that same
    // excursion, which is exactly what makes reuse bit-identical.
    let realization = ctx.noisy.then(|| cfg.noise.begin_eval(cfg.unit, &mut rng));
    let tree_drift = ctx.faults.tree_drift(k_idx, rp.rail);
    let ops = tree_mode_ops(
        ctx.mode,
        ctx.arch.nlse_unit(),
        tree_drift,
        realization.as_ref(),
    );
    let n_spine = plan.tree.spine.len();
    let mut vals = vec![f64::INFINITY; ctx.ow * n_spine];

    // Batched cell evaluation: whole output-column rows stream through
    // the `ta-simd` kernels instead of one column at a time. Only pure
    // cycles qualify — no noise realization (nothing draws from `rng`
    // in the Exact/Approx ops, so skipping the column loop cannot shift
    // a stream), no weight-fault overlay, no tree-chain drift — and the
    // profiling twin keeps the scalar loop for its per-column clocks
    // and edge counters. In identical mode the kernels replicate the
    // scalar engine f64-op for f64-op; the tolerant mode swaps libm
    // transcendentals for the polynomial lanes.
    if !PROF && ctx.simd != SimdMode::Off && !ctx.noisy && overlay.is_none() && tree_drift.is_none()
    {
        compute_row_cell_batch(ctx, rp, ky, r, &mut vals);
        return RowCell {
            vals,
            realization,
            edges: 0,
        };
    }

    let mut leaves = vec![DelayValue::ZERO; ctx.kw];
    let mut nodes = vec![DelayValue::ZERO; plan.tree.row_nodes.len()];
    let mut edges: u64 = 0;
    let taps = &rp.taps[ky];

    for ox in 0..ctx.ow {
        let t_matrix = PROF.then(Instant::now);
        for slot in leaves.iter_mut() {
            *slot = DelayValue::ZERO;
        }
        for (t_i, &(kx, w_units)) in taps.finite.iter().enumerate() {
            let weight_fault = overlay.and_then(|tf| tf[t_i]);
            let nominal = match weight_fault {
                Some(FaultKind::DelayDrift { fraction }) => {
                    let factor = 1.0 + fraction;
                    if factor < 0.0 {
                        // A delay line cannot advance edges: saturate
                        // at zero.
                        acc.stats.saturations += 1;
                        0.0
                    } else {
                        w_units * factor
                    }
                }
                _ => w_units,
            };
            let w_delay = match &realization {
                Some(rz) => rz.perturb_units(nominal, &mut rng),
                None => nominal,
            };
            let mut leaf =
                ctx.pixel_delays[r * ctx.img_w + ox * ctx.stride + kx as usize].delayed(w_delay);
            if let Some(fault) = weight_fault.and_then(FaultKind::edge_fault) {
                let mut obs = FaultObservation::default();
                leaf = fault.apply(leaf, &mut obs);
                acc.stats.absorb_observation(obs);
            }
            let leaf = if leaf.delay() > ctx.truncate_at {
                DelayValue::ZERO
            } else {
                leaf
            };
            // Edge events are data-dependent and feed no energy
            // cross-check; a branchless add on the hot path.
            if PROF {
                edges += u64::from(!leaf.is_never());
            }
            leaves[kx as usize] = leaf;
        }
        if let Some(t) = t_matrix {
            acc.stage.delay_matrix += t.elapsed();
        }
        let t_tree = PROF.then(Instant::now);
        for n_i in 0..nodes.len() {
            let node = plan.tree.row_nodes[n_i];
            let a = ops.balance(
                fetch(node.left, &leaves, &nodes),
                ctx.lvl_units[node.left_bal as usize],
                &mut rng,
            );
            let b = ops.balance(
                fetch(node.right, &leaves, &nodes),
                ctx.lvl_units[node.right_bal as usize],
                &mut rng,
            );
            nodes[n_i] = ops.combine(a, b, &mut rng);
        }
        for (s_i, step) in plan.tree.spine.iter().enumerate() {
            vals[s_i * ctx.ow + ox] = ops
                .balance(
                    fetch(step.input, &leaves, &nodes),
                    ctx.lvl_units[step.input_bal as usize],
                    &mut rng,
                )
                .delay();
        }
        if let Some(t) = t_tree {
            acc.stage.nlse_tree += t.elapsed();
        }
    }
    RowCell {
        vals,
        realization,
        edges,
    }
}

/// Resolves a tree-program operand to its batched output-column row.
#[inline]
fn fetch_row<'a>(src: Src, leaves: &'a [f64], nodes: &'a [f64], ow: usize) -> &'a [f64] {
    match src {
        Src::Leaf(i) => &leaves[i as usize * ow..(i as usize + 1) * ow],
        Src::Node(i) => &nodes[i as usize * ow..(i as usize + 1) * ow],
    }
}

/// Batched twin of the column loop in [`compute_row_cell`]: evaluates the
/// cycle one whole output-column row per tree operand, through the
/// `ta-simd` kernels. Callers guarantee a pure cycle (no noise, no
/// overlay, no drift), so this is the `TreeOps::Exact` / `TreeOps::Approx`
/// arithmetic only. In identical mode every kernel replicates the scalar
/// engine bit-for-bit (same comparator flavors, same balance
/// short-circuit, libm transcendentals in the exact mode); the tolerant
/// mode vectorizes the exact mode's `exp`/`ln_1p` with the polynomial
/// lanes.
fn compute_row_cell_batch(ctx: &CellCtx<'_>, rp: &RailPlan, ky: usize, r: usize, vals: &mut [f64]) {
    let plan = ctx.arch.plan();
    let unit = ctx.arch.nlse_unit();
    let exact = ctx.mode == ArithmeticMode::DelayExact;
    let tolerant = ctx.simd == SimdMode::Tolerant;
    let ow = ctx.ow;
    let taps = &rp.taps[ky];

    // Raw delays of the input row (NaN-free: `DelayValue` guarantees it).
    let px: Vec<f64> = ctx.pixel_delays[r * ctx.img_w..(r + 1) * ctx.img_w]
        .iter()
        .map(|v| v.delay())
        .collect();

    // Weighted, truncated leaves: one contiguous row per tap position;
    // positions without a finite tap stay never for every column.
    let mut leaf_rows = vec![f64::INFINITY; ctx.kw * ow];
    for &(kx, w_units) in &taps.finite {
        let kx = kx as usize;
        ta_simd::weighted_leaves(
            &px[kx..],
            ctx.stride,
            w_units,
            ctx.truncate_at,
            &mut leaf_rows[kx * ow..(kx + 1) * ow],
        );
    }

    // Row-node reductions. Nodes are emitted bottom-up (a node only
    // references earlier nodes), so `split_at_mut` yields the output row
    // disjoint from every operand row.
    let mut node_rows = vec![0.0_f64; plan.tree.row_nodes.len() * ow];
    for n_i in 0..plan.tree.row_nodes.len() {
        let node = plan.tree.row_nodes[n_i];
        let (prev, rest) = node_rows.split_at_mut(n_i * ow);
        let out = &mut rest[..ow];
        let a = fetch_row(node.left, &leaf_rows, prev, ow);
        let b = fetch_row(node.right, &leaf_rows, prev, ow);
        let au = ctx.lvl_units[node.left_bal as usize];
        let bu = ctx.lvl_units[node.right_bal as usize];
        if exact {
            ta_simd::nlse_exact_rows(a, au, b, bu, tolerant, out);
        } else {
            unit.eval_ideal_rows(a, au, b, bu, out);
        }
    }

    // Balanced spine exports: copy, then add the balance units unless
    // the count is exactly `0.0` (the balance short-circuit preserving
    // `-0.0`, uniform across the row).
    for (s_i, step) in plan.tree.spine.iter().enumerate() {
        let out = &mut vals[s_i * ow..(s_i + 1) * ow];
        out.copy_from_slice(fetch_row(step.input, &leaf_rows, &node_rows, ow));
        let units = ctx.lvl_units[step.input_bal as usize];
        if units != 0.0 {
            ta_simd::add_units(out, units);
        }
    }
}

/// One kernel's decoder scale factors, hoisted out of the per-pixel
/// decode: the reference-frame shift is invariant per (kernel, frame), so
/// `exp(shift)` — and the approximate modes' `exp(shift + K_nlde)`, where
/// the readout adds the subtraction unit's nominal latency — need one
/// `exp` each per kernel instead of one per output pixel. The memoized
/// values are the very same `f64::exp` results the per-pixel form
/// produced, so decoding is bit-identical by construction.
pub(crate) struct ShiftExps {
    /// `exp(shift)` — exact mode and single-rail decode.
    exp_shift: f64,
    /// `exp(shift + K_nlde)` — split-rail decode in the approximate
    /// modes (equals `exp_shift` for architectures without an nLDE unit,
    /// which never take that path).
    exp_shift_lat: f64,
}

impl ShiftExps {
    pub(crate) fn new(arch: &Architecture, shift: f64) -> Self {
        let lat = arch.nlde_unit().map_or(0.0, NldeUnit::latency_units);
        ShiftExps {
            exp_shift: shift.exp(),
            exp_shift_lat: (shift + lat).exp(),
        }
    }
}

/// Renormalises the split rails through the subtraction unit and decodes
/// to a signed importance-space value.
#[allow(clippy::too_many_arguments)]
pub(crate) fn combine_rails<const PROF: bool>(
    arch: &Architecture,
    k_idx: usize,
    rails: &[Rail],
    rail_raw: [DelayValue; 2],
    mode: ArithmeticMode,
    sx: &ShiftExps,
    faults: &FaultMap,
    stats: &mut FaultStats,
    counts: &mut OpCounts,
    rng: &mut SmallRng,
) -> f64 {
    let cfg = arch.cfg();
    if PROF {
        if rails.len() == 2 {
            counts.nlde_ops += 1;
        }
        // The decode closure below quantises through the TDC once per
        // combine in the approximate modes.
        if cfg.tdc.is_some()
            && matches!(
                mode,
                ArithmeticMode::DelayApprox | ArithmeticMode::DelayApproxNoisy
            )
        {
            counts.tdc_conversions += 1;
        }
    }
    // `exp_total_shift` is the memoized `exp()` of the decoder's total
    // shift (`sx.exp_shift` or `sx.exp_shift_lat`), computed once per
    // kernel per frame instead of once per output pixel.
    let decode = |edge: DelayValue, exp_total_shift: f64| -> f64 {
        let edge = match (cfg.tdc, mode) {
            (Some(tdc), ArithmeticMode::DelayApprox | ArithmeticMode::DelayApproxNoisy) => {
                tdc.quantize(edge, cfg.unit)
            }
            _ => edge,
        };
        edge.decode() * exp_total_shift
    };

    if rails.len() == 1 {
        return decode(rail_raw[0], sx.exp_shift);
    }

    // Split representation: route the dominant rail's difference out.
    let (pos, neg) = (rail_raw[0], rail_raw[1]);
    let (minuend, subtrahend, sign) = if pos <= neg {
        (pos, neg, 1.0)
    } else {
        (neg, pos, -1.0)
    };
    match mode {
        ArithmeticMode::DelayExact => {
            // Exact subtraction is pure mathematics; an nLDE-chain drift
            // fault has no hardware to act on here. The comparator above
            // ordered the operands, so nLDE cannot fail; if the invariant
            // ever broke, saturating to "never" mirrors the hardware
            // (a missing edge, not a crash).
            let diff = ops::nlde(minuend, subtrahend).unwrap_or(DelayValue::ZERO);
            sign * decode(diff, sx.exp_shift)
        }
        ArithmeticMode::DelayApprox => {
            let Some(unit) = arch.nlde_unit() else {
                unreachable!("split kernels carry an nLDE unit")
            };
            let diff = match faults.nlde_drift(k_idx) {
                None => unit.eval_ideal(minuend, subtrahend),
                Some(f) => {
                    if 1.0 + f < 0.0 {
                        stats.saturations += 1;
                    }
                    unit.eval_drifted(minuend, subtrahend, f)
                }
            };
            // The decoder's shift stays nominal: the fixed readout cannot
            // know the chains drifted, which is exactly how drift becomes
            // output error.
            sign * decode(diff, sx.exp_shift_lat)
        }
        ArithmeticMode::DelayApproxNoisy => {
            let Some(unit) = arch.nlde_unit() else {
                unreachable!("split kernels carry an nLDE unit")
            };
            let realization = cfg.noise.begin_eval(cfg.unit, rng);
            let diff = match faults.nlde_drift(k_idx) {
                None => unit.eval_noisy(minuend, subtrahend, &realization, rng),
                Some(f) => {
                    if 1.0 + f < 0.0 {
                        stats.saturations += 1;
                    }
                    unit.eval_noisy_drifted(minuend, subtrahend, &realization, rng, f)
                }
            };
            sign * decode(diff, sx.exp_shift_lat)
        }
        ArithmeticMode::ImportanceExact => unreachable!("handled in run_importance"),
    }
}

/// Pushes a sequence of frames through the architecture (a rolling camera
/// stream): each frame gets a distinct derived seed, and the engine's
/// per-frame energy and timing aggregate linearly — the pipelining claim
/// of §5.3 (the engine never becomes the bottleneck; the camera does).
///
/// Returns one [`RunResult`] per frame.
///
/// # Errors
///
/// Returns [`ExecError::DimensionMismatch`] for the first frame that does
/// not match the compiled geometry.
pub fn run_sequence(
    arch: &Architecture,
    frames: &[Image],
    mode: ArithmeticMode,
    seed: u64,
) -> Result<Vec<RunResult>, ExecError> {
    frames
        .iter()
        .enumerate()
        .map(|(i, frame)| {
            run(
                arch,
                frame,
                mode,
                derive_seed(seed, Domain::Frame, i as u64),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::fault::{FaultModel, FaultSite};
    use crate::{ArchConfig, SystemDescription};
    use ta_image::{conv, metrics, synth, Kernel};

    fn arch_for(kernels: Vec<Kernel>, stride: usize, size: usize) -> Architecture {
        let desc = SystemDescription::new(size, size, kernels, stride).unwrap();
        Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap()
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let arch = arch_for(vec![Kernel::box_filter(3)], 1, 16);
        let img = synth::natural_image(8, 8, 0);
        assert!(matches!(
            run(&arch, &img, ArithmeticMode::DelayExact, 0),
            Err(ExecError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn importance_mode_equals_software_conv() {
        let arch = arch_for(vec![Kernel::sobel_x(), Kernel::sobel_y()], 1, 24);
        let img = synth::natural_image(24, 24, 1);
        let result = run(&arch, &img, ArithmeticMode::ImportanceExact, 0).unwrap();
        for (out, kernel) in result.outputs.iter().zip(arch.desc().kernels()) {
            let reference = conv::convolve(&img, kernel, 1);
            assert!(metrics::rmse(out, &reference) < 1e-12);
        }
    }

    #[test]
    fn delay_exact_equals_software_conv() {
        // §5.1: exact delay-space ops reproduce software convolution after
        // conversion back to importance space.
        for kernels in [
            vec![Kernel::pyr_down_5x5()],
            vec![Kernel::sobel_x(), Kernel::sobel_y()],
        ] {
            let stride = if kernels[0].width() == 5 { 2 } else { 1 };
            let arch = arch_for(kernels, stride, 24);
            let img = synth::natural_image(24, 24, 2);
            let result = run(&arch, &img, ArithmeticMode::DelayExact, 0).unwrap();
            for (out, kernel) in result.outputs.iter().zip(arch.desc().kernels()) {
                // The VTC's dynamic-range floor clips pixels below e^-6;
                // compare against the convolution of the clipped image.
                let clipped = img.map(|p| p.max((-6.0_f64).exp()));
                let reference = conv::convolve(&clipped, kernel, stride);
                let err = metrics::normalized_rmse(out, &reference);
                assert!(err < 1e-9, "{}: nrmse {err}", kernel.name());
            }
        }
    }

    #[test]
    fn approx_mode_tracks_reference_within_percent_band() {
        let arch = arch_for(vec![Kernel::pyr_down_5x5()], 2, 32);
        let img = synth::natural_image(32, 32, 3);
        let result = run(&arch, &img, ArithmeticMode::DelayApprox, 0).unwrap();
        let reference = conv::convolve(&img, &Kernel::pyr_down_5x5(), 2);
        let err = metrics::normalized_rmse(&result.outputs[0], &reference);
        assert!(err > 0.0, "approximation must not be exact");
        assert!(err < 0.1, "nrmse {err}");
    }

    #[test]
    fn approx_split_kernel_keeps_signs() {
        let arch = arch_for(vec![Kernel::sobel_x()], 1, 24);
        // A hard vertical edge: strong positive response at the edge.
        let img = Image::from_fn(24, 24, |x, _| if x < 12 { 0.1 } else { 0.9 });
        let result = run(&arch, &img, ArithmeticMode::DelayApprox, 0).unwrap();
        let reference = conv::convolve(&img, &Kernel::sobel_x(), 1);
        // Sign agreement on strong responses.
        let out = &result.outputs[0];
        for y in 0..out.height() {
            for x in 0..out.width() {
                let r = reference.get(x, y);
                if r.abs() > 0.5 {
                    assert!(
                        out.get(x, y) * r > 0.0,
                        "sign flip at ({x},{y}): {} vs {r}",
                        out.get(x, y)
                    );
                }
            }
        }
    }

    #[test]
    fn noisy_mode_is_seeded_and_degrades_gracefully() {
        let arch = arch_for(vec![Kernel::pyr_down_5x5()], 2, 32);
        let img = synth::natural_image(32, 32, 4);
        let a = run(&arch, &img, ArithmeticMode::DelayApproxNoisy, 42).unwrap();
        let b = run(&arch, &img, ArithmeticMode::DelayApproxNoisy, 42).unwrap();
        assert_eq!(a.outputs[0], b.outputs[0], "same seed, same frame");
        let c = run(&arch, &img, ArithmeticMode::DelayApproxNoisy, 43).unwrap();
        assert_ne!(a.outputs[0], c.outputs[0], "seeds must differ");

        let reference = conv::convolve(&img, &Kernel::pyr_down_5x5(), 2);
        let noisy_err = metrics::normalized_rmse(&a.outputs[0], &reference);
        let clean = run(&arch, &img, ArithmeticMode::DelayApprox, 0).unwrap();
        let clean_err = metrics::normalized_rmse(&clean.outputs[0], &reference);
        assert!(noisy_err > clean_err * 0.5, "noise should not help much");
        assert!(noisy_err < 0.2, "noisy nrmse {noisy_err}");
    }

    #[test]
    fn related_seeds_produce_independent_noise() {
        // Regression for the old `seed ^ 0x7a11_5eed` purpose fold: the
        // engine xor'ed a constant into the caller's seed, so seeds `s`
        // and `s ^ 0x7a11_5eed` collapsed onto the identical noise
        // stream. Derived per-row streams must keep them independent.
        let arch = arch_for(vec![Kernel::pyr_down_5x5()], 2, 32);
        let img = synth::natural_image(32, 32, 4);
        let s = 42u64;
        let a = run(&arch, &img, ArithmeticMode::DelayApproxNoisy, s).unwrap();
        let b = run(
            &arch,
            &img,
            ArithmeticMode::DelayApproxNoisy,
            s ^ 0x7a11_5eed,
        )
        .unwrap();
        assert_ne!(
            a.outputs[0], b.outputs[0],
            "xor-related seeds must not alias onto one noise stream"
        );
    }

    #[test]
    fn sequences_aggregate_linearly_with_distinct_noise() {
        let arch = arch_for(vec![Kernel::box_filter(3)], 1, 16);
        let frames: Vec<_> = (0..3).map(|i| synth::natural_image(16, 16, i)).collect();
        let runs = run_sequence(&arch, &frames, ArithmeticMode::DelayApproxNoisy, 7).unwrap();
        assert_eq!(runs.len(), 3);
        let total: f64 = runs.iter().map(|r| r.energy.total_pj()).sum();
        assert!((total - 3.0 * runs[0].energy.total_pj()).abs() < 1e-9);
        // Identical frames still draw different noise per position.
        let same = vec![frames[0].clone(), frames[0].clone()];
        let reruns = run_sequence(&arch, &same, ArithmeticMode::DelayApproxNoisy, 7).unwrap();
        assert_ne!(reruns[0].outputs[0], reruns[1].outputs[0]);
    }

    #[test]
    fn degenerate_geometries_run() {
        // 1×1 kernel, stride larger than the kernel, image exactly
        // kernel-sized.
        for (kernels, stride, size) in [
            (vec![Kernel::new("id", 1, 1, vec![0.5])], 3, 9),
            (vec![Kernel::box_filter(3)], 5, 13),
            (vec![Kernel::box_filter(3)], 1, 3),
        ] {
            let arch = arch_for(kernels.clone(), stride, size);
            let img = synth::natural_image(size, size, 2);
            let run = run(&arch, &img, ArithmeticMode::DelayExact, 0).unwrap();
            let reference =
                conv::convolve(&img.map(|p| p.max((-6.0_f64).exp())), &kernels[0], stride);
            assert!(
                metrics::normalized_rmse(&run.outputs[0], &reference) < 1e-9,
                "{} s{stride} {size}px",
                kernels[0].name()
            );
        }
    }

    #[test]
    fn energy_identical_across_modes() {
        let arch = arch_for(vec![Kernel::sobel_x()], 1, 16);
        let img = synth::natural_image(16, 16, 5);
        let e: Vec<f64> = ArithmeticMode::ALL
            .iter()
            .map(|&m| run(&arch, &img, m, 1).unwrap().energy.total_pj())
            .collect();
        for w in e.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert!(e[0] > 0.0);
    }

    #[test]
    fn empty_fault_map_is_bit_identical() {
        // Acceptance gate of the fault subsystem: with no faults injected,
        // every delay mode's output carries the exact same bits as the
        // fault-free engine.
        let arch = arch_for(vec![Kernel::sobel_x(), Kernel::sobel_y()], 1, 12);
        let img = synth::natural_image(12, 12, 6);
        let empty = FaultMap::new();
        for mode in [
            ArithmeticMode::DelayExact,
            ArithmeticMode::DelayApprox,
            ArithmeticMode::DelayApproxNoisy,
        ] {
            let plain = run(&arch, &img, mode, 11).unwrap();
            let faulty = run_faulty(&arch, &img, mode, 11, &empty).unwrap();
            for (a, b) in plain.outputs.iter().zip(&faulty.outputs) {
                for (pa, pb) in a.pixels().iter().zip(b.pixels()) {
                    assert_eq!(pa.to_bits(), pb.to_bits(), "{mode:?}");
                }
            }
            assert_eq!(faulty.fault_stats, FaultStats::default());
        }
    }

    #[test]
    fn importance_mode_rejects_faults() {
        let arch = arch_for(vec![Kernel::box_filter(3)], 1, 8);
        let img = synth::natural_image(8, 8, 0);
        assert!(matches!(
            run_faulty(
                &arch,
                &img,
                ArithmeticMode::ImportanceExact,
                0,
                &FaultMap::new()
            ),
            Err(ExecError::Fault(FaultError::UnsupportedMode(_)))
        ));
    }

    #[test]
    fn faulty_runs_are_seeded_and_reproducible() {
        let arch = arch_for(vec![Kernel::sobel_x()], 1, 12);
        let img = synth::natural_image(12, 12, 7);
        let map = FaultModel::with_rate(0.05).unwrap().sample(&arch, 3);
        assert!(!map.is_empty());
        let a = run_faulty(&arch, &img, ArithmeticMode::DelayApproxNoisy, 9, &map).unwrap();
        let b = run_faulty(&arch, &img, ArithmeticMode::DelayApproxNoisy, 9, &map).unwrap();
        assert_eq!(a.outputs[0], b.outputs[0]);
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(a.fault_stats.sites_injected, map.len());
    }

    #[test]
    fn stuck_weight_degrades_but_never_panics_or_nans() {
        let arch = arch_for(vec![Kernel::sobel_x()], 1, 12);
        let img = synth::natural_image(12, 12, 8);
        let clean = run(&arch, &img, ArithmeticMode::DelayApprox, 0).unwrap();
        let reference = conv::convolve(&img, &Kernel::sobel_x(), 1);

        let mut map = FaultMap::new();
        map.insert(
            FaultSite::WeightLine {
                kernel: 0,
                rail: Rail::Pos,
                ky: 0,
                kx: 2,
            },
            FaultKind::StuckAtNever,
        )
        .unwrap();
        let faulty = run_faulty(&arch, &img, ArithmeticMode::DelayApprox, 0, &map).unwrap();
        assert!(faulty.outputs[0].pixels().iter().all(|p| p.is_finite()));
        assert!(faulty.fault_stats.edges_faulted > 0);
        let clean_err = metrics::normalized_rmse(&clean.outputs[0], &reference);
        let faulty_err = metrics::normalized_rmse(&faulty.outputs[0], &reference);
        assert!(
            faulty_err > clean_err,
            "a stuck weight line must hurt accuracy: {faulty_err} vs {clean_err}"
        );
    }

    #[test]
    fn drift_faults_saturate_gracefully() {
        let arch = arch_for(vec![Kernel::pyr_down_5x5()], 2, 16);
        let img = synth::natural_image(16, 16, 9);
        let mut map = FaultMap::new();
        // Below -100%: the loop line and a weight line saturate at zero
        // delay rather than advancing edges.
        map.insert(
            FaultSite::LoopLine {
                kernel: 0,
                rail: Rail::Pos,
            },
            FaultKind::DelayDrift { fraction: -2.0 },
        )
        .unwrap();
        map.insert(
            FaultSite::WeightLine {
                kernel: 0,
                rail: Rail::Pos,
                ky: 2,
                kx: 2,
            },
            FaultKind::DelayDrift { fraction: -3.0 },
        )
        .unwrap();
        let faulty = run_faulty(&arch, &img, ArithmeticMode::DelayApprox, 0, &map).unwrap();
        assert!(faulty.outputs[0].pixels().iter().all(|p| p.is_finite()));
        assert!(faulty.fault_stats.saturations > 0);
    }
}
