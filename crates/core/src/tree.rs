//! Functional model of the nLSE accumulation tree (§4.3).
//!
//! The tree is built recursively over its leaves exactly like the
//! gate-level constructor in `ta_race_logic::blocks::build_nlse_tree`:
//! the left subtree takes `ceil(n/2)` leaves, shallower subtrees are
//! path-balanced with delays equal to one nLSE block latency per skipped
//! level (inserted as deep as possible), and the root's output carries a
//! uniform shift of `depth × K`.

use rand::rngs::SmallRng;
use ta_circuits::{NlseUnit, NoiseRealization};
use ta_delay_space::{ops, DelayValue};

/// How tree nodes combine values.
pub(crate) enum TreeOps<'a> {
    /// Exact nLSE (zero latency, no balancing needed).
    Exact,
    /// Ideal approximation hardware.
    Approx(&'a NlseUnit),
    /// Approximation hardware with noisy delay elements.
    Noisy(&'a NlseUnit, &'a NoiseRealization),
    /// Approximation hardware whose shared chains (unit taps and the
    /// balancing delay lines alike) have drifted by a multiplicative
    /// fraction — the tree-chain fault-injection path.
    Drifted(&'a NlseUnit, f64),
    /// Drifted chains with noisy delay elements on top.
    NoisyDrifted(&'a NlseUnit, &'a NoiseRealization, f64),
}

impl TreeOps<'_> {
    /// The per-level latency `K` in abstract units (the *design* latency:
    /// drift perturbs realised delays, not the balancing structure).
    /// The iterative executor pre-applies `K` into the plan's balance
    /// table instead; only the recursive reference engine still asks.
    #[cfg(any(test, feature = "reference"))]
    pub(crate) fn k(&self) -> f64 {
        match self {
            TreeOps::Exact => 0.0,
            TreeOps::Approx(u)
            | TreeOps::Noisy(u, _)
            | TreeOps::Drifted(u, _)
            | TreeOps::NoisyDrifted(u, _, _) => u.latency_units(),
        }
    }

    /// The multiplicative factor drift applies to realised chain delays.
    fn drift_factor(&self) -> f64 {
        match self {
            TreeOps::Exact | TreeOps::Approx(_) | TreeOps::Noisy(..) => 1.0,
            TreeOps::Drifted(_, f) | TreeOps::NoisyDrifted(_, _, f) => (1.0 + f).max(0.0),
        }
    }

    pub(crate) fn combine(&self, a: DelayValue, b: DelayValue, rng: &mut SmallRng) -> DelayValue {
        match self {
            TreeOps::Exact => ops::nlse(a, b),
            TreeOps::Approx(u) => u.eval_ideal(a, b),
            TreeOps::Noisy(u, r) => u.eval_noisy(a, b, r, rng),
            TreeOps::Drifted(u, f) => u.eval_drifted(a, b, *f),
            TreeOps::NoisyDrifted(u, r, f) => u.eval_noisy_drifted(a, b, r, rng, *f),
        }
    }

    pub(crate) fn balance(&self, v: DelayValue, units: f64, rng: &mut SmallRng) -> DelayValue {
        if units == 0.0 || v.is_never() {
            return v;
        }
        match self {
            TreeOps::Exact | TreeOps::Approx(_) => v.delayed(units),
            TreeOps::Noisy(_, r) => v.delayed(r.perturb_units(units, rng)),
            TreeOps::Drifted(..) => v.delayed(units * self.drift_factor()),
            TreeOps::NoisyDrifted(_, r, _) => {
                v.delayed(r.perturb_units(units * self.drift_factor(), rng))
            }
        }
    }
}

/// Tree depth (levels of nLSE blocks) for a given fan-in.
pub(crate) fn depth(fan_in: usize) -> u32 {
    assert!(fan_in >= 1, "tree needs at least one leaf");
    let mut d = 0;
    let mut n = fan_in;
    while n > 1 {
        n = n.div_ceil(2);
        d += 1;
    }
    d
}

/// Evaluates the tree over `leaves`, returning the root edge (including
/// the uniform `depth × K` shift for approximate modes). Superseded on
/// the hot path by the compiled plan (`crate::plan`); kept for the unit
/// tests that pin the tree semantics the plan must reproduce.
#[cfg(test)]
pub(crate) fn eval(ops: &TreeOps<'_>, leaves: &[DelayValue], rng: &mut SmallRng) -> DelayValue {
    assert!(!leaves.is_empty(), "tree needs at least one leaf");
    eval_rec(ops, leaves, rng).0
}

#[cfg(test)]
fn eval_rec(ops: &TreeOps<'_>, leaves: &[DelayValue], rng: &mut SmallRng) -> (DelayValue, u32) {
    if leaves.len() == 1 {
        return (leaves[0], 0);
    }
    let mid = leaves.len().div_ceil(2);
    let (mut left, l_lv) = eval_rec(ops, &leaves[..mid], rng);
    let (mut right, r_lv) = eval_rec(ops, &leaves[mid..], rng);
    let levels = l_lv.max(r_lv);
    let k = ops.k();
    if l_lv < levels {
        left = ops.balance(left, (levels - l_lv) as f64 * k, rng);
    }
    if r_lv < levels {
        right = ops.balance(right, (levels - r_lv) as f64 * k, rng);
    }
    (ops.combine(left, right, rng), levels + 1)
}

/// Per-evaluation energy bookkeeping of one tree pass: returns
/// `(nlse_op_fired_input_counts, balancing_delay_units_fired)` given which
/// leaves fire. Mirrors the recursion exactly so the static energy model
/// charges precisely the hardware that switches.
pub(crate) fn firing_profile(fired: &[bool]) -> FiringProfile {
    let mut profile = FiringProfile::default();
    profile_rec(fired, &mut profile);
    profile
}

/// Switching activity of one tree evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FiringProfile {
    /// One entry per internal nLSE block: how many of its two inputs fire.
    pub fired_inputs: Vec<usize>,
    /// Total balancing delay traversed by firing edges, in units of `K`.
    pub balance_k_units: f64,
}

fn profile_rec(fired: &[bool], profile: &mut FiringProfile) -> (bool, u32) {
    if fired.len() == 1 {
        return (fired[0], 0);
    }
    let mid = fired.len().div_ceil(2);
    let (l_fires, l_lv) = profile_rec(&fired[..mid], profile);
    let (r_fires, r_lv) = profile_rec(&fired[mid..], profile);
    let levels = l_lv.max(r_lv);
    if l_fires && l_lv < levels {
        profile.balance_k_units += (levels - l_lv) as f64;
    }
    if r_fires && r_lv < levels {
        profile.balance_k_units += (levels - r_lv) as f64;
    }
    profile
        .fired_inputs
        .push(l_fires as usize + r_fires as usize);
    (l_fires || r_fires, levels + 1)
}

/// Total *static* balancing delay built into a tree of the given fan-in,
/// in units of `K` (for area accounting).
pub(crate) fn static_balance_k_units(fan_in: usize) -> f64 {
    fn rec(n: usize) -> (f64, u32) {
        if n == 1 {
            return (0.0, 0);
        }
        let mid = n.div_ceil(2);
        let (l_sum, l_lv) = rec(mid);
        let (r_sum, r_lv) = rec(n - mid);
        let levels = l_lv.max(r_lv);
        let balance = (levels - l_lv) as f64 + (levels - r_lv) as f64;
        (l_sum + r_sum + balance, levels + 1)
    }
    rec(fan_in).0
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use rand::SeedableRng;
    use ta_circuits::UnitScale;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn dv(t: f64) -> DelayValue {
        DelayValue::from_delay(t)
    }

    #[test]
    fn depth_formula() {
        assert_eq!(depth(1), 0);
        assert_eq!(depth(2), 1);
        assert_eq!(depth(3), 2);
        assert_eq!(depth(4), 2);
        assert_eq!(depth(5), 3);
        assert_eq!(depth(8), 3);
        assert_eq!(depth(9), 4);
    }

    #[test]
    fn exact_tree_is_nary_nlse() {
        let leaves: Vec<DelayValue> = [0.3, 1.2, 0.7, 2.0, 0.1].iter().map(|&t| dv(t)).collect();
        let got = eval(&TreeOps::Exact, &leaves, &mut rng());
        let expect = ops::nlse_many(&leaves);
        assert!((got.delay() - expect.delay()).abs() < 1e-12);
    }

    #[test]
    fn approx_tree_shift_is_depth_times_k() {
        let unit = NlseUnit::with_terms(5, UnitScale::default_1ns());
        let k = unit.latency_units();
        let tree_ops = TreeOps::Approx(&unit);
        // All-equal inputs of a 4-leaf tree: every level adds exactly K
        // plus the approximation of a 2-way equal merge.
        let leaves = vec![dv(1.0); 4];
        let got = eval(&tree_ops, &leaves, &mut rng());
        let exact = ops::nlse_many(&leaves);
        let err = got.delay() - 2.0 * k - exact.delay();
        assert!(
            err.abs() < 2.0 * unit.approx().max_slice_error() + 1e-9,
            "err {err}"
        );
    }

    #[test]
    fn approx_tree_matches_race_logic_netlist() {
        use ta_race_logic::{blocks, CircuitBuilder};
        let unit = NlseUnit::with_terms(4, UnitScale::default_1ns());
        let k = unit.latency_units();

        let mut b = CircuitBuilder::new();
        let ins: Vec<_> = (0..5).map(|i| b.input(format!("i{i}"))).collect();
        let out = blocks::build_nlse_tree(&mut b, &ins, unit.approx().terms(), k);
        b.output("o", out.node);
        let circuit = b.build().unwrap();

        let leaves: Vec<DelayValue> = [0.5, 2.2, 1.1, 0.05, 3.0].iter().map(|&t| dv(t)).collect();
        let net = circuit.evaluate(&leaves).unwrap()[0];
        let fun = eval(&TreeOps::Approx(&unit), &leaves, &mut rng());
        assert!(
            (net.delay() - fun.delay()).abs() < 1e-9,
            "netlist {} vs functional {}",
            net.delay(),
            fun.delay()
        );
    }

    #[test]
    fn never_leaves_pass_through() {
        let unit = NlseUnit::with_terms(3, UnitScale::default_1ns());
        let tree_ops = TreeOps::Approx(&unit);
        let k = unit.latency_units();
        // Single firing leaf in a 4-leaf tree: output = leaf + depth·K.
        let leaves = vec![
            DelayValue::ZERO,
            dv(1.5),
            DelayValue::ZERO,
            DelayValue::ZERO,
        ];
        let got = eval(&tree_ops, &leaves, &mut rng());
        assert!((got.delay() - (1.5 + 2.0 * k)).abs() < 1e-9);
        // All-never: never.
        let none = vec![DelayValue::ZERO; 4];
        assert!(eval(&tree_ops, &none, &mut rng()).is_never());
    }

    #[test]
    fn firing_profile_counts() {
        // 3 leaves: tree is ((l0,l1),(l2 balanced)). Two internal nodes.
        let p = firing_profile(&[true, true, true]);
        assert_eq!(p.fired_inputs.len(), 2);
        assert_eq!(p.fired_inputs.iter().sum::<usize>(), 4);
        assert_eq!(p.balance_k_units, 1.0); // l2 balanced one level

        // Only one leaf fires: each node sees at most 1 fired input.
        let p1 = firing_profile(&[false, true, false]);
        assert_eq!(p1.fired_inputs, vec![1, 1]);
        assert_eq!(p1.balance_k_units, 0.0); // the balanced leaf is silent
    }

    #[test]
    fn static_balance_units() {
        assert_eq!(static_balance_k_units(1), 0.0);
        assert_eq!(static_balance_k_units(2), 0.0);
        assert_eq!(static_balance_k_units(3), 1.0);
        assert_eq!(static_balance_k_units(4), 0.0);
        // 5 leaves: left=3 (one balance), right=2 (depth 1, balanced 1).
        assert_eq!(static_balance_k_units(5), 2.0);
    }

    #[test]
    fn zero_drift_tree_equals_approx() {
        let unit = NlseUnit::with_terms(5, UnitScale::default_1ns());
        let leaves: Vec<DelayValue> = [0.4, 0.9, 1.3, 2.2, 0.05].iter().map(|&t| dv(t)).collect();
        let a = eval(&TreeOps::Approx(&unit), &leaves, &mut rng());
        let b = eval(&TreeOps::Drifted(&unit, 0.0), &leaves, &mut rng());
        assert!((a.delay() - b.delay()).abs() < 1e-12);
    }

    #[test]
    fn drifted_tree_matches_drifted_netlist() {
        use ta_race_logic::{blocks, CircuitBuilder, FaultPlan, NoNoise};
        let unit = NlseUnit::with_terms(4, UnitScale::default_1ns());
        let k = unit.latency_units();

        let mut b = CircuitBuilder::new();
        let ins: Vec<_> = (0..5).map(|i| b.input(format!("i{i}"))).collect();
        let out = blocks::build_nlse_tree(&mut b, &ins, unit.approx().terms(), k);
        b.output("o", out.node);
        let circuit = b.build().unwrap();

        let leaves: Vec<DelayValue> = [0.5, 2.2, 1.1, 0.05, 3.0].iter().map(|&t| dv(t)).collect();
        for &fraction in &[0.15, -0.4, -2.0] {
            let mut plan = FaultPlan::new();
            for (node, _) in circuit.delay_elements() {
                plan.set_delay_drift(node, fraction);
            }
            let (net, _) = circuit
                .evaluate_faulty(&leaves, &mut NoNoise, &plan)
                .unwrap();
            let fun = eval(&TreeOps::Drifted(&unit, fraction), &leaves, &mut rng());
            assert!(
                (net[0].delay() - fun.delay()).abs() < 1e-9,
                "fraction {fraction}: netlist {} vs functional {}",
                net[0].delay(),
                fun.delay()
            );
        }
    }

    #[test]
    fn noisy_tree_with_ideal_realization_equals_approx() {
        let unit = NlseUnit::with_terms(5, UnitScale::default_1ns());
        let r = NoiseRealization::ideal(UnitScale::default_1ns());
        let leaves: Vec<DelayValue> = [0.4, 0.9, 1.3].iter().map(|&t| dv(t)).collect();
        let a = eval(&TreeOps::Approx(&unit), &leaves, &mut rng());
        let b = eval(&TreeOps::Noisy(&unit, &r), &leaves, &mut rng());
        assert!((a.delay() - b.delay()).abs() < 1e-12);
    }
}
