//! Fault-injection campaigns: seeded sweeps over fault rates and
//! per-site sensitivity analysis.
//!
//! A campaign measures *graceful degradation*: it runs the fault-free
//! engine once as its own reference, then replays the same frame with
//! sampled [`FaultMap`]s and reports how far the outputs drift, both as
//! range-normalised RMSE and as structural similarity
//! ([`ta_image::metrics::ssim`]). Everything is derived deterministically
//! from the campaign seed — the same architecture, frame, configuration
//! and seed reproduce the identical report, fault sites included.

use std::fmt;

use ta_image::{metrics, Image};

use crate::exec::{self, ExecError};
use crate::fault::{FaultKind, FaultMap, FaultModel, FaultSite, FaultStats};
use crate::seed::{derive_seed, Domain};
use crate::{enumerate_sites, Architecture, ArithmeticMode};

/// Configuration of one fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Arithmetic mode under test (must not be
    /// [`ArithmeticMode::ImportanceExact`]).
    pub mode: ArithmeticMode,
    /// Execution seed for the engine's own stochastic elements.
    pub seed: u64,
    /// Per-site fault rates to sweep.
    pub rates: Vec<f64>,
    /// Independent fault-map draws per rate point.
    pub trials_per_rate: usize,
    /// Drift magnitude for sampled drift faults (sign drawn per site).
    pub drift_fraction: f64,
    /// Advance of sampled spurious-early edges, abstract units.
    pub early_advance_units: f64,
    /// Cap on pixel sites in the sensitivity scan, sampled at an even
    /// stride. Weight lines and shared chains are always scanned; pixel
    /// arrays grow with the frame and would dominate the campaign.
    pub max_pixel_sites: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            mode: ArithmeticMode::DelayApprox,
            seed: 0,
            rates: vec![0.0, 0.001, 0.01, 0.05, 0.1],
            trials_per_rate: 3,
            drift_fraction: 0.2,
            early_advance_units: 0.5,
            max_pixel_sites: 16,
        }
    }
}

/// Aggregate degradation at one fault rate.
#[derive(Debug, Clone, PartialEq)]
pub struct RatePoint {
    /// Per-site fault probability.
    pub rate: f64,
    /// Fault-map draws aggregated here.
    pub trials: usize,
    /// Mean number of faulted sites per trial.
    pub mean_sites: f64,
    /// Mean pooled range-normalised RMSE against the fault-free run.
    pub mean_rmse: f64,
    /// Worst trial's pooled RMSE.
    pub worst_rmse: f64,
    /// Mean SSIM (over kernels and trials) against the fault-free run.
    pub mean_ssim: f64,
    /// Degradation counters summed over the trials.
    pub stats: FaultStats,
}

/// Degradation caused by a single fault at a single site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSensitivity {
    /// The faulted site.
    pub site: FaultSite,
    /// The representative fault injected there.
    pub kind: FaultKind,
    /// Pooled range-normalised RMSE against the fault-free run.
    pub rmse: f64,
    /// Mean SSIM over kernels against the fault-free run.
    pub ssim: f64,
    /// The run's degradation counters.
    pub stats: FaultStats,
}

/// The full, reproducible outcome of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Mode the campaign ran in.
    pub mode: ArithmeticMode,
    /// Campaign seed (fault sampling and execution).
    pub seed: u64,
    /// One aggregate per swept rate, in sweep order.
    pub rate_sweep: Vec<RatePoint>,
    /// Single-fault sensitivity per scanned site, most damaging first.
    pub site_sensitivity: Vec<SiteSensitivity>,
    /// Pixel sites scanned / pixel sites in the architecture (the scan
    /// strides the array when capped, and says so rather than silently
    /// claiming full coverage).
    pub pixel_sites_scanned: (usize, usize),
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault campaign ({:?}, seed {})", self.mode, self.seed)?;
        writeln!(f, "rate sweep:")?;
        writeln!(
            f,
            "  {:>7}  {:>6}  {:>11}  {:>11}  {:>9}  {:>6}  {:>5}",
            "rate", "sites", "nRMSE mean", "nRMSE worst", "SSIM", "edges", "sat"
        )?;
        for p in &self.rate_sweep {
            writeln!(
                f,
                "  {:>7.4}  {:>6.1}  {:>11.6}  {:>11.6}  {:>9.4}  {:>6}  {:>5}",
                p.rate,
                p.mean_sites,
                p.mean_rmse,
                p.worst_rmse,
                p.mean_ssim,
                p.stats.edges_faulted,
                p.stats.saturations
            )?;
        }
        let shown = self.site_sensitivity.len().min(12);
        writeln!(
            f,
            "site sensitivity (top {shown} of {} scanned; {} of {} pixel sites sampled):",
            self.site_sensitivity.len(),
            self.pixel_sites_scanned.0,
            self.pixel_sites_scanned.1
        )?;
        writeln!(
            f,
            "  {:>16}  {:>16}  {:>11}  {:>9}",
            "site", "kind", "nRMSE", "SSIM"
        )?;
        for s in &self.site_sensitivity[..shown] {
            writeln!(
                f,
                "  {:>16}  {:>16}  {:>11.6}  {:>9.4}",
                s.site.to_string(),
                s.kind.to_string(),
                s.rmse,
                s.ssim
            )?;
        }
        Ok(())
    }
}

/// Degradation of `result` against the fault-free `baseline`: pooled
/// normalised RMSE and mean SSIM over kernel outputs.
fn degradation(result: &[Image], baseline: &[Image]) -> (f64, f64) {
    let rmses: Vec<f64> = result
        .iter()
        .zip(baseline)
        .map(|(o, b)| metrics::normalized_rmse(o, b))
        .collect();
    let ssim = result
        .iter()
        .zip(baseline)
        .map(|(o, b)| metrics::ssim(o, b))
        .sum::<f64>()
        / result.len() as f64;
    (metrics::pool_rmse(&rmses), ssim)
}

/// The representative fault for a site's sensitivity probe: the hardest
/// edge fault for elements that carry their own edge, the configured
/// drift for shared chains.
fn probe_kind(site: FaultSite, cfg: &CampaignConfig) -> FaultKind {
    match site {
        FaultSite::WeightLine { .. } | FaultSite::Pixel { .. } => FaultKind::StuckAtNever,
        _ => FaultKind::DelayDrift {
            fraction: cfg.drift_fraction,
        },
    }
}

/// Runs a full campaign for one frame: a fault-free reference run, the
/// rate sweep, then the per-site sensitivity scan.
///
/// # Errors
///
/// Propagates [`ExecError`] from the underlying runs — geometry mismatch,
/// an invalid rate in `cfg.rates`, or an unsupported mode.
pub fn run_campaign(
    arch: &Architecture,
    image: &Image,
    cfg: &CampaignConfig,
) -> Result<CampaignReport, ExecError> {
    let baseline = exec::run(arch, image, cfg.mode, cfg.seed)?;
    let pool = ta_pool::Pool::current();

    // Validate every rate up front (cheap, and keeps error order stable),
    // then fan the (rate, trial) grid out over the pool: each trial's
    // fault map is sampled from a seed derived from its flat index, so
    // the grid is a pure function of the campaign seed and the schedule
    // cannot change what is sampled. Per-trial results come back in
    // index order and are folded serially, keeping every f64 sum in the
    // same order as the serial engine.
    let models = cfg
        .rates
        .iter()
        .map(|&rate| {
            FaultModel {
                rate,
                drift_fraction: cfg.drift_fraction,
                early_advance_units: cfg.early_advance_units,
            }
            .validated()
            .map_err(ExecError::from)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let trials = pool.map(cfg.rates.len() * cfg.trials_per_rate, |flat| {
        let r_idx = flat / cfg.trials_per_rate.max(1);
        let map =
            models[r_idx].sample(arch, derive_seed(cfg.seed, Domain::FaultTrial, flat as u64));
        let run = exec::run_faulty(arch, image, cfg.mode, cfg.seed, &map)?;
        let (rmse, ssim) = degradation(&run.outputs, &baseline.outputs);
        Ok::<_, ExecError>((map.len(), rmse, ssim, run.fault_stats))
    });

    let mut rate_sweep = Vec::with_capacity(cfg.rates.len());
    let mut trials = trials.into_iter();
    for &rate in &cfg.rates {
        let mut point = RatePoint {
            rate,
            trials: cfg.trials_per_rate,
            mean_sites: 0.0,
            mean_rmse: 0.0,
            worst_rmse: 0.0,
            mean_ssim: 0.0,
            stats: FaultStats::default(),
        };
        for _ in 0..cfg.trials_per_rate {
            let (sites, rmse, ssim, stats) = trials
                .next()
                .unwrap_or_else(|| unreachable!("trial grid sized rates × trials"))?;
            point.mean_sites += sites as f64;
            point.mean_rmse += rmse;
            point.worst_rmse = point.worst_rmse.max(rmse);
            point.mean_ssim += ssim;
            point.stats.merge(&stats);
        }
        let n = cfg.trials_per_rate.max(1) as f64;
        point.mean_sites /= n;
        point.mean_rmse /= n;
        point.mean_ssim /= n;
        rate_sweep.push(point);
    }

    // Sensitivity: one run per site with a single representative fault.
    // Pixel sites are strided down to the configured cap.
    let all_sites = enumerate_sites(arch);
    let total_pixels = all_sites
        .iter()
        .filter(|s| matches!(s, FaultSite::Pixel { .. }))
        .count();
    let pixel_stride = if cfg.max_pixel_sites == 0 {
        usize::MAX
    } else {
        total_pixels.div_ceil(cfg.max_pixel_sites).max(1)
    };
    let mut pixel_idx = 0usize;
    let mut scanned_pixels = 0usize;
    let mut scan: Vec<(FaultSite, FaultKind)> = Vec::new();
    for site in all_sites {
        if matches!(site, FaultSite::Pixel { .. }) {
            let keep = pixel_idx.is_multiple_of(pixel_stride);
            pixel_idx += 1;
            if !keep {
                continue;
            }
            scanned_pixels += 1;
        }
        scan.push((site, probe_kind(site, cfg)));
    }
    // Each probe is an independent single-fault run against the shared
    // baseline — a pure function of its (site, kind) pair — so the scan
    // fans out over the pool and collects in site order before sorting.
    let mut site_sensitivity = pool
        .map(scan.len(), |i| {
            let (site, kind) = scan[i];
            let mut map = FaultMap::new();
            map.insert(site, kind).map_err(ExecError::from)?;
            let run = exec::run_faulty(arch, image, cfg.mode, cfg.seed, &map)?;
            let (rmse, ssim) = degradation(&run.outputs, &baseline.outputs);
            Ok::<_, ExecError>(SiteSensitivity {
                site,
                kind,
                rmse,
                ssim,
                stats: run.fault_stats,
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    site_sensitivity.sort_by(|a, b| {
        b.rmse
            .partial_cmp(&a.rmse)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.site.cmp(&b.site))
    });

    Ok(CampaignReport {
        mode: cfg.mode,
        seed: cfg.seed,
        rate_sweep,
        site_sensitivity,
        pixel_sites_scanned: (scanned_pixels, total_pixels),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::{ArchConfig, SystemDescription};
    use ta_image::{synth, Kernel};

    fn small_campaign_cfg() -> CampaignConfig {
        CampaignConfig {
            rates: vec![0.0, 0.3],
            trials_per_rate: 2,
            max_pixel_sites: 4,
            ..CampaignConfig::default()
        }
    }

    fn arch() -> Architecture {
        let desc = SystemDescription::new(8, 8, vec![Kernel::box_filter(3)], 1).unwrap();
        Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap()
    }

    #[test]
    fn campaign_is_reproducible() {
        let arch = arch();
        let img = synth::natural_image(8, 8, 1);
        let cfg = small_campaign_cfg();
        let a = run_campaign(&arch, &img, &cfg).unwrap();
        let b = run_campaign(&arch, &img, &cfg).unwrap();
        assert_eq!(a, b, "same seed must reproduce the identical report");
        let c = run_campaign(&arch, &img, &CampaignConfig { seed: 1, ..cfg }).unwrap();
        assert_ne!(a, c, "a different seed must explore different faults");
    }

    #[test]
    fn rate_zero_is_pristine_and_rates_degrade() {
        let arch = arch();
        let img = synth::natural_image(8, 8, 2);
        let report = run_campaign(&arch, &img, &small_campaign_cfg()).unwrap();
        let zero = &report.rate_sweep[0];
        assert_eq!(zero.rate, 0.0);
        assert_eq!(zero.mean_rmse, 0.0);
        assert!((zero.mean_ssim - 1.0).abs() < 1e-12);
        assert_eq!(zero.stats, FaultStats::default());
        let hot = &report.rate_sweep[1];
        assert!(hot.mean_sites > 0.0);
        assert!(hot.mean_rmse > 0.0, "faults at 30 % must move the output");
        assert!(hot.mean_rmse.is_finite() && hot.worst_rmse >= hot.mean_rmse);
    }

    #[test]
    fn sensitivity_is_sorted_and_respects_pixel_cap() {
        let arch = arch();
        let img = synth::natural_image(8, 8, 3);
        let cfg = small_campaign_cfg();
        let report = run_campaign(&arch, &img, &cfg).unwrap();
        assert!(report
            .site_sensitivity
            .windows(2)
            .all(|w| w[0].rmse >= w[1].rmse));
        let (scanned, total) = report.pixel_sites_scanned;
        assert_eq!(total, 64);
        assert!(scanned <= cfg.max_pixel_sites + 1, "{scanned}");
        // 9 weight lines + tree + loop always scanned.
        assert!(report.site_sensitivity.len() >= 11);
        let display = report.to_string();
        assert!(display.contains("rate sweep"));
        assert!(display.contains("site sensitivity"));
    }
}
