//! Run results, timing reports and output validation.

use std::error::Error as StdError;
use std::fmt;

use ta_circuits::EnergyTally;
use ta_image::Image;

use crate::ArithmeticMode;

/// Why a completed run's output was rejected by validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ValidationError {
    /// An output pixel is NaN or infinite.
    NonFinite {
        /// Kernel output the pixel belongs to.
        kernel: usize,
        /// Pixel column.
        x: usize,
        /// Pixel row.
        y: usize,
        /// `"NaN"` or `"infinite"`, for the diagnostic.
        value_kind: &'static str,
    },
    /// An output drifted beyond the configured nRMSE tolerance against
    /// its reference.
    ToleranceExceeded {
        /// Kernel output that drifted.
        kernel: usize,
        /// Measured range-normalised RMSE.
        nrmse: f64,
        /// Configured tolerance.
        tolerance: f64,
    },
    /// The number or shape of reference images does not match the outputs.
    ReferenceMismatch {
        /// Number of outputs in the run.
        outputs: usize,
        /// Number of references supplied.
        references: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NonFinite {
                kernel,
                x,
                y,
                value_kind,
            } => write!(
                f,
                "kernel {kernel} output has {value_kind} pixel at ({x},{y})"
            ),
            ValidationError::ToleranceExceeded {
                kernel,
                nrmse,
                tolerance,
            } => write!(
                f,
                "kernel {kernel} output nRMSE {nrmse:.6} exceeds tolerance {tolerance:.6}"
            ),
            ValidationError::ReferenceMismatch {
                outputs,
                references,
            } => write!(f, "{outputs} outputs but {references} reference image(s)"),
        }
    }
}

impl StdError for ValidationError {}

/// Timing characteristics of a compiled architecture (Table 2's delay
/// columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Recurrence cycle time (one rolling-shutter row), nanoseconds.
    pub cycle_ns: f64,
    /// Rows per frame including pipeline drain.
    pub cycles_per_frame: usize,
    /// Minimum frame latency, nanoseconds.
    pub frame_delay_ns: f64,
}

impl TimingReport {
    /// The paper's "Max Throughput (Mfps)" figure: the rate at which the
    /// engine can accept row windows, in millions per second (the camera,
    /// not the engine, is the practical limiter — §5.3).
    pub fn max_throughput_mfps(&self) -> f64 {
        1000.0 / self.cycle_ns
    }

    /// Frame delay in milliseconds (Table 3 units).
    pub fn frame_delay_ms(&self) -> f64 {
        self.frame_delay_ns * 1e-6
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:.2} ns × {} rows = {:.2} µs/frame ({:.1} Mfps max)",
            self.cycle_ns,
            self.cycles_per_frame,
            self.frame_delay_ns * 1e-3,
            self.max_throughput_mfps()
        )
    }
}

/// The outcome of pushing one image through the architecture.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// One decoded output image per kernel, in importance space (signed
    /// values for split kernels).
    pub outputs: Vec<Image>,
    /// Frame energy, broken down by category.
    pub energy: EnergyTally,
    /// Timing of the compiled architecture.
    pub timing: TimingReport,
    /// The arithmetic mode the run used.
    pub mode: ArithmeticMode,
    /// Graceful-degradation counters accumulated during the run; all-zero
    /// outside fault-injection campaigns.
    pub fault_stats: crate::fault::FaultStats,
    /// Dynamic operation counts observed while the frame executed
    /// (all-zero for [`ArithmeticMode::ImportanceExact`], which models no
    /// hardware). The data-independent counts match
    /// [`crate::Architecture::op_census`] exactly.
    pub ops: crate::census::OpCounts,
    /// Per-stage wall-clock times, present only when the global tracer's
    /// profiling flag was on during the run (see
    /// [`ta_telemetry::Tracer::set_profiling`]).
    pub stages: Option<crate::census::StageProfile>,
}

impl RunResult {
    /// Range-normalised RMSE of each output against references computed by
    /// software convolution.
    ///
    /// # Panics
    ///
    /// Panics if `references` has a different length or image shapes
    /// mismatch.
    pub fn normalized_rmse(&self, references: &[Image]) -> Vec<f64> {
        assert_eq!(
            self.outputs.len(),
            references.len(),
            "one reference per kernel output"
        );
        self.outputs
            .iter()
            .zip(references)
            .map(|(o, r)| ta_image::metrics::normalized_rmse(o, r))
            .collect()
    }

    /// Pooled (RMS over kernels) normalised RMSE against references.
    ///
    /// # Panics
    ///
    /// Same contract as [`RunResult::normalized_rmse`].
    pub fn pooled_rmse(&self, references: &[Image]) -> f64 {
        ta_image::metrics::pool_rmse(&self.normalized_rmse(references))
    }

    /// Validation hook: every output pixel must be a finite number.
    ///
    /// The temporal engines are designed to saturate rather than produce
    /// NaN/Inf, so a non-finite pixel means the frame is unusable (e.g. a
    /// poisoned input or a bug) and must not propagate into reports.
    ///
    /// # Errors
    ///
    /// [`ValidationError::NonFinite`] naming the first offending pixel.
    pub fn validate_finite(&self) -> Result<(), ValidationError> {
        for (kernel, out) in self.outputs.iter().enumerate() {
            for (i, &p) in out.pixels().iter().enumerate() {
                if !p.is_finite() {
                    return Err(ValidationError::NonFinite {
                        kernel,
                        x: i % out.width(),
                        y: i / out.width(),
                        value_kind: if p.is_nan() { "NaN" } else { "infinite" },
                    });
                }
            }
        }
        Ok(())
    }

    /// Validation hook: every output must be finite *and* stay within
    /// `tolerance` range-normalised RMSE of its reference image.
    ///
    /// # Errors
    ///
    /// [`ValidationError::ReferenceMismatch`] if `references` does not
    /// pair up with the outputs, [`ValidationError::NonFinite`] for a
    /// NaN/Inf pixel, and [`ValidationError::ToleranceExceeded`] for the
    /// first output that drifts beyond the tolerance.
    pub fn validate_against(
        &self,
        references: &[Image],
        tolerance: f64,
    ) -> Result<(), ValidationError> {
        if references.len() != self.outputs.len()
            || self
                .outputs
                .iter()
                .zip(references)
                .any(|(o, r)| (o.width(), o.height()) != (r.width(), r.height()))
        {
            return Err(ValidationError::ReferenceMismatch {
                outputs: self.outputs.len(),
                references: references.len(),
            });
        }
        self.validate_finite()?;
        for (kernel, (out, reference)) in self.outputs.iter().zip(references).enumerate() {
            let nrmse = ta_image::metrics::normalized_rmse(out, reference);
            // NaN on either side must reject, so compare through
            // partial_cmp rather than `<=`.
            let within = matches!(
                nrmse.partial_cmp(&tolerance),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            if !within {
                return Err(ValidationError::ToleranceExceeded {
                    kernel,
                    nrmse,
                    tolerance,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn result_with(outputs: Vec<Image>) -> RunResult {
        RunResult {
            outputs,
            energy: EnergyTally::default(),
            timing: TimingReport {
                cycle_ns: 1.0,
                cycles_per_frame: 1,
                frame_delay_ns: 1.0,
            },
            mode: ArithmeticMode::DelayApprox,
            fault_stats: crate::fault::FaultStats::default(),
            ops: crate::census::OpCounts::default(),
            stages: None,
        }
    }

    #[test]
    fn validate_finite_pinpoints_bad_pixels() {
        let mut img = Image::zeros(3, 2);
        img.set(2, 1, f64::NAN);
        let r = result_with(vec![Image::zeros(3, 2), img]);
        assert_eq!(
            r.validate_finite(),
            Err(ValidationError::NonFinite {
                kernel: 1,
                x: 2,
                y: 1,
                value_kind: "NaN"
            })
        );
        let mut img = Image::zeros(2, 2);
        img.set(0, 0, f64::INFINITY);
        let r = result_with(vec![img]);
        assert!(matches!(
            r.validate_finite(),
            Err(ValidationError::NonFinite {
                value_kind: "infinite",
                ..
            })
        ));
        assert_eq!(
            result_with(vec![Image::zeros(2, 2)]).validate_finite(),
            Ok(())
        );
    }

    #[test]
    fn validate_against_enforces_tolerance_and_shape() {
        let reference = Image::from_fn(2, 2, |x, y| (x + y) as f64);
        let close = reference.map(|p| p + 0.001);
        let far = reference.map(|p| p + 1.0);
        assert_eq!(
            result_with(vec![close.clone()])
                .validate_against(std::slice::from_ref(&reference), 0.01),
            Ok(())
        );
        assert!(matches!(
            result_with(vec![far]).validate_against(std::slice::from_ref(&reference), 0.01),
            Err(ValidationError::ToleranceExceeded { kernel: 0, .. })
        ));
        assert!(matches!(
            result_with(vec![close.clone()]).validate_against(&[], 0.01),
            Err(ValidationError::ReferenceMismatch { .. })
        ));
        assert!(matches!(
            result_with(vec![close]).validate_against(&[Image::zeros(3, 3)], 0.01),
            Err(ValidationError::ReferenceMismatch { .. })
        ));
        // A NaN tolerance rejects rather than silently passing.
        let r = result_with(vec![reference.clone()]);
        assert!(r.validate_against(&[reference], f64::NAN).is_err());
    }

    #[test]
    fn throughput_and_delay_units() {
        let t = TimingReport {
            cycle_ns: 10.0,
            cycles_per_frame: 153,
            frame_delay_ns: 1530.0,
        };
        assert!((t.max_throughput_mfps() - 100.0).abs() < 1e-9);
        assert!((t.frame_delay_ms() - 1.53e-3).abs() < 1e-12);
        assert!(!format!("{t}").is_empty());
    }
}
