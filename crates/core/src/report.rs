//! Run results and timing reports.

use std::fmt;

use ta_circuits::EnergyTally;
use ta_image::Image;

use crate::ArithmeticMode;

/// Timing characteristics of a compiled architecture (Table 2's delay
/// columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Recurrence cycle time (one rolling-shutter row), nanoseconds.
    pub cycle_ns: f64,
    /// Rows per frame including pipeline drain.
    pub cycles_per_frame: usize,
    /// Minimum frame latency, nanoseconds.
    pub frame_delay_ns: f64,
}

impl TimingReport {
    /// The paper's "Max Throughput (Mfps)" figure: the rate at which the
    /// engine can accept row windows, in millions per second (the camera,
    /// not the engine, is the practical limiter — §5.3).
    pub fn max_throughput_mfps(&self) -> f64 {
        1000.0 / self.cycle_ns
    }

    /// Frame delay in milliseconds (Table 3 units).
    pub fn frame_delay_ms(&self) -> f64 {
        self.frame_delay_ns * 1e-6
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:.2} ns × {} rows = {:.2} µs/frame ({:.1} Mfps max)",
            self.cycle_ns,
            self.cycles_per_frame,
            self.frame_delay_ns * 1e-3,
            self.max_throughput_mfps()
        )
    }
}

/// The outcome of pushing one image through the architecture.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// One decoded output image per kernel, in importance space (signed
    /// values for split kernels).
    pub outputs: Vec<Image>,
    /// Frame energy, broken down by category.
    pub energy: EnergyTally,
    /// Timing of the compiled architecture.
    pub timing: TimingReport,
    /// The arithmetic mode the run used.
    pub mode: ArithmeticMode,
    /// Graceful-degradation counters accumulated during the run; all-zero
    /// outside fault-injection campaigns.
    pub fault_stats: crate::fault::FaultStats,
}

impl RunResult {
    /// Range-normalised RMSE of each output against references computed by
    /// software convolution.
    ///
    /// # Panics
    ///
    /// Panics if `references` has a different length or image shapes
    /// mismatch.
    pub fn normalized_rmse(&self, references: &[Image]) -> Vec<f64> {
        assert_eq!(
            self.outputs.len(),
            references.len(),
            "one reference per kernel output"
        );
        self.outputs
            .iter()
            .zip(references)
            .map(|(o, r)| ta_image::metrics::normalized_rmse(o, r))
            .collect()
    }

    /// Pooled (RMS over kernels) normalised RMSE against references.
    ///
    /// # Panics
    ///
    /// Same contract as [`RunResult::normalized_rmse`].
    pub fn pooled_rmse(&self, references: &[Image]) -> f64 {
        ta_image::metrics::pool_rmse(&self.normalized_rmse(references))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_delay_units() {
        let t = TimingReport {
            cycle_ns: 10.0,
            cycles_per_frame: 153,
            frame_delay_ns: 1530.0,
        };
        assert!((t.max_throughput_mfps() - 100.0).abs() < 1e-9);
        assert!((t.frame_delay_ms() - 1.53e-3).abs() < 1e-12);
        assert!(!format!("{t}").is_empty());
    }
}
