//! Operation census and per-stage profiling: the observable activity of a
//! frame (DESIGN.md §5.9).
//!
//! Two views of the same hardware activity exist side by side:
//!
//! * [`OpCounts`] — *dynamic* counters accumulated while a frame executes
//!   under profiling (the profiling twin of `exec::run` counts every nLSE
//!   tree node it evaluates, every edge that actually enters a tree,
//!   every nLDE renormalisation). Outside profiling, the common execution
//!   path substitutes the closed form (`expected_ops`) for the
//!   data-independent classes — provably equal to the genuine counters
//!   (asserted by the tests below) and free on the hot path, which is
//!   what keeps disabled-telemetry overhead inside the <2% budget.
//! * [`Architecture::op_census`](crate::Architecture::op_census) — the
//!   *static* expectation derived from the compiled geometry alone.
//!
//! For the data-independent ops the two must agree exactly (asserted by
//! `tconv profile` and the tests below): the simulator evaluates one
//! internal tree node per nLSE operation the energy model charges for.
//! Edge-event counts are genuinely data-dependent (dark pixels and
//! truncated edges never fire) and exist only under profiling.

use std::ops::{Add, AddAssign};
use std::time::Duration;

use ta_telemetry::FieldValue;

use crate::RunResult;

/// Counts of temporal-arithmetic operations performed (or expected) for
/// one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// VTC conversions: one per input pixel read out.
    pub vtc_conversions: u64,
    /// TDC quantisations applied to decoded outputs (dynamic count; the
    /// static census uses the paper's per-pixel Table 3 accounting
    /// instead, so the two are compared only when both are per-pixel).
    pub tdc_conversions: u64,
    /// Edges that actually entered an accumulation tree (data-dependent:
    /// never-firing weights, dark pixels and truncated edges don't count).
    /// Counted only while profiling is on — the per-leaf accounting is the
    /// one hook too hot for the always-on path's <2% overhead budget.
    pub edge_events: u64,
    /// nLSE operations: internal nodes of every evaluated accumulation
    /// tree (`fan_in − 1` per cycle).
    pub nlse_ops: u64,
    /// nLDE renormalisations: one per output pixel of each split kernel.
    pub nlde_ops: u64,
}

impl OpCounts {
    /// Sum of all delay-arithmetic ops (excludes converter activity).
    pub fn arithmetic_ops(&self) -> u64 {
        self.nlse_ops + self.nlde_ops
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            vtc_conversions: self.vtc_conversions + rhs.vtc_conversions,
            tdc_conversions: self.tdc_conversions + rhs.tdc_conversions,
            edge_events: self.edge_events + rhs.edge_events,
            nlse_ops: self.nlse_ops + rhs.nlse_ops,
            nlde_ops: self.nlde_ops + rhs.nlde_ops,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

/// Per-frame energy attributed to pipeline stages — the same accounting
/// as [`Architecture::energy_per_frame`](crate::Architecture::energy_per_frame)
/// (which is now derived from it via [`StageEnergy::tally`]), but broken
/// down by *stage* instead of by hardware category, so `tconv profile`
/// can print time, energy and op count side by side per stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageEnergy {
    /// Pixel-interface VTC conversions.
    pub vtc_pj: f64,
    /// Output TDC conversions (zero when no TDC is configured).
    pub tdc_pj: f64,
    /// Weight-delay-matrix lines.
    pub weight_matrix_pj: f64,
    /// nLSE accumulation trees (unit energies plus path-balance chains).
    pub nlse_tree_pj: f64,
    /// Recurrence loop delay lines between cycles.
    pub loop_pj: f64,
    /// nLDE renormalisation units of split kernels.
    pub nlde_pj: f64,
}

impl StageEnergy {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.tally().total_pj()
    }

    /// Folds the stage buckets back into the paper's per-category tally
    /// (delay lines vs converters).
    pub fn tally(&self) -> ta_circuits::EnergyTally {
        ta_circuits::EnergyTally {
            delay_pj: self.weight_matrix_pj + self.nlse_tree_pj + self.loop_pj + self.nlde_pj,
            gate_pj: 0.0,
            vtc_pj: self.vtc_pj,
            tdc_pj: self.tdc_pj,
        }
    }
}

/// Wall-clock time spent in each pipeline stage of one frame, measured
/// only when [`Tracer::set_profiling`](ta_telemetry::Tracer::set_profiling)
/// is on (fine-grained clocks are too expensive to run unconditionally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageProfile {
    /// Pixel readout and VTC encoding.
    pub vtc_encode: Duration,
    /// Weight-delay-matrix traversal (leaf construction, fault lookups,
    /// truncation).
    pub delay_matrix: Duration,
    /// nLSE accumulation-tree evaluations.
    pub nlse_tree: Duration,
    /// nLDE renormalisation and output decode (including TDC quantise).
    pub nlde_renorm: Duration,
}

impl StageProfile {
    /// Total profiled time across the stages.
    pub fn total(&self) -> Duration {
        self.vtc_encode + self.delay_matrix + self.nlse_tree + self.nlde_renorm
    }
}

impl AddAssign for StageProfile {
    fn add_assign(&mut self, rhs: StageProfile) {
        self.vtc_encode += rhs.vtc_encode;
        self.delay_matrix += rhs.delay_matrix;
        self.nlse_tree += rhs.nlse_tree;
        self.nlde_renorm += rhs.nlde_renorm;
    }
}

/// The closed-form op counts of one frame — what the genuine dynamic
/// counters of the profiling twin are guaranteed to report for every
/// data-independent op class (asserted by the census tests). The common
/// execution path uses this instead of counting in the hot loops, which
/// keeps the disabled-telemetry overhead within the <2% budget.
///
/// Differences from [`Architecture::op_census`](crate::Architecture::op_census):
/// the static census charges the paper's per-pixel Table 3 TDC
/// accounting, while execution quantises once per output combine and only
/// in the approximate modes; and edge events are data-dependent, so they
/// exist only under profiling (zero here).
pub(crate) fn expected_ops(arch: &crate::Architecture, mode: crate::ArithmeticMode) -> OpCounts {
    let mut ops = arch.op_census();
    let (ow, oh) = arch.desc().output_dims();
    let quantising = arch.cfg().tdc.is_some()
        && matches!(
            mode,
            crate::ArithmeticMode::DelayApprox | crate::ArithmeticMode::DelayApproxNoisy
        );
    ops.tdc_conversions = if quantising {
        (ow * oh * arch.desc().kernels().len()) as u64
    } else {
        0
    };
    ops.edge_events = 0;
    ops
}

/// Publishes one completed frame into the global telemetry: metric
/// counters unconditionally (a handful of atomic adds per *frame*), spans
/// only when a live sink is installed.
pub(crate) fn publish_frame(result: &RunResult, wall: Duration) {
    let m = ta_telemetry::metrics();
    let ops = &result.ops;
    m.counter("ta_core_frames_total").inc();
    m.counter("ta_core_vtc_conversions_total")
        .add(ops.vtc_conversions);
    m.counter("ta_core_tdc_conversions_total")
        .add(ops.tdc_conversions);
    m.counter("ta_core_edge_events_total").add(ops.edge_events);
    m.counter("ta_core_nlse_ops_total").add(ops.nlse_ops);
    m.counter("ta_core_nlde_ops_total").add(ops.nlde_ops);
    m.gauge("ta_core_energy_pj_total")
        .add(result.energy.total_pj());
    m.histogram("ta_core_frame_seconds").observe_duration(wall);

    let tracer = ta_telemetry::tracer();
    if !tracer.active() {
        return;
    }
    if let Some(stages) = &result.stages {
        tracer.record_span(
            "exec.vtc_encode",
            stages.vtc_encode,
            vec![("conversions", ops.vtc_conversions.into())],
        );
        tracer.record_span(
            "exec.delay_matrix",
            stages.delay_matrix,
            vec![("edge_events", ops.edge_events.into())],
        );
        tracer.record_span(
            "exec.nlse_tree",
            stages.nlse_tree,
            vec![("ops", ops.nlse_ops.into())],
        );
        tracer.record_span(
            "exec.nlde_renorm",
            stages.nlde_renorm,
            vec![("ops", ops.nlde_ops.into())],
        );
    }
    tracer.record_span(
        "exec.run",
        wall,
        vec![
            ("mode", FieldValue::Str(format!("{:?}", result.mode))),
            ("nlse_ops", ops.nlse_ops.into()),
            ("nlde_ops", ops.nlde_ops.into()),
            ("energy_pj", result.energy.total_pj().into()),
        ],
    );
}

/// Publishes one frame's row-cell cache census (DESIGN.md §5.11): how
/// many shareable row cells the plan executor evaluated vs. served from
/// the frame-local cache. Always-on counters, like the frame census —
/// two atomic adds per frame. Surfaced by `tconv profile`.
pub(crate) fn publish_plan_cache(cache: crate::plan::PlanCacheStats) {
    let m = ta_telemetry::metrics();
    m.counter("ta_core_plan_rows_computed_total")
        .add(cache.computed);
    m.counter("ta_core_plan_rows_reused_total")
        .add(cache.reused);
}

/// Publishes one gate-level evaluation into the global telemetry.
pub(crate) fn publish_gate(cycle_evals: u64, nlde_evals: u64) {
    let m = ta_telemetry::metrics();
    m.counter("ta_core_gate_runs_total").inc();
    m.counter("ta_core_gate_cycle_evals_total").add(cycle_evals);
    m.counter("ta_core_gate_nlde_evals_total").add(nlde_evals);
}

/// Publishes one netlist-optimizer compilation (DESIGN.md §5.16): gate
/// totals before and after the pass pipeline, plus the eliminated count
/// as its own series so dashboards can plot the reduction directly.
pub(crate) fn publish_gate_opt_compile(gates_pre: u64, gates_post: u64) {
    let m = ta_telemetry::metrics();
    m.describe(
        "ta_gate_gates_total",
        "Gate counts compiled by the netlist optimizer, by phase (pre/post).",
    );
    m.labeled_counter("ta_gate_gates_total", "phase", "pre")
        .add(gates_pre);
    m.labeled_counter("ta_gate_gates_total", "phase", "post")
        .add(gates_post);
    m.counter("ta_gate_gates_eliminated_total")
        .add(gates_pre.saturating_sub(gates_post));
}

/// Publishes one event-driven gate run's event total: gate evaluations
/// actually performed (a full sweep would perform `gates × evaluations`).
pub(crate) fn publish_gate_events(events: u64) {
    ta_telemetry::metrics()
        .counter("ta_gate_events_total")
        .add(events);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
    use ta_image::{synth, Image, Kernel};

    fn small_arch(kernels: Vec<Kernel>) -> (Architecture, Image) {
        let desc = SystemDescription::new(12, 12, kernels, 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(4, 8)).unwrap();
        let img = synth::natural_image(12, 12, 3);
        (arch, img)
    }

    #[test]
    fn dynamic_ops_match_static_census() {
        // The acceptance criterion behind `tconv profile`: the profiling
        // twin's genuine dynamic counters agree exactly with the energy
        // model's static census for every data-independent op class, in
        // every delay mode — and with the closed form the common path
        // substitutes for them.
        ta_telemetry::tracer().set_profiling(true);
        for kernels in [
            vec![Kernel::box_filter(3)],
            vec![Kernel::sobel_x()],
            vec![Kernel::sobel_x(), Kernel::sobel_y()],
        ] {
            let (arch, img) = small_arch(kernels);
            let census = arch.op_census();
            for mode in [
                ArithmeticMode::DelayExact,
                ArithmeticMode::DelayApprox,
                ArithmeticMode::DelayApproxNoisy,
            ] {
                let run = exec::run(&arch, &img, mode, 0).unwrap();
                assert!(run.stages.is_some(), "profiling twin must have run");
                assert_eq!(run.ops.vtc_conversions, census.vtc_conversions);
                assert_eq!(run.ops.nlse_ops, census.nlse_ops);
                assert_eq!(run.ops.nlde_ops, census.nlde_ops);
                let closed = expected_ops(&arch, mode);
                assert_eq!(run.ops.vtc_conversions, closed.vtc_conversions);
                assert_eq!(run.ops.tdc_conversions, closed.tdc_conversions);
                assert_eq!(run.ops.nlse_ops, closed.nlse_ops);
                assert_eq!(run.ops.nlde_ops, closed.nlde_ops);
            }
        }
    }

    #[test]
    fn importance_mode_counts_no_hardware_ops() {
        let (arch, img) = small_arch(vec![Kernel::sobel_x()]);
        let run = exec::run(&arch, &img, ArithmeticMode::ImportanceExact, 0).unwrap();
        assert_eq!(run.ops, OpCounts::default());
        assert!(run.stages.is_none());
    }

    #[test]
    fn stage_energy_folds_to_frame_tally() {
        let (arch, _) = small_arch(vec![Kernel::sobel_x(), Kernel::box_filter(3)]);
        let stage = arch.stage_energy();
        let frame = arch.energy_per_frame();
        assert_eq!(stage.tally(), frame);
        assert!(stage.total_pj() > 0.0);
        assert!(stage.nlde_pj > 0.0, "split kernel must charge the nLDE");
        assert_eq!(frame.gate_pj, 0.0);
    }

    #[test]
    fn uninstrumented_twin_is_bit_identical() {
        let (arch, img) = small_arch(vec![Kernel::sobel_x()]);
        for mode in [
            ArithmeticMode::DelayApprox,
            ArithmeticMode::DelayApproxNoisy,
        ] {
            let a = exec::run(&arch, &img, mode, 7).unwrap();
            let b = exec::run_uninstrumented(&arch, &img, mode, 7).unwrap();
            assert_eq!(a.outputs, b.outputs);
            // The twin counts nothing — it exists to benchmark against.
            assert_eq!(b.ops, OpCounts::default());
        }
    }

    #[test]
    fn profiling_yields_stage_times() {
        // Note: the profiling flag is global and shared across test
        // threads, so tests only ever turn it on.
        ta_telemetry::tracer().set_profiling(true);
        let (arch, img) = small_arch(vec![Kernel::sobel_x()]);
        let run = exec::run(&arch, &img, ArithmeticMode::DelayApprox, 0).unwrap();
        let stages = run.stages.expect("profiling was on");
        assert_eq!(
            stages.total(),
            stages.vtc_encode + stages.delay_matrix + stages.nlse_tree + stages.nlde_renorm
        );
    }

    #[test]
    fn op_counts_accumulate() {
        let a = OpCounts {
            vtc_conversions: 1,
            tdc_conversions: 2,
            edge_events: 3,
            nlse_ops: 4,
            nlde_ops: 5,
        };
        let mut b = a;
        b += a;
        assert_eq!(b.vtc_conversions, 2);
        assert_eq!(b.nlse_ops, 8);
        assert_eq!(b.arithmetic_ops(), 18);
    }

    #[test]
    fn stage_profile_totals() {
        let p = StageProfile {
            vtc_encode: Duration::from_millis(1),
            nlse_tree: Duration::from_millis(2),
            ..StageProfile::default()
        };
        let mut q = p;
        q += p;
        assert_eq!(q.total(), Duration::from_millis(6));
    }
}
