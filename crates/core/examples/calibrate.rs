//! Internal calibration sweep: prints Table 2-style rows for the three
//! benchmarks under the three Pareto configurations. Used to anchor the
//! energy/area constants; the official reproduction lives in
//! `ta-experiments`.

// Examples are exempt from the panic-free library guarantee.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ta_core::*;
use ta_image::{conv, metrics, synth, Kernel};

fn main() {
    let configs = [(1.0, 7usize, 20usize), (5.0, 10, 20), (10.0, 10, 20)];
    let benches: Vec<(&str, Vec<Kernel>, usize)> = vec![
        ("Sobel", vec![Kernel::sobel_x(), Kernel::sobel_y()], 1),
        ("pyrDown", vec![Kernel::pyr_down_5x5()], 2),
        ("GaussianBlur", vec![Kernel::gaussian(7, 0.0)], 1),
    ];
    let images = synth::eval_set(42);
    for (name, kernels, stride) in &benches {
        for &(u, ns, nd) in &configs {
            let desc = SystemDescription::new(150, 150, kernels.clone(), *stride).unwrap();
            let cfg = ArchConfig::new(ta_circuits::UnitScale::new(u, 50.0), ns, nd);
            let arch = Architecture::new(desc, cfg).unwrap();
            let mut errs = vec![];
            for (i, img) in images.iter().enumerate() {
                let run =
                    exec::run(&arch, img, ArithmeticMode::DelayApproxNoisy, i as u64).unwrap();
                let refs: Vec<_> = kernels
                    .iter()
                    .map(|k| conv::convolve(img, k, *stride))
                    .collect();
                errs.push(run.pooled_rmse(&refs));
            }
            let rmse = metrics::pool_rmse(&errs);
            let e = arch.energy_per_frame();
            let t = arch.timing();
            println!("{name:14} {u:4}ns,{ns:2},{nd:2}: area {:.3} mm2, {:7.2} uJ/frame, {:6.1} Mfps, RMSE {:.4}",
                arch.area_mm2(), e.total_uj(), t.max_throughput_mfps(), rmse);
        }
    }
}
