//! In-process durability suite: journaled completions dedupe retries
//! across a server restart, journaled in-flight requests are recovered
//! (or shed) at startup, and recovery telemetry is exposed. The
//! out-of-process kill -9 variant lives in the CLI's `crash_recovery`
//! suite; this one pins the semantics without process churn.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

use ta_serve::journal::{FsyncPolicy, RecoveryPolicy, RequestKey, ServeJournal};
use ta_serve::spec::CompiledArch;
use ta_serve::wire::{output_checksum, ArchSpec, Chaos, Request, Response, Submit, MODE_EXACT};
use ta_serve::{ServeConfig, Server, ServerHandle};
use ta_telemetry::TraceId;

const W: u32 = 10;
const H: u32 = 10;

fn spec() -> ArchSpec {
    ArchSpec {
        kernel: "box3".into(),
        mode: MODE_EXACT,
        unit_ns: 1.0,
        nlse_terms: 7,
        nlde_terms: 20,
        fault_rate: 0.0,
    }
}

fn submit(id: u64, seed: u64, want_outputs: bool) -> Submit {
    Submit {
        id,
        spec: spec(),
        seed,
        deadline_ms: 0,
        want_outputs,
        chaos: Chaos::None,
        width: W,
        height: H,
        pixels: ta_image::synth::natural_image(W as usize, H as usize, seed)
            .pixels()
            .to_vec(),
        trace: TraceId::ZERO,
    }
}

fn reference_checksum(sub: &Submit) -> u64 {
    let compiled = CompiledArch::compile(&sub.spec, sub.width, sub.height).unwrap();
    let supervisor = compiled.supervisor(&ta_serve::ExecPolicy::default(), sub.seed, None);
    let image =
        ta_image::Image::from_pixels(sub.width as usize, sub.height as usize, sub.pixels.clone())
            .unwrap();
    let (outputs, report) = supervisor
        .run_one(&compiled.engine, &image, 0, sub.seed)
        .unwrap();
    assert!(!report.status.is_failed());
    let planes = outputs.unwrap();
    output_checksum(planes.iter().map(|p| p.pixels()))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ta-serve-journal-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.wal"));
    let _ = std::fs::remove_file(&path);
    path
}

fn journal_cfg(path: &Path, recovery: RecoveryPolicy) -> ServeConfig {
    ServeConfig {
        journal: Some(path.to_path_buf()),
        journal_fsync: FsyncPolicy::Always,
        recovery,
        idle_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

fn start(cfg: ServeConfig) -> (String, ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let runner = thread::spawn(move || {
        server.run().unwrap();
    });
    (addr, handle, runner)
}

fn stop(handle: &ServerHandle, runner: thread::JoinHandle<()>) {
    handle.begin_drain();
    runner.join().unwrap();
}

#[test]
fn retry_after_restart_is_answered_from_the_journal() {
    let path = scratch("dedupe-restart");
    let sub = submit(1, 42, false);
    let want = reference_checksum(&sub);

    // Life 1: compute and journal the completion.
    let (addr, handle, runner) = start(journal_cfg(&path, RecoveryPolicy::Recover));
    let mut client = ta_serve::Client::connect_tcp(&addr, "acme").unwrap();
    let first = match client.submit(sub.clone()).unwrap() {
        Response::Done {
            checksum, attempts, ..
        } => {
            assert_eq!(checksum, want);
            attempts
        }
        other => panic!("expected Done, got {other:?}"),
    };
    let _ = client.goodbye();
    stop(&handle, runner);

    // Life 2: the same (tenant, id, seed) is answered from the index —
    // `want_outputs` is asserted empty to prove nothing recomputed.
    let (addr, handle, runner) = start(journal_cfg(&path, RecoveryPolicy::Recover));
    let mut client = ta_serve::Client::connect_tcp(&addr, "acme").unwrap();
    let mut retry = sub.clone();
    retry.want_outputs = true;
    match client.submit(retry).unwrap() {
        Response::Done {
            checksum,
            attempts,
            latency_us,
            outputs,
            ..
        } => {
            assert_eq!(
                checksum, want,
                "deduped reply carries the original checksum"
            );
            assert_eq!(attempts, first, "original disposition is replayed");
            assert_eq!(latency_us, 0, "nothing executed");
            assert!(outputs.is_empty(), "the index holds identity, not planes");
        }
        other => panic!("expected deduped Done, got {other:?}"),
    }
    // A *different* seed is a different request and must compute.
    let mut fresh = sub.clone();
    fresh.seed = 43;
    fresh.pixels = sub.pixels.clone();
    fresh.want_outputs = true;
    match client.submit(fresh).unwrap() {
        Response::Done { outputs, .. } => {
            assert!(!outputs.is_empty(), "new seed must execute for real");
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let _ = client.goodbye();
    stop(&handle, runner);
}

#[test]
fn in_flight_at_crash_is_recovered_before_serving() {
    let path = scratch("recover-in-flight");
    let sub = submit(5, 7, false);
    let want = reference_checksum(&sub);

    // Simulate the crash artifact: an accepted record with no outcome
    // (exactly what a kill -9 between admission and reply leaves).
    {
        let (journal, _) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
        journal.record_accepted("acme", &sub).unwrap();
    }

    let (addr, handle, runner) = start(journal_cfg(&path, RecoveryPolicy::Recover));
    // The retrying client gets the recovered answer from the index:
    // checksum matches, zero latency, no outputs — never recomputed.
    let mut client = ta_serve::Client::connect_tcp(&addr, "acme").unwrap();
    let mut retry = sub.clone();
    retry.want_outputs = true;
    match client.submit(retry).unwrap() {
        Response::Done {
            checksum,
            latency_us,
            outputs,
            ..
        } => {
            assert_eq!(checksum, want, "recovered answer is bit-identical");
            assert_eq!(latency_us, 0);
            assert!(outputs.is_empty());
        }
        other => panic!("expected recovered Done, got {other:?}"),
    }
    // Recovery telemetry is visible over the wire.
    match client.call(&Request::Metrics).unwrap() {
        Response::Metrics { text } => {
            assert!(text.contains("ta_serve_recovered_total"), "{text}");
            assert!(text.contains("ta_serve_replayed_total"), "{text}");
            assert!(text.contains("ta_serve_journal_records"), "{text}");
            assert!(text.contains("ta_serve_recovery_seconds"), "{text}");
        }
        other => panic!("expected Metrics, got {other:?}"),
    }
    let _ = client.goodbye();
    stop(&handle, runner);
}

#[test]
fn shed_policy_resolves_in_flight_without_executing() {
    let path = scratch("shed-in-flight");
    let sub = submit(9, 11, true);
    {
        let (journal, _) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
        journal.record_accepted("acme", &sub).unwrap();
    }

    let (addr, handle, runner) = start(journal_cfg(&path, RecoveryPolicy::Shed));
    let mut client = ta_serve::Client::connect_tcp(&addr, "acme").unwrap();
    // Shed means no cached answer: the retry recomputes for real.
    match client.submit(sub.clone()).unwrap() {
        Response::Done { outputs, .. } => {
            assert!(!outputs.is_empty(), "shed requests recompute on retry");
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let _ = client.goodbye();
    stop(&handle, runner);

    // The shed marker resolved the record: a third life has nothing
    // in-flight (and the drain compacted the journal).
    let (_, recovery) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
    assert!(recovery.in_flight.is_empty(), "shed resolves the record");
}

#[test]
fn chaos_in_flight_on_a_chaosless_restart_is_shed_not_dropped() {
    let path = scratch("chaos-shed");
    let mut sub = submit(13, 17, false);
    sub.chaos = Chaos::PanicAttempts { n: 1 };
    {
        let (journal, _) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
        journal.record_accepted("acme", &sub).unwrap();
    }

    // chaos_enabled defaults to false in journal_cfg's base config.
    let (_, handle, runner) = start(journal_cfg(&path, RecoveryPolicy::Recover));
    stop(&handle, runner);

    let (journal, recovery) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
    assert!(recovery.in_flight.is_empty(), "chaos record is resolved");
    assert!(
        journal.lookup(&RequestKey::of("acme", &sub)).is_none(),
        "shed, not answered"
    );
}

#[test]
fn journal_survives_live_dedupe_within_one_life() {
    let path = scratch("live-dedupe");
    let sub = submit(21, 23, false);
    let (addr, handle, runner) = start(journal_cfg(&path, RecoveryPolicy::Recover));
    let mut client = ta_serve::Client::connect_tcp(&addr, "acme").unwrap();
    let first = match client.submit(sub.clone()).unwrap() {
        Response::Done { checksum, .. } => checksum,
        other => panic!("expected Done, got {other:?}"),
    };
    // Same key, same life: the duplicate is served from the index.
    let mut dup = sub.clone();
    dup.want_outputs = true;
    match client.submit(dup).unwrap() {
        Response::Done {
            checksum, outputs, ..
        } => {
            assert_eq!(checksum, first);
            assert!(outputs.is_empty(), "duplicate must not recompute");
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let _ = client.goodbye();
    stop(&handle, runner);
}
