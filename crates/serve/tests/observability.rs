//! End-to-end observability acceptance: wire-propagated trace IDs, the
//! anomaly-triggered flight recorder, and per-tenant SLO export. The
//! headline contract (ISSUE §acceptance): a watchdog timeout must dump a
//! schema-valid diagnostics bundle containing the offending request's
//! trace with its admission, attempt, and dump events in order.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use ta_serve::client::Client;
use ta_serve::wire::{ArchSpec, Chaos, ErrorCode, Request, Response, Submit, MODE_EXACT};
use ta_serve::{BundleSummary, ServeConfig, Server, ServerHandle};
use ta_telemetry::TraceId;

const W: u32 = 12;
const H: u32 = 12;

/// The flight recorder installs itself as the process-global trace sink,
/// so tests that stand up a bundle-enabled server must not overlap.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn spec() -> ArchSpec {
    ArchSpec {
        kernel: "box3".into(),
        mode: MODE_EXACT,
        unit_ns: 1.0,
        nlse_terms: 7,
        nlde_terms: 20,
        fault_rate: 0.0,
    }
}

fn submit(id: u64, seed: u64, chaos: Chaos) -> Submit {
    Submit {
        id,
        spec: spec(),
        seed,
        deadline_ms: 0,
        want_outputs: false,
        chaos,
        width: W,
        height: H,
        pixels: ta_image::synth::natural_image(W as usize, H as usize, seed)
            .pixels()
            .to_vec(),
        trace: TraceId::ZERO,
    }
}

fn start_server(
    cfg: ServeConfig,
) -> (
    String,
    ServerHandle,
    thread::JoinHandle<ta_serve::DrainSummary>,
) {
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let runner = thread::spawn(move || server.run().unwrap());
    (addr, handle, runner)
}

fn drain(handle: &ServerHandle, runner: thread::JoinHandle<ta_serve::DrainSummary>) {
    handle.begin_drain();
    runner.join().unwrap();
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ta-obsv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bundle_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("bundle-") && n.ends_with(".jsonl"))
        })
        .collect();
    out.sort();
    out
}

/// ISSUE acceptance test: a chaos-stalled frame blows its deadline, the
/// watchdog anomaly dumps a bundle, and the bundle tells the request's
/// whole story — admission, failed attempt, anomaly — in order, keyed by
/// the trace ID the client sent on the wire.
#[test]
fn watchdog_timeout_dumps_bundle_with_request_trace_story() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = fresh_dir("watchdog");
    let cfg = ServeConfig {
        chaos_enabled: true,
        bundle_dir: Some(dir.clone()),
        idle_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let (addr, handle, runner) = start_server(cfg);
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();

    // Every attempt stalls for 400 ms against a 150 ms deadline: the
    // watchdog must fire, and the first firing dumps the bundle.
    let mut sub = submit(50, 3, Chaos::StallAttempts { n: 10, ms: 400 });
    sub.deadline_ms = 150;
    sub.trace = TraceId([0x5A; 16]);
    let trace_hex = sub.trace.to_hex();

    let rsp = client.submit(sub).unwrap();
    let echoed = match rsp {
        Response::Error { code, trace, .. } => {
            assert!(
                matches!(code, ErrorCode::DeadlineExceeded | ErrorCode::FrameFailed),
                "expected a deadline/frame failure, got {code:?}"
            );
            trace
        }
        Response::Done { trace, .. } | Response::Busy { trace, .. } => trace,
        other => panic!("unexpected response {other:?}"),
    };
    assert_eq!(echoed.to_hex(), trace_hex, "reply must echo the wire trace");

    let _ = client.goodbye();
    drain(&handle, runner);

    let files = bundle_files(&dir);
    assert!(!files.is_empty(), "anomaly must have dumped a bundle");
    let text = std::fs::read_to_string(&files[0]).unwrap();
    let summary = BundleSummary::parse(&text).unwrap();
    assert_eq!(summary.kind, "watchdog_timeout");
    assert_eq!(summary.trace, trace_hex, "bundle header names the request");

    // The request's story, in order: admission, the failed attempt, the
    // anomaly dump marker. All stamped with the same trace.
    let ours = summary.lines_for_trace(&trace_hex);
    assert!(!ours.is_empty(), "bundle has no lines for our trace");
    let names: Vec<&str> = ours
        .iter()
        .filter_map(|&i| summary.lines[i].name.as_deref())
        .collect();
    let pos = |what: &str| {
        names
            .iter()
            .position(|n| *n == what)
            .unwrap_or_else(|| panic!("bundle lacks {what:?} for trace; got {names:?}"))
    };
    let admitted = pos("serve.admitted");
    let attempt = pos("supervisor.attempt_failed");
    let anomaly = pos("anomaly");
    assert!(
        admitted < attempt && attempt < anomaly,
        "events out of order: {names:?}"
    );
    // The in-flight request context rode along for triage.
    assert!(
        summary
            .lines
            .iter()
            .any(|l| l.kind == "request" && l.trace.as_deref() == Some(trace_hex.as_str())),
        "bundle must carry the request context line"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that sends no trace still gets one: the server generates an
/// ID at admission and echoes it, so every reply is attributable.
#[test]
fn server_generates_and_echoes_trace_for_traceless_clients() {
    let (addr, handle, runner) = start_server(ServeConfig {
        idle_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    match client.submit(submit(1, 7, Chaos::None)).unwrap() {
        Response::Done { trace, .. } => {
            assert!(!trace.is_zero(), "server must mint a trace when absent");
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let _ = client.goodbye();
    drain(&handle, runner);
}

/// SLO accounting is visible over the wire: per-tenant request counters,
/// burn gauge, energy/op census, and the latency histogram — with HELP
/// metadata — all appear in the Metrics reply.
#[test]
fn slo_and_census_metrics_export_over_the_wire() {
    let (addr, handle, runner) = start_server(ServeConfig {
        slo: Duration::from_secs(30), // generous: this request must not breach
        idle_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let mut client = Client::connect_tcp(&addr, "slo-tenant").unwrap();
    assert!(matches!(
        client.submit(submit(2, 9, Chaos::None)).unwrap(),
        Response::Done { .. }
    ));
    let text = match client.call(&Request::Metrics).unwrap() {
        Response::Metrics { text } => text,
        other => panic!("expected Metrics, got {other:?}"),
    };
    for needle in [
        "ta_serve_slo_requests_total{tenant=\"slo-tenant\"} 1",
        "ta_serve_slo_burn{tenant=\"slo-tenant\"} 0",
        "ta_serve_tenant_energy_pj_total{tenant=\"slo-tenant\"}",
        "ta_serve_tenant_ops_total{tenant=\"slo-tenant\"}",
        "ta_serve_latency_seconds_bucket",
        "# HELP ta_serve_slo_burn",
    ] {
        assert!(text.contains(needle), "metrics lack {needle:?}:\n{text}");
    }
    // And the exposition parses under a strict Prometheus text grammar.
    let scrape = ta_telemetry::promtext::parse(&text).unwrap();
    assert!(scrape
        .samples
        .iter()
        .any(|s| s.name == "ta_serve_slo_requests_total"));
    let _ = client.goodbye();
    drain(&handle, runner);
}
