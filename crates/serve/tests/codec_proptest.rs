//! Property tests for the wire codec: round-trips are exact, and *any*
//! byte stream — mutated, truncated, or pure noise — decodes to a typed
//! `ProtocolError`, never a panic or a silent misparse.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use ta_serve::wire::{
    parse_header, ArchSpec, Chaos, ErrorCode, HealthSnapshot, OutputPlane, ProtocolError, Request,
    Response, ShedReason, Submit, MODE_NOISY, PROTO_VERSION,
};
use ta_telemetry::TraceId;

/// Either the absent (all-zero) trace or an arbitrary non-zero one. The
/// non-zero branch forces a bit on so it can never alias "absent".
fn arb_trace() -> impl Strategy<Value = TraceId> {
    prop_oneof![
        Just(TraceId::ZERO),
        prop::collection::vec(0u8..=255, 16..17).prop_map(|v| {
            let mut b = [0u8; 16];
            b.copy_from_slice(&v);
            b[0] |= 1;
            TraceId(b)
        }),
    ]
}

fn arb_u64() -> impl Strategy<Value = u64> {
    0u64..=u64::MAX
}

fn arb_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn arb_string(max_len: usize) -> impl Strategy<Value = String> {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-./ ";
    prop::collection::vec(0usize..CHARSET.len(), 0..max_len)
        .prop_map(|ix| ix.iter().map(|&i| CHARSET[i] as char).collect())
}

fn arb_spec() -> impl Strategy<Value = ArchSpec> {
    (
        arb_string(12),
        0u8..=MODE_NOISY,
        1u32..1000,
        1u32..64,
        1u32..64,
        0u32..=100,
    )
        .prop_map(|(kernel, mode, unit_q, nlse, nlde, fr)| ArchSpec {
            kernel,
            mode,
            unit_ns: f64::from(unit_q) * 0.25,
            nlse_terms: nlse,
            nlde_terms: nlde,
            fault_rate: f64::from(fr) / 100.0,
        })
}

fn arb_chaos() -> impl Strategy<Value = Chaos> {
    prop_oneof![
        Just(Chaos::None),
        (0u32..5).prop_map(|n| Chaos::PanicAttempts { n }),
        (0u32..5, 0u32..50).prop_map(|(n, ms)| Chaos::StallAttempts { n, ms }),
    ]
}

fn arb_submit() -> impl Strategy<Value = Submit> {
    (
        (arb_u64(), arb_spec(), arb_u64()),
        (0u32..10_000, arb_bool(), arb_chaos(), 1u32..5, 1u32..5),
        arb_trace(),
    )
        .prop_flat_map(
            |((id, spec, seed), (deadline_ms, want_outputs, chaos, w, h), trace)| {
                let n = (w * h) as usize;
                prop::collection::vec(-1e3f64..1e3, n..n + 1).prop_map(move |pixels| Submit {
                    id,
                    spec: spec.clone(),
                    seed,
                    deadline_ms,
                    want_outputs,
                    chaos,
                    width: w,
                    height: h,
                    pixels,
                    trace,
                })
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        // Only the spoken version round-trips: any other Hello version is
        // rejected at decode with `VersionMismatch` (tested below).
        arb_string(16).prop_map(|tenant| Request::Hello {
            proto: PROTO_VERSION,
            tenant
        }),
        arb_submit().prop_map(Request::Submit),
        arb_u64().prop_map(|nonce| Request::Ping { nonce }),
        Just(Request::Health),
        Just(Request::Metrics),
        Just(Request::Goodbye),
    ]
}

fn arb_plane() -> impl Strategy<Value = OutputPlane> {
    (1u32..4, 1u32..4).prop_flat_map(|(w, h)| {
        let n = (w * h) as usize;
        prop::collection::vec(-1e3f64..1e3, n..n + 1).prop_map(move |pixels| OutputPlane {
            width: w,
            height: h,
            pixels,
        })
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0u32..10, 0u32..100, 0u32..(1 << 24), arb_string(16)).prop_map(
            |(proto, credits, max_frame, server)| Response::Welcome {
                proto,
                credits,
                max_frame,
                server
            }
        ),
        (
            (arb_u64(), arb_bool(), arb_string(8)),
            (0u32..10, arb_u64(), arb_u64()),
            prop::collection::vec(arb_plane(), 0..3),
            arb_trace(),
        )
            .prop_map(
                |((id, degraded, fallback), (attempts, latency_us, checksum), outputs, trace)| {
                    Response::Done {
                        id,
                        degraded,
                        fallback,
                        attempts,
                        latency_us,
                        checksum,
                        outputs,
                        trace,
                    }
                }
            ),
        (arb_u64(), 0u32..10_000, arb_trace()).prop_map(|(id, retry_after_ms, trace)| {
            Response::Busy {
                id,
                reason: ShedReason::Overloaded,
                retry_after_ms,
                trace,
            }
        }),
        (arb_u64(), arb_string(32), arb_trace()).prop_map(|(id, message, trace)| {
            Response::Error {
                id,
                code: ErrorCode::FrameFailed,
                message,
                trace,
            }
        }),
        (0u8..=255, arb_string(32), 0u32..10).prop_map(|(code, message, strikes_left)| {
            Response::ProtocolReject {
                code,
                message,
                strikes_left,
            }
        }),
        arb_u64().prop_map(|nonce| Response::Pong { nonce }),
        (arb_bool(), arb_bool(), 0u32..100, 0u32..100, arb_u64()).prop_map(
            |(ready, draining, connections, in_flight, accepted)| {
                Response::Health(HealthSnapshot {
                    ready,
                    draining,
                    connections,
                    in_flight,
                    accepted,
                    completed: accepted / 2,
                    degraded: 1,
                    shed: 2,
                    failed: 3,
                    protocol_errors: 4,
                })
            }
        ),
        arb_string(64).prop_map(|text| Response::Metrics { text }),
        arb_bool().prop_map(|drained| Response::Bye { drained }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip_is_exact(req in arb_request()) {
        let bytes = req.encode();
        prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn response_roundtrip_is_exact(rsp in arb_response()) {
        let bytes = rsp.encode();
        prop_assert_eq!(Response::decode(&bytes).unwrap(), rsp);
    }

    #[test]
    fn truncation_yields_typed_error(req in arb_request(), cut_seed in 0usize..4096) {
        // Any strict prefix of a valid encoding is a typed error, with
        // exactly one documented exception: a traced frame cut at the
        // 16-byte trace-tail boundary IS the valid traceless (v1-compat)
        // encoding of the same message, so that cut decodes cleanly to
        // the same request with the trace zeroed.
        let bytes = req.encode();
        let cut = cut_seed % bytes.len();
        match Request::decode(&bytes[..cut]) {
            Err(_) => {}
            Ok(decoded) => {
                let traced = matches!(
                    &req,
                    Request::Submit(sub) if !sub.trace.is_zero()
                );
                prop_assert!(
                    traced && cut == bytes.len() - 16,
                    "prefix of len {} of a {}-byte frame decoded cleanly",
                    cut,
                    bytes.len(),
                );
                let mut traceless = req.clone();
                if let Request::Submit(sub) = &mut traceless {
                    sub.trace = TraceId::ZERO;
                }
                prop_assert_eq!(decoded, traceless);
            }
        }
    }

    #[test]
    fn single_byte_mutation_never_panics(
        req in arb_request(),
        pos_seed in 0usize..65536,
        xor in 1u8..=255,
    ) {
        // Flipping any single byte never panics: the result is either a
        // clean decode (the flip landed in a don't-care bit pattern such
        // as a pixel) or a typed error.
        let mut bytes = req.encode();
        let i = pos_seed % bytes.len();
        bytes[i] ^= xor;
        let _ = Request::decode(&bytes); // must return, not panic
    }

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        // Pure noise decodes to a typed error (or, vanishingly rarely, a
        // valid message) — never a panic.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn arbitrary_headers_never_panic(
        hdr in (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
        max in 0u32..1_000_000,
    ) {
        // Header validation is total over all 6-byte patterns.
        let header = [hdr.0, hdr.1, hdr.2, hdr.3, hdr.4, hdr.5];
        if let Ok(len) = parse_header(&header, max) {
            prop_assert!(header[0] == 0x54 && header[1] == 0x41);
            prop_assert!(len <= max);
        }
    }

    #[test]
    fn trailing_bytes_always_rejected(req in arb_request(), extra in 1usize..8) {
        let mut bytes = req.encode();
        bytes.extend(vec![0u8; extra]);
        prop_assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn traced_submit_roundtrip_preserves_trace(sub in arb_submit()) {
        // The trace ID (zero or not) survives the wire byte-for-byte, on
        // both the request and every reply shape that echoes it.
        let trace = sub.trace;
        let id = sub.id;
        let req = Request::Submit(sub);
        match Request::decode(&req.encode()).unwrap() {
            Request::Submit(back) => prop_assert_eq!(back.trace, trace),
            other => prop_assert!(false, "expected Submit, got {:?}", other),
        }
        let busy = Response::Busy {
            id,
            reason: ShedReason::Overloaded,
            retry_after_ms: 5,
            trace,
        };
        prop_assert_eq!(Response::decode(&busy.encode()).unwrap(), busy);
    }

    #[test]
    fn traceless_frames_encode_without_tail(sub in arb_submit()) {
        // v1 compatibility: a zero trace adds zero bytes, so traceless
        // frames are byte-identical to the pre-trace protocol and old
        // decoders keep working. A non-zero trace costs exactly 16 bytes.
        let mut traceless = sub.clone();
        traceless.trace = TraceId::ZERO;
        let base = Request::Submit(traceless.clone()).encode();
        let traced_len = Request::Submit(sub.clone()).encode().len();
        if sub.trace.is_zero() {
            prop_assert_eq!(traced_len, base.len());
        } else {
            prop_assert_eq!(traced_len, base.len() + 16);
        }
        // And the traceless encoding always decodes with trace == ZERO.
        match Request::decode(&base).unwrap() {
            Request::Submit(back) => {
                prop_assert!(back.trace.is_zero());
                prop_assert_eq!(back, traceless);
            }
            other => prop_assert!(false, "expected Submit, got {:?}", other),
        }
    }

    #[test]
    fn trace_tail_truncation_rejected(sub in arb_submit(), cut in 1usize..16) {
        // Cutting strictly inside the 16-byte trace tail leaves a frame
        // with 1..=15 trailing bytes — never a valid trace, always a
        // typed error.
        let mut traced = sub;
        if traced.trace.is_zero() {
            traced.trace = TraceId([0xAB; 16]);
        }
        let bytes = Request::Submit(traced).encode();
        prop_assert!(Request::decode(&bytes[..bytes.len() - cut]).is_err());
    }

    #[test]
    fn any_other_hello_version_is_a_typed_mismatch(
        proto_seed in 0u32..u32::MAX,
        tenant in arb_string(16),
    ) {
        let proto = if proto_seed == PROTO_VERSION { proto_seed + 1 } else { proto_seed };
        let bytes = Request::Hello { proto, tenant }.encode();
        match Request::decode(&bytes) {
            Err(ProtocolError::VersionMismatch { got, want }) => {
                prop_assert_eq!(got, proto);
                prop_assert_eq!(want, PROTO_VERSION);
            }
            other => prop_assert!(false, "expected VersionMismatch, got {:?}", other),
        }
    }
}
