//! Chaos suite for `ta-serve`: malformed bytes, mid-request disconnects,
//! injected engine panics and stalls, overload, and graceful drain. The
//! server must never wedge, never leak capacity, and never return a
//! bit-wrong frame — every completed frame is bit-identical to a serial
//! supervised run of the same `(spec, seed, pixels)`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ta_serve::client::{Client, ClientError};
use ta_serve::spec::CompiledArch;
use ta_serve::wire::{
    output_checksum, ArchSpec, Chaos, ErrorCode, Request, Response, ShedReason, Submit, MODE_EXACT,
};
use ta_serve::{ServeConfig, Server, ServerHandle};
use ta_telemetry::TraceId;

const W: u32 = 12;
const H: u32 = 12;

fn spec() -> ArchSpec {
    ArchSpec {
        kernel: "box3".into(),
        mode: MODE_EXACT,
        unit_ns: 1.0,
        nlse_terms: 7,
        nlde_terms: 20,
        fault_rate: 0.0,
    }
}

fn pixels(seed: u64) -> Vec<f64> {
    ta_image::synth::natural_image(W as usize, H as usize, seed)
        .pixels()
        .to_vec()
}

fn submit(id: u64, seed: u64, chaos: Chaos, want_outputs: bool) -> Submit {
    Submit {
        id,
        spec: spec(),
        seed,
        deadline_ms: 0,
        want_outputs,
        chaos,
        width: W,
        height: H,
        pixels: pixels(seed),
        trace: TraceId::ZERO,
    }
}

/// Starts a chaos-enabled server on an ephemeral port; returns the
/// address, control handle, and the runner thread (joined by `drain`).
fn start_server(
    cfg: ServeConfig,
) -> (
    String,
    ServerHandle,
    thread::JoinHandle<ta_serve::DrainSummary>,
) {
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let runner = thread::spawn(move || server.run().unwrap());
    (addr, handle, runner)
}

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        chaos_enabled: true,
        idle_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

fn drain(
    handle: &ServerHandle,
    runner: thread::JoinHandle<ta_serve::DrainSummary>,
) -> ta_serve::DrainSummary {
    handle.begin_drain();
    runner.join().unwrap()
}

/// The serial reference the acceptance contract names: same spec, seed,
/// pixels, retry policy, chaos — run locally through the supervisor.
fn serial_reference(sub: &Submit) -> (Vec<Vec<f64>>, u64) {
    let compiled = CompiledArch::compile(&sub.spec, sub.width, sub.height).unwrap();
    let engine: Arc<dyn ta_runtime::Engine> = if sub.chaos == Chaos::None {
        compiled.engine.clone()
    } else {
        Arc::new(ta_serve::chaos::ChaosEngine::new(
            compiled.engine.clone(),
            sub.chaos,
        ))
    };
    let supervisor = compiled.supervisor(&ta_serve::ExecPolicy::default(), sub.seed, None);
    let image =
        ta_image::Image::from_pixels(sub.width as usize, sub.height as usize, sub.pixels.clone())
            .unwrap();
    let (outputs, report) = supervisor.run_one(&engine, &image, 0, sub.seed).unwrap();
    assert!(
        !report.status.is_failed(),
        "reference run failed: {:?}",
        report.log
    );
    let planes = outputs.unwrap();
    let checksum = output_checksum(planes.iter().map(|p| p.pixels()));
    (
        planes.iter().map(|p| p.pixels().to_vec()).collect(),
        checksum,
    )
}

#[test]
fn clean_submit_is_bit_identical_to_serial_reference() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    let sub = submit(1, 42, Chaos::None, true);
    let (want_planes, want_checksum) = serial_reference(&sub);

    match client.submit(sub).unwrap() {
        Response::Done {
            id,
            degraded,
            checksum,
            outputs,
            ..
        } => {
            assert_eq!(id, 1);
            assert!(!degraded);
            assert_eq!(checksum, want_checksum);
            let got: Vec<Vec<f64>> = outputs.iter().map(|p| p.pixels.clone()).collect();
            assert_eq!(got, want_planes, "wire outputs must be bit-identical");
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let _ = client.goodbye();
    drain(&handle, runner);
}

#[test]
fn chaos_panic_is_retried_and_stays_bit_identical() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    let sub = submit(2, 7, Chaos::PanicAttempts { n: 1 }, true);
    let (want_planes, want_checksum) = serial_reference(&sub);

    match client.submit(sub).unwrap() {
        Response::Done {
            degraded,
            attempts,
            checksum,
            outputs,
            ..
        } => {
            assert!(!degraded, "retry should recover without fallback");
            assert!(attempts >= 2, "the injected panic must cost an attempt");
            assert_eq!(checksum, want_checksum);
            let got: Vec<Vec<f64>> = outputs.iter().map(|p| p.pixels.clone()).collect();
            assert_eq!(got, want_planes);
        }
        other => panic!("expected Done, got {other:?}"),
    }
    let _ = client.goodbye();
    drain(&handle, runner);
}

#[test]
fn engine_panics_on_every_attempt_degrade_to_reference() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    // Default policy retries twice → 3 attempts, all panicking.
    let sub = submit(3, 5, Chaos::PanicAttempts { n: 10 }, true);

    match client.submit(sub).unwrap() {
        Response::Done {
            degraded,
            fallback,
            outputs,
            ..
        } => {
            assert!(degraded, "exhausted retries must degrade, not fail");
            assert!(!fallback.is_empty());
            assert!(!outputs.is_empty());
        }
        other => panic!("expected degraded Done, got {other:?}"),
    }
    let _ = client.goodbye();
    drain(&handle, runner);
}

#[test]
fn garbage_bytes_are_rejected_and_connection_quarantined() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    client
        .send_raw(b"this is not a TA frame at all...")
        .unwrap();
    match client.recv().unwrap() {
        Response::ProtocolReject { code, .. } => assert_eq!(code, 1, "BadMagic"),
        other => panic!("expected ProtocolReject, got {other:?}"),
    }
    // Framing desync is fatal: the connection must now be closed.
    assert!(matches!(
        client.recv(),
        Err(ClientError::Closed) | Err(ClientError::Io(_))
    ));
    // And the server still serves fresh connections.
    let mut again = Client::connect_tcp(&addr, "acme").unwrap();
    assert!(matches!(
        again.call(&Request::Ping { nonce: 9 }).unwrap(),
        Response::Pong { nonce: 9 }
    ));
    let _ = again.goodbye();
    drain(&handle, runner);
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    let mut evil = Vec::from(*b"TA");
    evil.extend_from_slice(&u32::MAX.to_le_bytes());
    client.send_raw(&evil).unwrap();
    match client.recv().unwrap() {
        Response::ProtocolReject { code, .. } => assert_eq!(code, 2, "Oversized"),
        other => panic!("expected ProtocolReject, got {other:?}"),
    }
    drain(&handle, runner);
}

#[test]
fn truncated_frame_then_disconnect_does_not_wedge_the_server() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    // Declare 100 payload bytes, deliver 3, vanish.
    let mut partial = Vec::from(*b"TA");
    partial.extend_from_slice(&100u32.to_le_bytes());
    partial.extend_from_slice(&[1, 2, 3]);
    client.send_raw(&partial).unwrap();
    client.abort();

    // The server noticed the truncation (or EOF) and fully recovered.
    let mut again = Client::connect_tcp(&addr, "acme").unwrap();
    let sub = submit(4, 11, Chaos::None, false);
    let (_, want_checksum) = serial_reference(&sub);
    match again.submit(sub).unwrap() {
        Response::Done { checksum, .. } => assert_eq!(checksum, want_checksum),
        other => panic!("expected Done, got {other:?}"),
    }
    let _ = again.goodbye();
    drain(&handle, runner);
}

#[test]
fn payload_decode_errors_strike_then_quarantine() {
    let cfg = ServeConfig {
        strikes: 2,
        ..chaos_cfg()
    };
    let (addr, handle, runner) = start_server(cfg);
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();

    // Well-framed, bad payload (unknown tag): recoverable, costs a strike.
    let mut frame = Vec::from(*b"TA");
    frame.extend_from_slice(&1u32.to_le_bytes());
    frame.push(0x7f);
    client.send_raw(&frame).unwrap();
    match client.recv().unwrap() {
        Response::ProtocolReject {
            code, strikes_left, ..
        } => {
            assert_eq!(code, 4, "UnknownTag");
            assert_eq!(strikes_left, 1);
        }
        other => panic!("expected ProtocolReject, got {other:?}"),
    }
    // The connection survives the first strike...
    assert!(matches!(
        client.call(&Request::Ping { nonce: 1 }).unwrap(),
        Response::Pong { nonce: 1 }
    ));
    // ...but the second exhausts the allowance and quarantines.
    client.send_raw(&frame).unwrap();
    match client.recv().unwrap() {
        Response::ProtocolReject { strikes_left, .. } => assert_eq!(strikes_left, 0),
        other => panic!("expected ProtocolReject, got {other:?}"),
    }
    assert!(matches!(
        client.recv(),
        Err(ClientError::Closed) | Err(ClientError::Io(_))
    ));
    drain(&handle, runner);
}

#[test]
fn future_protocol_version_is_rejected_with_version_mismatch() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    // Bypass Client (which always speaks PROTO_VERSION) and handshake
    // with a version from the future.
    use std::net::TcpStream;
    let mut raw = TcpStream::connect(&addr).unwrap();
    let hello = Request::Hello {
        proto: 99,
        tenant: "time-traveller".into(),
    };
    ta_serve::wire::write_frame(&mut raw, &hello.encode()).unwrap();
    let payload = ta_serve::wire::read_frame(&mut raw, u32::MAX).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::ProtocolReject { code, message, .. } => {
            assert_eq!(code, 11, "VersionMismatch");
            assert!(message.contains("version 99"), "message: {message}");
        }
        other => panic!("expected ProtocolReject, got {other:?}"),
    }
    drain(&handle, runner);
}

#[test]
fn submit_without_hello_is_a_handshake_error() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    // Bypass Client (which handshakes) with a raw TCP stream.
    use std::net::TcpStream;
    let mut raw = TcpStream::connect(&addr).unwrap();
    ta_serve::wire::write_frame(
        &mut raw,
        &Request::Submit(submit(9, 1, Chaos::None, false)).encode(),
    )
    .unwrap();
    let payload = ta_serve::wire::read_frame(&mut raw, u32::MAX).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadHandshake),
        other => panic!("expected BadHandshake error, got {other:?}"),
    }
    drain(&handle, runner);
}

#[test]
fn chaos_directive_is_refused_when_chaos_disabled() {
    let cfg = ServeConfig {
        chaos_enabled: false,
        ..chaos_cfg()
    };
    let (addr, handle, runner) = start_server(cfg);
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    match client
        .submit(submit(5, 1, Chaos::PanicAttempts { n: 1 }, false))
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::ChaosDisabled),
        other => panic!("expected ChaosDisabled, got {other:?}"),
    }
    let _ = client.goodbye();
    drain(&handle, runner);
}

#[test]
fn pipelining_past_credits_sheds_with_credit_overrun() {
    let cfg = ServeConfig {
        credits: 1,
        ..chaos_cfg()
    };
    let (addr, handle, runner) = start_server(cfg);
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    assert_eq!(client.credits, 1);

    // First submission stalls the executor; everything pipelined behind
    // it overruns the 1-credit window at receive time.
    let stall = submit(10, 1, Chaos::StallAttempts { n: 1, ms: 300 }, false);
    client.send(&Request::Submit(stall)).unwrap();
    thread::sleep(Duration::from_millis(50)); // let the executor pick it up
    for id in 11..14 {
        client
            .send(&Request::Submit(submit(id, id, Chaos::None, false)))
            .unwrap();
    }
    let mut done = 0;
    let mut overrun = 0;
    for _ in 0..4 {
        match client.recv().unwrap() {
            Response::Done { .. } => done += 1,
            Response::Busy {
                reason: ShedReason::CreditOverrun,
                ..
            } => overrun += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(done >= 1, "the stalled frame itself must complete");
    assert!(overrun >= 1, "pipelining past the window must shed");
    let _ = client.goodbye();
    drain(&handle, runner);
}

#[test]
fn queued_frame_whose_deadline_lapsed_is_shed_expired() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    // Occupy the executor for ~300 ms, then queue a 1 ms-deadline frame
    // behind it: by execution time the deadline has long lapsed.
    client
        .send(&Request::Submit(submit(
            20,
            1,
            Chaos::StallAttempts { n: 1, ms: 300 },
            false,
        )))
        .unwrap();
    let mut expired = submit(21, 2, Chaos::None, false);
    expired.deadline_ms = 1;
    client.send(&Request::Submit(expired)).unwrap();

    let mut saw_expired = false;
    for _ in 0..2 {
        if let Response::Busy {
            id: 21,
            reason: ShedReason::Expired,
            ..
        } = client.recv().unwrap()
        {
            saw_expired = true;
        }
    }
    assert!(
        saw_expired,
        "the lapsed-deadline frame must be shed Expired"
    );
    let _ = client.goodbye();
    drain(&handle, runner);
}

#[test]
fn mid_request_disconnect_leaks_nothing() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    for round in 0..3 {
        let mut client = Client::connect_tcp(&addr, "ghost").unwrap();
        client
            .send(&Request::Submit(submit(
                round,
                round,
                Chaos::StallAttempts { n: 1, ms: 100 },
                false,
            )))
            .unwrap();
        client.abort(); // vanish mid-request, never read the response
    }
    // Capacity must return: wait for in-flight to hit zero, then a
    // normal client still gets served.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.health().in_flight > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        handle.health().in_flight,
        0,
        "abandoned frames must not leak permits"
    );

    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    assert!(matches!(
        client.submit(submit(99, 3, Chaos::None, false)).unwrap(),
        Response::Done { .. }
    ));
    let _ = client.goodbye();
    drain(&handle, runner);
}

#[test]
fn health_ping_and_metrics_answer_over_the_wire() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "probe").unwrap();
    match client.call(&Request::Health).unwrap() {
        Response::Health(h) => {
            assert!(h.ready);
            assert!(!h.draining);
            assert_eq!(h.connections, 1);
        }
        other => panic!("expected Health, got {other:?}"),
    }
    let _ = client.submit(submit(1, 1, Chaos::None, false)).unwrap();
    match client.call(&Request::Metrics).unwrap() {
        Response::Metrics { text } => {
            assert!(text.contains("ta_serve_submits_total"), "metrics: {text}");
            assert!(text.contains("ta_serve_tenant_admitted_total{tenant=\"probe\"}"));
        }
        other => panic!("expected Metrics, got {other:?}"),
    }
    let _ = client.goodbye();
    drain(&handle, runner);
}

#[test]
fn uds_transport_serves_frames_too() {
    let dir = std::env::temp_dir().join(format!("ta-serve-uds-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("serve.sock");
    let cfg = ServeConfig {
        uds: Some(sock.clone()),
        ..chaos_cfg()
    };
    let (_, handle, runner) = start_server(cfg);

    let mut client = Client::connect_uds(&sock, "unix-tenant").unwrap();
    let sub = submit(7, 13, Chaos::None, false);
    let (_, want_checksum) = serial_reference(&sub);
    match client.submit(sub).unwrap() {
        Response::Done { checksum, .. } => assert_eq!(checksum, want_checksum),
        other => panic!("expected Done, got {other:?}"),
    }
    let _ = client.goodbye();
    drain(&handle, runner);
    assert!(!sock.exists(), "drain must remove the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_finishes_in_flight_work_and_sheds_new_connections() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    let sub = submit(30, 21, Chaos::StallAttempts { n: 1, ms: 400 }, false);
    let (_, want_checksum) = serial_reference(&sub);
    client.send(&Request::Submit(sub)).unwrap();
    thread::sleep(Duration::from_millis(100)); // frame is now in flight

    handle.begin_drain();

    // A connection arriving during the drain is told to go away, typed.
    thread::sleep(Duration::from_millis(50));
    use std::net::TcpStream;
    if let Ok(mut late) = TcpStream::connect(&addr) {
        if let Ok(payload) = ta_serve::wire::read_frame(&mut late, u32::MAX) {
            match Response::decode(&payload).unwrap() {
                Response::Busy {
                    reason: ShedReason::Draining,
                    ..
                } => {}
                other => panic!("late connection expected Draining, got {other:?}"),
            }
        }
    }

    // The in-flight frame completes — bit-correct — then the server says
    // a drained goodbye.
    match client.recv().unwrap() {
        Response::Done {
            id: 30, checksum, ..
        } => assert_eq!(checksum, want_checksum),
        other => panic!("in-flight frame must complete, got {other:?}"),
    }
    match client.recv().unwrap() {
        Response::Bye { drained } => assert!(drained, "drain goodbye must report drained"),
        other => panic!("expected Bye, got {other:?}"),
    }

    let summary = runner.join().unwrap();
    assert!(summary.completed >= 1);
    assert_eq!(summary.connections_at_drain, 1);
}

#[test]
fn submits_during_drain_are_shed_but_answered() {
    let (addr, handle, runner) = start_server(chaos_cfg());
    let mut client = Client::connect_tcp(&addr, "acme").unwrap();
    // Keep the drain window open with a slow in-flight frame, then submit
    // again after drain begins: the late frame must be shed Draining (not
    // silently dropped), while the early one completes.
    client
        .send(&Request::Submit(submit(
            40,
            1,
            Chaos::StallAttempts { n: 1, ms: 400 },
            false,
        )))
        .unwrap();
    thread::sleep(Duration::from_millis(100));
    handle.begin_drain();
    thread::sleep(Duration::from_millis(30)); // let the reader observe the flag
    client
        .send(&Request::Submit(submit(41, 2, Chaos::None, false)))
        .unwrap();

    let mut saw_done = false;
    let mut saw_shed = false;
    for _ in 0..2 {
        match client.recv().unwrap() {
            Response::Done { id: 40, .. } => saw_done = true,
            Response::Busy {
                id: 41,
                reason: ShedReason::Draining,
                ..
            } => saw_shed = true,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(saw_done, "the pre-drain frame must complete");
    assert!(saw_shed, "the post-drain frame must be shed Draining");
    match client.recv().unwrap() {
        Response::Bye { drained } => assert!(drained),
        other => panic!("expected Bye, got {other:?}"),
    }
    runner.join().unwrap();
}
