//! The streaming convolution server.
//!
//! Thread shape: one accept loop (the caller's thread, inside
//! [`Server::run`]) plus, per connection, a *reader* thread and an
//! *executor* loop. The reader owns the receive half: it deframes and
//! decodes messages in timeout slices (so idle, slow-loris, and shutdown
//! are all observed within ~100 ms), stamps each submission with
//! receive-time admission verdicts that only the reader can make
//! (credit overrun, drain cutoff), and forwards connection events over an
//! in-process channel. The executor owns the send half and processes
//! events strictly in order — frames on one connection are serial (each
//! runs under a [`ta_pool::enter_worker`] guard, keeping supervised
//! execution deterministic), while separate connections execute in
//! parallel.
//!
//! Overload protection is layered: connection cap at accept, per-client
//! credit window at receive, global + per-tenant admission at execute,
//! per-request deadlines before and during execution. Every rejection is
//! a typed [`Response::Busy`] with a retry hint — the server sheds load,
//! it never stalls or drops a request silently.
//!
//! Graceful drain (SIGTERM or [`ServerHandle::begin_drain`]): stop
//! admitting connections and submissions, answer every frame received
//! before the cutoff, then send each client [`Response::Bye`] with
//! `drained = true` and exit cleanly.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use ta_image::Image;
use ta_journal::FsyncPolicy;
use ta_runtime::FrameStatus;
use ta_telemetry::{report_anomaly, AnomalyKind, FieldValue, FlightRecorder, TraceId, TraceScope};

use crate::admission::{sanitize_tenant, Admission, Permit};
use crate::bundle::{BundleWriter, InFlightCtx, RequestCtx};
use crate::cache::PlanCache;
use crate::chaos::ChaosEngine;
use crate::error::ServeError;
use crate::journal::{Completion, InFlight, RecoveryPolicy, RequestKey, ServeJournal};
use crate::signal;
use crate::slo::SloTracker;
use crate::spec::{CompiledArch, ExecPolicy};
use crate::stream::Stream;
use crate::wire::{
    output_checksum, parse_header, Chaos, ErrorCode, HealthSnapshot, OutputPlane, ProtocolError,
    Request, Response, ShedReason, Submit, PROTO_VERSION,
};

/// Build identity announced in [`Response::Welcome`].
pub const SERVER_NAME: &str = concat!("ta-serve/", env!("CARGO_PKG_VERSION"));

/// Poll slice for the accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read-timeout slice for connection readers: the upper bound on how
/// stale an idle/slow/shutdown observation can be.
const READ_SLICE: Duration = Duration::from_millis(25);

/// How long drain waits for readers to observe shutdown and executors to
/// say goodbye before force-closing sockets.
const DRAIN_GOODBYE_GRACE: Duration = Duration::from_secs(3);

/// Retry hint attached to [`Response::Busy`] replies, per shed class.
fn retry_hint_ms(reason: ShedReason) -> u32 {
    match reason {
        ShedReason::ConnectionLimit => 200,
        ShedReason::TenantQueueFull | ShedReason::Overloaded => 50,
        ShedReason::CreditOverrun => 10,
        ShedReason::Draining => 1000,
        ShedReason::Expired => 0,
    }
}

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address (e.g. `127.0.0.1:0`); `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix-domain socket path; `None` disables UDS.
    pub uds: Option<PathBuf>,
    /// Flow-control window: submissions a client may have outstanding.
    pub credits: u32,
    /// Largest accepted frame payload in bytes.
    pub max_frame: u32,
    /// Concurrent connections before accept-time shedding.
    pub max_connections: usize,
    /// Global in-flight frame cap (admission).
    pub max_inflight: usize,
    /// Per-tenant pending frame cap (admission).
    pub tenant_pending: usize,
    /// Deadline applied when a submission carries `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Close connections with no traffic for this long.
    pub idle_timeout: Duration,
    /// Receive budget for one frame's bytes (slow-loris defence).
    pub frame_recv_budget: Duration,
    /// Decode-level protocol violations tolerated before quarantine.
    pub strikes: u32,
    /// Retry/backoff shape for supervised execution.
    pub policy: ExecPolicy,
    /// Whether chaos directives in submissions are honoured.
    pub chaos_enabled: bool,
    /// Compiled plans cached per connection.
    pub plan_cache: usize,
    /// Write-ahead journal path; `None` runs without durability.
    pub journal: Option<PathBuf>,
    /// Fsync policy for journal appends.
    pub journal_fsync: FsyncPolicy,
    /// What to do with journaled in-flight frames found at startup.
    pub recovery: RecoveryPolicy,
    /// Latency objective every answered submission is judged against
    /// (per-tenant SLO burn tracking).
    pub slo: Duration,
    /// Directory for anomaly-triggered flight-recorder bundles; `None`
    /// disables the recorder and bundle dumps entirely.
    pub bundle_dir: Option<PathBuf>,
    /// Flight-recorder ring capacity (records), when bundles are on.
    pub recorder_capacity: usize,
    /// Head-sampling rate for forwarding traced records to the
    /// operator's own sink: 1 in `recorder_sample` traces (0/1 = all).
    pub recorder_sample: u64,
    /// Sheds within one second that count as a shed *burst* anomaly;
    /// 0 disables the burst detector.
    pub shed_burst: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tcp: Some("127.0.0.1:0".to_string()),
            uds: None,
            credits: 4,
            max_frame: 16 * 1024 * 1024,
            max_connections: 32,
            max_inflight: 8,
            tenant_pending: 4,
            default_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            frame_recv_budget: Duration::from_secs(5),
            strikes: 3,
            policy: ExecPolicy::default(),
            chaos_enabled: false,
            plan_cache: 4,
            journal: None,
            journal_fsync: FsyncPolicy::Batch,
            recovery: RecoveryPolicy::Recover,
            slo: Duration::from_millis(250),
            bundle_dir: None,
            recorder_capacity: 256,
            recorder_sample: 1,
            shed_burst: 32,
        }
    }
}

/// Counters backing health snapshots (mirrored into the telemetry
/// registry; kept separately so a snapshot never races a scrape).
#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    protocol_errors: AtomicU64,
}

struct Shared {
    cfg: ServeConfig,
    admission: Admission,
    stats: Stats,
    draining: AtomicBool,
    shutdown: AtomicBool,
    connections: AtomicUsize,
    /// Submissions received but not yet answered (any response counts);
    /// drain completes when this reaches zero.
    pending: AtomicUsize,
    /// Shutdown-capable handles to every open connection, for force-close.
    conn_streams: Mutex<BTreeMap<u64, Stream>>,
    next_conn: AtomicU64,
    /// Write-ahead journal + idempotency index (when durability is on).
    journal: Option<ServeJournal>,
    /// Per-tenant latency-objective burn tracking.
    slo: SloTracker,
    /// In-flight request context, keyed by trace ID: census/energy
    /// attribution for SLO settling, and the victim record bundle dumps
    /// name. Bounded by the in-flight cap.
    inflight_ctx: InFlightCtx,
    /// Shed-burst detector: (window start, sheds in window).
    shed_window: Mutex<(Instant, u64)>,
}

impl Shared {
    fn health(&self) -> HealthSnapshot {
        let draining = self.draining.load(Ordering::SeqCst);
        HealthSnapshot {
            ready: !draining && !self.shutdown.load(Ordering::SeqCst),
            draining,
            connections: self.connections.load(Ordering::SeqCst) as u32,
            in_flight: self.pending.load(Ordering::SeqCst) as u32,
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            degraded: self.stats.degraded.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            protocol_errors: self.stats.protocol_errors.load(Ordering::Relaxed),
        }
    }

    fn count_shed(&self, reason: ShedReason) {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
        ta_telemetry::metrics()
            .labeled_counter("ta_serve_shed_total", "reason", reason.label())
            .inc();
        if self.cfg.shed_burst == 0 {
            return;
        }
        // Burst detection: crossing the threshold within a one-second
        // window is an anomaly (exactly once per window).
        let now = Instant::now();
        let mut window = self
            .shed_window
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if now.duration_since(window.0) > Duration::from_secs(1) {
            *window = (now, 0);
        }
        window.1 += 1;
        if window.1 == self.cfg.shed_burst {
            let count = window.1;
            drop(window);
            report_anomaly(
                AnomalyKind::ShedBurst,
                vec![
                    ("count", count.into()),
                    ("reason", FieldValue::Str(reason.label().to_string())),
                ],
            );
        }
    }

    fn count_protocol_error(&self, err: &ProtocolError) {
        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        ta_telemetry::metrics()
            .labeled_counter(
                "ta_serve_protocol_errors_total",
                "code",
                &err.code().to_string(),
            )
            .inc();
    }

    /// Counts a failed journal append/rewrite. Durability degrades but
    /// serving continues: a crash after a lost record falls back to
    /// client-retry recompute, which the determinism contract keeps
    /// bit-identical to the lost answer.
    fn count_journal_error(&self) {
        ta_telemetry::metrics()
            .counter("ta_serve_journal_errors_total")
            .inc();
        report_anomaly(AnomalyKind::JournalError, vec![]);
    }

    fn update_journal_gauges(&self) {
        if let Some(journal) = &self.journal {
            let stats = journal.stats();
            let metrics = ta_telemetry::metrics();
            metrics
                .gauge("ta_serve_journal_records")
                .set(stats.records as f64);
            metrics
                .gauge("ta_serve_journal_bytes")
                .set(stats.bytes as f64);
        }
    }
}

/// Control/observation handle, clonable and usable from any thread while
/// [`Server::run`] blocks.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: new connections and submissions are shed
    /// with [`ShedReason::Draining`]; frames already received complete.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// True once drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Current health/readiness snapshot.
    pub fn health(&self) -> HealthSnapshot {
        self.shared.health()
    }
}

/// What the drain answered for, reported by [`Server::run`] on exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Connections open when drain began.
    pub connections_at_drain: usize,
    /// Frames completed with usable output over the server's lifetime.
    pub completed: u64,
    /// Requests shed over the server's lifetime.
    pub shed: u64,
    /// Frames that produced no usable output.
    pub failed: u64,
    /// Connections force-closed because they did not acknowledge
    /// shutdown within the grace period.
    pub forced_closes: usize,
}

/// A bound, not-yet-running server.
pub struct Server {
    shared: Arc<Shared>,
    tcp: Option<TcpListener>,
    uds: Option<UnixListener>,
    uds_path: Option<PathBuf>,
    local_addr: Option<SocketAddr>,
    /// Journaled in-flight requests found at bind, processed (recovered
    /// or shed) at the top of [`Server::run`] before the accept loop.
    recovered_in_flight: Vec<InFlight>,
}

impl Server {
    /// Binds the configured listeners.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when no listener is configured,
    /// [`ServeError::Bind`] when an endpoint cannot be bound.
    pub fn bind(cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.tcp.is_none() && cfg.uds.is_none() {
            return Err(ServeError::Config(
                "at least one of tcp/uds must be configured".into(),
            ));
        }
        if cfg.credits == 0 {
            return Err(ServeError::Config("credits must be at least 1".into()));
        }
        let tcp = match &cfg.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
                    endpoint: format!("tcp:{addr}"),
                    source,
                })?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let uds = match &cfg.uds {
            Some(path) => {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path).map_err(|source| ServeError::Bind {
                    endpoint: format!("uds:{}", path.display()),
                    source,
                })?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let local_addr = tcp.as_ref().and_then(|l| l.local_addr().ok());
        let uds_path = cfg.uds.clone();
        let (journal, recovered_in_flight) = match &cfg.journal {
            Some(path) => {
                let (journal, recovery) = ServeJournal::open(path, cfg.journal_fsync)
                    .map_err(|e| ServeError::Journal(e.to_string()))?;
                // Touch the recovery metric family up front so scrapes
                // show zeros, not absence, before the first event.
                let metrics = ta_telemetry::metrics();
                for name in [
                    "ta_serve_replayed_total",
                    "ta_serve_recovered_total",
                    "ta_serve_shed_on_recovery_total",
                    "ta_serve_journal_errors_total",
                ] {
                    metrics.counter(name).add(0);
                }
                let stats = journal.stats();
                metrics
                    .gauge("ta_serve_journal_records")
                    .set(stats.records as f64);
                metrics
                    .gauge("ta_serve_journal_bytes")
                    .set(stats.bytes as f64);
                (Some(journal), recovery.in_flight)
            }
            None => (None, Vec::new()),
        };
        describe_serve_metrics();
        let inflight_ctx: InFlightCtx = Arc::new(Mutex::new(HashMap::new()));
        // Bundles on: wrap whatever sink the operator installed in the
        // flight recorder (ring + head-sampled forwarding) and install
        // the anomaly hook that dumps the ring on trouble.
        if let Some(dir) = cfg.bundle_dir.as_ref() {
            let tracer = ta_telemetry::tracer();
            let recorder = Arc::new(FlightRecorder::new(
                cfg.recorder_capacity,
                cfg.recorder_sample,
                tracer.current_sink(),
            ));
            tracer.install(recorder.clone());
            let writer = BundleWriter::new(dir.clone(), recorder.clone(), inflight_ctx.clone());
            let contexts = inflight_ctx.clone();
            ta_telemetry::set_anomaly_hook(Arc::new(move |anomaly| {
                // Dump only anomalies that are plausibly ours: untraced
                // (server-level trouble) or traced to a request this
                // server currently has in flight. Keeps concurrent
                // servers in one process (tests) out of each other's
                // bundle directories.
                let ours = anomaly.trace_hex.is_empty()
                    || TraceId::from_hex(&anomaly.trace_hex).is_some_and(|t| {
                        contexts
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .contains_key(&t)
                    });
                if ours {
                    writer.dump(anomaly);
                }
            }));
        }
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.max_inflight, cfg.tenant_pending),
            slo: SloTracker::new(cfg.slo),
            cfg,
            stats: Stats::default(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            conn_streams: Mutex::new(BTreeMap::new()),
            next_conn: AtomicU64::new(1),
            journal,
            inflight_ctx,
            shed_window: Mutex::new((Instant::now(), 0)),
        });
        Ok(Server {
            shared,
            tcp,
            uds,
            uds_path,
            local_addr,
            recovered_in_flight,
        })
    }

    /// The bound TCP address (with the OS-assigned port when the config
    /// asked for port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// A clonable control handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Runs the accept loop until a graceful drain completes (triggered
    /// by SIGTERM/SIGINT or [`ServerHandle::begin_drain`]).
    ///
    /// # Errors
    ///
    /// [`ServeError`] only for lifecycle-level failures; per-connection
    /// and per-request errors are handled on the wire.
    pub fn run(self) -> Result<DrainSummary, ServeError> {
        let shared = self.shared.clone();
        let metrics = ta_telemetry::metrics();
        let conn_gauge = metrics.gauge("ta_serve_connections");
        let mut threads: Vec<thread::JoinHandle<()>> = Vec::new();

        // --- crash recovery ------------------------------------------
        // Resolve journaled in-flight frames before any client is
        // accepted, so retries arriving the moment we listen already see
        // the recovered completion index.
        if shared.journal.is_some() {
            let started = Instant::now();
            for inflight in &self.recovered_in_flight {
                recover_in_flight(&shared, inflight);
            }
            metrics
                .histogram("ta_serve_recovery_seconds")
                .observe_duration(started.elapsed());
            shared.update_journal_gauges();
            tracer_event("serve.recovery_complete", self.recovered_in_flight.len(), 0);
        }

        loop {
            if signal::term_requested() {
                shared.draining.store(true, Ordering::SeqCst);
            }
            if shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let mut accepted_any = false;
            if let Some(l) = &self.tcp {
                while let Ok((s, _peer)) = l.accept() {
                    accepted_any = true;
                    Self::admit_connection(&shared, Stream::Tcp(s), &mut threads);
                }
            }
            if let Some(l) = &self.uds {
                while let Ok((s, _peer)) = l.accept() {
                    accepted_any = true;
                    Self::admit_connection(&shared, Stream::Unix(s), &mut threads);
                }
            }
            conn_gauge.set(shared.connections.load(Ordering::SeqCst) as f64);
            reap_finished(&mut threads);
            if !accepted_any {
                thread::sleep(ACCEPT_POLL);
            }
        }

        // --- drain ---------------------------------------------------
        let connections_at_drain = shared.connections.load(Ordering::SeqCst);
        tracer_event("serve.drain_begin", connections_at_drain, 0);

        // New connections during drain get an immediate Busy and close.
        // Keep polling the listeners so clients are told, not ignored.
        let drain_deadline_check = |shared: &Shared| shared.pending.load(Ordering::SeqCst) == 0;
        while !drain_deadline_check(&shared) {
            self.shed_new_connections(&shared);
            thread::sleep(ACCEPT_POLL);
        }

        // Every pre-drain frame is answered; tell connections to say Bye.
        shared.shutdown.store(true, Ordering::SeqCst);
        let grace_end = Instant::now() + DRAIN_GOODBYE_GRACE;
        while shared.connections.load(Ordering::SeqCst) > 0 && Instant::now() < grace_end {
            self.shed_new_connections(&shared);
            thread::sleep(ACCEPT_POLL);
        }

        // Force-close stragglers (clients that never read their Bye).
        let mut forced = 0;
        {
            let streams = shared
                .conn_streams
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for s in streams.values() {
                s.shutdown();
                forced += 1;
            }
        }
        for t in threads {
            let _ = t.join();
        }
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        // Every request is answered: shrink the journal to its durable
        // core (the completion index) for the next process.
        if let Some(journal) = &shared.journal {
            if journal.compact().is_err() {
                shared.count_journal_error();
            }
            shared.update_journal_gauges();
        }
        conn_gauge.set(0.0);
        let summary = DrainSummary {
            connections_at_drain,
            completed: shared.stats.completed.load(Ordering::Relaxed),
            shed: shared.stats.shed.load(Ordering::Relaxed),
            failed: shared.stats.failed.load(Ordering::Relaxed),
            forced_closes: forced,
        };
        tracer_event("serve.drain_complete", summary.completed as usize, forced);
        Ok(summary)
    }

    /// Answers (and closes) connections arriving while draining.
    fn shed_new_connections(&self, shared: &Arc<Shared>) {
        for stream in self.poll_accepts() {
            shared.count_shed(ShedReason::Draining);
            let mut stream = stream;
            let rsp = Response::Busy {
                id: 0,
                reason: ShedReason::Draining,
                retry_after_ms: retry_hint_ms(ShedReason::Draining),
                trace: TraceId::ZERO,
            };
            let _ = crate::wire::write_frame(&mut stream, &rsp.encode());
            stream.shutdown();
        }
    }

    fn poll_accepts(&self) -> Vec<Stream> {
        let mut out = Vec::new();
        if let Some(l) = &self.tcp {
            while let Ok((s, _)) = l.accept() {
                out.push(Stream::Tcp(s));
            }
        }
        if let Some(l) = &self.uds {
            while let Ok((s, _)) = l.accept() {
                out.push(Stream::Unix(s));
            }
        }
        out
    }

    fn admit_connection(
        shared: &Arc<Shared>,
        mut stream: Stream,
        threads: &mut Vec<thread::JoinHandle<()>>,
    ) {
        if shared.connections.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            shared.count_shed(ShedReason::ConnectionLimit);
            let rsp = Response::Busy {
                id: 0,
                reason: ShedReason::ConnectionLimit,
                retry_after_ms: retry_hint_ms(ShedReason::ConnectionLimit),
                trace: TraceId::ZERO,
            };
            let _ = crate::wire::write_frame(&mut stream, &rsp.encode());
            stream.shutdown();
            return;
        }
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared.connections.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conn_streams
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(id, clone);
        }
        let conn_shared = shared.clone();
        let spawned = thread::Builder::new()
            .name(format!("ta-serve-conn-{id}"))
            .spawn(move || {
                Connection::new(id, conn_shared.clone()).run(stream);
                conn_shared
                    .conn_streams
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&id);
                conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(t) => threads.push(t),
            Err(_) => {
                // Thread exhaustion: undo the registration and shed.
                shared
                    .conn_streams
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&id);
                shared.connections.fetch_sub(1, Ordering::SeqCst);
                shared.count_shed(ShedReason::Overloaded);
            }
        }
    }
}

fn reap_finished(threads: &mut Vec<thread::JoinHandle<()>>) {
    let mut i = 0;
    while i < threads.len() {
        if threads[i].is_finished() {
            let t = threads.swap_remove(i);
            let _ = t.join();
        } else {
            i += 1;
        }
    }
}

/// Registers help text for the serve metric families, so a Prometheus
/// scrape (or `tconv top`) renders them self-describing.
fn describe_serve_metrics() {
    let m = ta_telemetry::metrics();
    for (family, help) in [
        ("ta_serve_submits_total", "Submissions received"),
        (
            "ta_serve_completed_total",
            "Frames answered with usable output",
        ),
        (
            "ta_serve_degraded_total",
            "Frames served by the digital fallback",
        ),
        (
            "ta_serve_failed_total",
            "Frames that produced no usable output",
        ),
        (
            "ta_serve_shed_total",
            "Requests shed, by overload-protection reason",
        ),
        ("ta_serve_latency_seconds", "Submit-to-response latency"),
        ("ta_serve_connections", "Connections currently open"),
        (
            "ta_serve_journal_records",
            "Records in the write-ahead journal",
        ),
        ("ta_serve_journal_bytes", "Bytes in the write-ahead journal"),
        (
            "ta_serve_journal_errors_total",
            "Journal appends/rewrites that failed",
        ),
        (
            "ta_serve_quarantined_total",
            "Connections closed for repeated protocol violations",
        ),
        ("ta_anomalies_total", "Anomalies reported, by kind"),
        (
            "ta_serve_bundles_written_total",
            "Flight-recorder bundles dumped",
        ),
        (
            "ta_serve_bundle_errors_total",
            "Bundle dumps that failed to write",
        ),
        (
            "ta_serve_bundle_rate_limited_total",
            "Bundle dumps skipped by the rate limiter",
        ),
    ] {
        m.describe(family, help);
    }
}

fn tracer_event(name: &'static str, a: usize, b: usize) {
    ta_telemetry::tracer().event(
        name,
        vec![
            ("a", FieldValue::from(a as u64)),
            ("b", FieldValue::from(b as u64)),
        ],
    );
}

/// Resolves one journaled in-flight request at startup: re-executes it
/// (journaling the completion, so the retrying client is answered from
/// the index) or sheds it when the policy or the request's
/// admissibility says not to. Re-execution is safe because a completed
/// frame is a pure function of `(spec, seed, pixels, policy)` — the
/// recovered answer is bit-identical to what the crashed process would
/// have sent.
fn recover_in_flight(shared: &Shared, inflight: &InFlight) {
    let metrics = ta_telemetry::metrics();
    let sub = &inflight.sub;
    let key = RequestKey::of(&inflight.tenant, sub);
    // Recovery runs under the journaled request's trace, so its spans and
    // any anomalies tie back to the original submission.
    let _scope = TraceScope::enter(sub.trace);

    // A chaos directive on a server restarted without chaos support is
    // no longer admissible; shed rather than silently drop the flag.
    let recoverable = shared.cfg.recovery == RecoveryPolicy::Recover
        && (sub.chaos == Chaos::None || shared.cfg.chaos_enabled);
    let compiled =
        recoverable.then(|| CompiledArch::compile(&sub.spec, sub.width, sub.height).ok());
    let (compiled, image) = match compiled.flatten() {
        Some(c) => {
            let image =
                Image::from_pixels(sub.width as usize, sub.height as usize, sub.pixels.clone());
            match image {
                Ok(i) => (c, i),
                Err(_) => {
                    shed_on_recovery(shared, &key);
                    return;
                }
            }
        }
        None => {
            shed_on_recovery(shared, &key);
            return;
        }
    };

    let engine = if sub.chaos == Chaos::None {
        compiled.engine.clone()
    } else {
        Arc::new(ChaosEngine::new(compiled.engine.clone(), sub.chaos)) as _
    };
    let deadline = if sub.deadline_ms == 0 {
        shared.cfg.default_deadline
    } else {
        Duration::from_millis(u64::from(sub.deadline_ms))
    };
    let attempt_budget =
        (deadline / (shared.cfg.policy.max_retries + 1)).max(Duration::from_millis(1));
    let supervisor = compiled.supervisor(&shared.cfg.policy, sub.seed, Some(attempt_budget));
    let _worker = ta_pool::enter_worker();
    let run = supervisor.run_one(&engine, &image, 0, sub.seed);
    drop(_worker);

    match run {
        Ok((Some(planes), report)) if !report.status.is_failed() => {
            let (degraded, fallback) = match &report.status {
                FrameStatus::Degraded { fallback, .. } => (true, fallback.clone()),
                _ => (false, String::new()),
            };
            let checksum = output_checksum(planes.iter().map(|p| p.pixels()));
            if let Some(journal) = &shared.journal {
                let completion = Completion {
                    key,
                    checksum,
                    degraded,
                    fallback,
                    attempts: report.attempts,
                };
                if journal.record_completion(&completion).is_err() {
                    shared.count_journal_error();
                }
            }
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            metrics.counter("ta_serve_completed_total").inc();
            if degraded {
                shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
                metrics.counter("ta_serve_degraded_total").inc();
            }
            metrics.counter("ta_serve_recovered_total").inc();
        }
        _ => {
            // No usable output: resolve the record as failed so restarts
            // stop re-executing it; a client retry recomputes.
            if let Some(journal) = &shared.journal {
                if journal.record_failed(&key).is_err() {
                    shared.count_journal_error();
                }
            }
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            metrics.counter("ta_serve_failed_total").inc();
        }
    }
}

fn shed_on_recovery(shared: &Shared, key: &RequestKey) {
    if let Some(journal) = &shared.journal {
        if journal.record_shed(key).is_err() {
            shared.count_journal_error();
        }
    }
    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
    ta_telemetry::metrics()
        .counter("ta_serve_shed_on_recovery_total")
        .inc();
}

// ---------------------------------------------------------------------
// Per-connection machinery
// ---------------------------------------------------------------------

/// What the reader thread hands the executor.
enum ConnEvent {
    /// A decoded message, with receive-time admission verdicts.
    Msg {
        req: Request,
        received: Instant,
        /// `Some` when the reader already decided to shed this submission
        /// (credit overrun, drain cutoff).
        shed: Option<ShedReason>,
    },
    /// The payload or framing violated the protocol. `fatal` means the
    /// byte stream is desynchronised and the connection must close.
    Bad { err: ProtocolError, fatal: bool },
    /// No traffic for the idle window.
    Idle,
    /// Clean end of stream.
    Eof,
    /// Transport failure.
    Io,
    /// Graceful shutdown: say Bye and close.
    Shutdown,
}

struct Connection {
    id: u64,
    shared: Arc<Shared>,
    /// Incremented once per answered submission; the reader subtracts it
    /// from its own receive count to enforce the credit window.
    responded: Arc<AtomicU64>,
}

impl Connection {
    fn new(id: u64, shared: Arc<Shared>) -> Self {
        Connection {
            id,
            shared,
            responded: Arc::new(AtomicU64::new(0)),
        }
    }

    fn run(&self, stream: Stream) {
        let reader_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                stream.shutdown();
                return;
            }
        };
        let (tx, rx) = mpsc::channel();
        let reader = {
            let shared = self.shared.clone();
            let responded = self.responded.clone();
            let id = self.id;
            thread::Builder::new()
                .name(format!("ta-serve-read-{id}"))
                .spawn(move || reader_loop(reader_stream, shared, responded, tx))
        };
        let reader = match reader {
            Ok(t) => t,
            Err(_) => {
                stream.shutdown();
                return;
            }
        };
        self.executor_loop(stream, rx);
        let _ = reader.join();
    }

    /// Serial event processing; owns the write half.
    fn executor_loop(&self, mut stream: Stream, rx: Receiver<ConnEvent>) {
        let cfg = &self.shared.cfg;
        let mut cache = PlanCache::new(cfg.plan_cache);
        let mut tenant: Option<String> = None;
        let mut strikes_left = cfg.strikes;
        // Once false, the socket is closed: keep consuming events for
        // accounting (pending decrements) but write nothing.
        let mut open = true;

        for ev in rx {
            match ev {
                ConnEvent::Msg {
                    req,
                    received,
                    shed,
                } => {
                    match req {
                        Request::Hello {
                            proto: _,
                            tenant: raw,
                        } => {
                            // A version-skewed Hello never reaches this
                            // arm: the decoder rejects it with the typed
                            // `ProtocolError::VersionMismatch` (code 11)
                            // on the ConnEvent::Bad path below.
                            if tenant.is_some() {
                                open &= self.send(
                                    &mut stream,
                                    &Response::Error {
                                        id: 0,
                                        code: ErrorCode::BadHandshake,
                                        message: "handshake repeated".to_string(),
                                        trace: TraceId::ZERO,
                                    },
                                );
                                self.close(&mut stream, &mut open);
                            } else {
                                let t = sanitize_tenant(&raw);
                                ta_telemetry::metrics()
                                    .labeled_counter("ta_serve_tenant_connects_total", "tenant", &t)
                                    .inc();
                                tenant = Some(t);
                                open &= self.send(
                                    &mut stream,
                                    &Response::Welcome {
                                        proto: PROTO_VERSION,
                                        credits: cfg.credits,
                                        max_frame: cfg.max_frame,
                                        server: SERVER_NAME.to_string(),
                                    },
                                );
                            }
                        }
                        Request::Submit(sub) => {
                            let rsp = self.serve_submit(&mut cache, &tenant, sub, received, shed);
                            self.responded.fetch_add(1, Ordering::SeqCst);
                            self.shared.pending.fetch_sub(1, Ordering::SeqCst);
                            if open {
                                open &= self.send(&mut stream, &rsp);
                            }
                        }
                        Request::Ping { nonce } => {
                            open &= self.send(&mut stream, &Response::Pong { nonce });
                        }
                        Request::Health => {
                            open &= self.send(&mut stream, &Response::Health(self.shared.health()));
                        }
                        Request::Metrics => {
                            open &= self.send(
                                &mut stream,
                                &Response::Metrics {
                                    text: ta_telemetry::metrics().to_prometheus(),
                                },
                            );
                        }
                        Request::Goodbye => {
                            open &= self.send(&mut stream, &Response::Bye { drained: false });
                            self.close(&mut stream, &mut open);
                        }
                    }
                }
                ConnEvent::Bad { err, fatal } => {
                    self.shared.count_protocol_error(&err);
                    strikes_left = strikes_left.saturating_sub(1);
                    if open {
                        let rsp = Response::ProtocolReject {
                            code: err.code(),
                            message: err.to_string(),
                            strikes_left,
                        };
                        open &= self.send(&mut stream, &rsp);
                    }
                    if fatal || strikes_left == 0 {
                        ta_telemetry::metrics()
                            .counter("ta_serve_quarantined_total")
                            .inc();
                        report_anomaly(
                            AnomalyKind::Quarantine,
                            vec![
                                ("conn", self.id.into()),
                                ("code", u64::from(err.code()).into()),
                            ],
                        );
                        self.close(&mut stream, &mut open);
                    }
                }
                ConnEvent::Idle => {
                    ta_telemetry::metrics()
                        .counter("ta_serve_idle_closed_total")
                        .inc();
                    open &= self.send(&mut stream, &Response::Bye { drained: false });
                    self.close(&mut stream, &mut open);
                }
                ConnEvent::Eof | ConnEvent::Io => {
                    self.close(&mut stream, &mut open);
                }
                ConnEvent::Shutdown => {
                    open &= self.send(&mut stream, &Response::Bye { drained: true });
                    self.close(&mut stream, &mut open);
                }
            }
        }
        if open {
            stream.shutdown();
        }
    }

    /// Executes (or sheds) one submission and builds its response.
    /// Exactly one response per submission, on every path.
    ///
    /// This wrapper owns the request's observability: it assigns a trace
    /// ID when the client sent none, scopes the thread to it (so every
    /// span and anomaly down the stack carries it), times the request
    /// into `ta_serve_latency_seconds`, and settles the tenant's SLO
    /// accounting from the response kind.
    fn serve_submit(
        &self,
        cache: &mut PlanCache,
        tenant: &Option<String>,
        mut sub: Submit,
        received: Instant,
        shed: Option<ShedReason>,
    ) -> Response {
        if sub.trace.is_zero() {
            sub.trace = TraceId::generate();
        }
        let trace = sub.trace;
        let _scope = TraceScope::enter(trace);
        let started = Instant::now();
        let rsp = self.execute_submit(cache, tenant, sub, received, shed);
        let latency = started.elapsed();
        ta_telemetry::metrics()
            .histogram("ta_serve_latency_seconds")
            .observe_duration(latency);
        // The in-flight context (inserted once the plan compiled) holds
        // the census/energy attribution the SLO tracker charges.
        let ctx = self
            .shared
            .inflight_ctx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&trace);
        if let Some(tenant) = tenant {
            let census = ctx.as_ref().map(|c| (&c.census, &c.energy));
            match &rsp {
                Response::Done { .. } => self.shared.slo.observe(tenant, latency, true, census),
                Response::Error { .. } => self.shared.slo.observe(tenant, latency, false, census),
                Response::Busy { .. } => self.shared.slo.observe_shed(tenant),
                _ => {}
            }
        }
        rsp
    }

    fn execute_submit(
        &self,
        cache: &mut PlanCache,
        tenant: &Option<String>,
        sub: Submit,
        received: Instant,
        shed: Option<ShedReason>,
    ) -> Response {
        let cfg = &self.shared.cfg;
        let trace = sub.trace;
        self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        let metrics = ta_telemetry::metrics();
        metrics.counter("ta_serve_submits_total").inc();

        let tenant = match tenant {
            Some(t) => t.clone(),
            None => {
                return Response::Error {
                    id: sub.id,
                    code: ErrorCode::BadHandshake,
                    message: "Hello required before Submit".into(),
                    trace,
                }
            }
        };
        if let Some(reason) = shed {
            self.shared.count_shed(reason);
            return Response::Busy {
                id: sub.id,
                reason,
                retry_after_ms: retry_hint_ms(reason),
                trace,
            };
        }

        // Idempotent retry: if this exact (tenant, id, seed) already
        // completed — typically a client re-sending after a server crash
        // — answer from the journal's completion index instead of
        // recomputing, so no frame is ever computed twice or (per the
        // determinism contract) differently. The reply carries the
        // original checksum/disposition; outputs are not retained.
        let key = RequestKey::of(&tenant, &sub);
        if let Some(journal) = &self.shared.journal {
            if let Some(done) = journal.lookup(&key) {
                metrics.counter("ta_serve_replayed_total").inc();
                self.shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                metrics.counter("ta_serve_completed_total").inc();
                return Response::Done {
                    id: sub.id,
                    degraded: done.degraded,
                    fallback: done.fallback,
                    attempts: done.attempts,
                    latency_us: 0,
                    checksum: done.checksum,
                    outputs: Vec::new(),
                    trace,
                };
            }
        }

        // Deadline bookkeeping starts at receive time, so queueing delay
        // behind earlier frames on this connection counts against it.
        let deadline = if sub.deadline_ms == 0 {
            cfg.default_deadline
        } else {
            Duration::from_millis(u64::from(sub.deadline_ms))
        };
        let elapsed = received.elapsed();
        if elapsed >= deadline {
            self.shared.count_shed(ShedReason::Expired);
            return Response::Busy {
                id: sub.id,
                reason: ShedReason::Expired,
                retry_after_ms: retry_hint_ms(ShedReason::Expired),
                trace,
            };
        }
        let remaining = deadline - elapsed;

        let _permit: Permit = match self.shared.admission.admit(&tenant) {
            Ok(p) => p,
            Err(reason) => {
                self.shared.count_shed(reason);
                return Response::Busy {
                    id: sub.id,
                    reason,
                    retry_after_ms: retry_hint_ms(reason),
                    trace,
                };
            }
        };
        metrics
            .labeled_counter("ta_serve_tenant_admitted_total", "tenant", &tenant)
            .inc();
        ta_telemetry::tracer().event(
            "serve.admitted",
            vec![
                ("id", sub.id.into()),
                ("tenant", FieldValue::Str(tenant.clone())),
            ],
        );

        if sub.chaos != Chaos::None && !cfg.chaos_enabled {
            return Response::Error {
                id: sub.id,
                code: ErrorCode::ChaosDisabled,
                message: "server started without --chaos".into(),
                trace,
            };
        }

        let before = cache.stats();
        let compiled = match cache.get(&sub.spec, sub.width, sub.height) {
            Ok(c) => c,
            Err(e) => {
                return Response::Error {
                    id: sub.id,
                    code: ErrorCode::BadSpec,
                    message: e.to_string(),
                    trace,
                }
            }
        };
        let after = cache.stats();
        metrics
            .counter("ta_serve_plan_hits_total")
            .add(after.0 - before.0);
        metrics
            .counter("ta_serve_plan_misses_total")
            .add(after.1 - before.1);
        metrics
            .counter("ta_serve_plan_evictions_total")
            .add(after.2 - before.2);

        // File the request's context (identity plus the compiled plan's
        // static census and energy attribution): the SLO tracker charges
        // the census at settle time, and an anomaly mid-execution names
        // its victim from the same record. Bounded by the in-flight cap.
        {
            let ctx = RequestCtx {
                tenant: tenant.clone(),
                id: sub.id,
                seed: sub.seed,
                kernel: sub.spec.kernel.clone(),
                mode: sub.spec.mode,
                width: sub.width,
                height: sub.height,
                deadline_ms: deadline.as_millis() as u64,
                census: compiled.arch.op_census(),
                energy: compiled.arch.stage_energy(),
            };
            self.shared
                .inflight_ctx
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(trace, ctx);
        }

        // Write-ahead: the request is admitted and compiles; journal it
        // before execution so a crash from here on leaves a recoverable
        // in-flight record. An append failure degrades durability, not
        // availability — count it and serve anyway.
        if let Some(journal) = &self.shared.journal {
            if journal.record_accepted(&tenant, &sub).is_err() {
                self.shared.count_journal_error();
            }
        }

        let image = match Image::from_pixels(sub.width as usize, sub.height as usize, sub.pixels) {
            Ok(i) => i,
            Err(e) => {
                self.journal_failed(&key);
                return Response::Error {
                    id: sub.id,
                    code: ErrorCode::DimensionMismatch,
                    message: e.to_string(),
                    trace,
                };
            }
        };

        let engine = if sub.chaos == Chaos::None {
            compiled.engine.clone()
        } else {
            Arc::new(ChaosEngine::new(compiled.engine.clone(), sub.chaos)) as _
        };

        // The remaining deadline is split across the retry ladder so the
        // watchdog can abandon a wedged attempt while a later attempt (or
        // the fallback) still has budget to answer within the deadline.
        let attempt_budget =
            (remaining / (cfg.policy.max_retries + 1)).max(Duration::from_millis(1));
        let supervisor = compiled.supervisor(&cfg.policy, sub.seed, Some(attempt_budget));

        let started = Instant::now();
        // Frames on one connection are serial by construction; the worker
        // guard keeps nested pool use inline and deterministic.
        let _worker = ta_pool::enter_worker();
        let run = supervisor.run_one(&engine, &image, 0, sub.seed);
        let latency = started.elapsed();
        drop(_worker);

        let (outputs, report) = match run {
            Ok(pair) => pair,
            Err(e) => {
                self.journal_failed(&key);
                self.shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                return Response::Error {
                    id: sub.id,
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                    trace,
                };
            }
        };

        match outputs {
            Some(planes) if !report.status.is_failed() => {
                let (degraded, fallback) = match &report.status {
                    FrameStatus::Degraded { fallback, .. } => (true, fallback.clone()),
                    _ => (false, String::new()),
                };
                self.shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                metrics.counter("ta_serve_completed_total").inc();
                if degraded {
                    self.shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
                    metrics.counter("ta_serve_degraded_total").inc();
                }
                let checksum = output_checksum(planes.iter().map(|p| p.pixels()));
                // Journal the reply's identity before sending it: a
                // retry after a crash is answered from this record.
                if let Some(journal) = &self.shared.journal {
                    let completion = Completion {
                        key,
                        checksum,
                        degraded,
                        fallback: fallback.clone(),
                        attempts: report.attempts,
                    };
                    if journal.record_completion(&completion).is_err() {
                        self.shared.count_journal_error();
                    }
                }
                let outputs = if sub.want_outputs {
                    planes
                        .iter()
                        .map(|p| OutputPlane {
                            width: p.width() as u32,
                            height: p.height() as u32,
                            pixels: p.pixels().to_vec(),
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                Response::Done {
                    id: sub.id,
                    degraded,
                    fallback,
                    attempts: report.attempts,
                    latency_us: latency.as_micros() as u64,
                    checksum,
                    outputs,
                    trace,
                }
            }
            _ => {
                // Exhausted budget with no usable output. A log that is
                // all watchdog timeouts means the deadline (split across
                // attempts) is what killed the frame.
                let timed_out =
                    !report.log.is_empty() && report.log.iter().all(|l| l.contains("timeout"));
                self.journal_failed(&key);
                self.shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                metrics.counter("ta_serve_failed_total").inc();
                Response::Error {
                    id: sub.id,
                    code: if timed_out {
                        ErrorCode::DeadlineExceeded
                    } else {
                        ErrorCode::FrameFailed
                    },
                    message: report.status.to_string(),
                    trace,
                }
            }
        }
    }

    /// Resolves an accepted record with an error outcome (not cached:
    /// a retry recomputes).
    fn journal_failed(&self, key: &RequestKey) {
        if let Some(journal) = &self.shared.journal {
            if journal.record_failed(key).is_err() {
                self.shared.count_journal_error();
            }
        }
    }

    fn send(&self, stream: &mut Stream, rsp: &Response) -> bool {
        crate::wire::write_frame(stream, &rsp.encode()).is_ok()
    }

    fn close(&self, stream: &mut Stream, open: &mut bool) {
        if *open {
            let _ = stream.flush();
        }
        stream.shutdown();
        *open = false;
    }
}

/// The receive half: deframe in timeout slices, decode, stamp
/// receive-time verdicts, forward. Exits on EOF/fatal error/shutdown.
fn reader_loop(
    mut stream: Stream,
    shared: Arc<Shared>,
    responded: Arc<AtomicU64>,
    tx: Sender<ConnEvent>,
) {
    if stream.set_read_timeout(Some(READ_SLICE)).is_err() {
        let _ = tx.send(ConnEvent::Io);
        return;
    }
    let cfg = &shared.cfg;
    let mut submits_seen: u64 = 0;
    let mut last_activity = Instant::now();

    loop {
        match read_frame_sliced(
            &mut stream,
            cfg.max_frame,
            cfg.idle_timeout,
            cfg.frame_recv_budget,
            &mut last_activity,
            &shared,
        ) {
            Sliced::Frame(payload) => {
                let received = Instant::now();
                match Request::decode(&payload) {
                    Ok(req) => {
                        let mut shed = None;
                        if let Request::Submit(_) = &req {
                            submits_seen += 1;
                            let outstanding =
                                submits_seen.saturating_sub(responded.load(Ordering::SeqCst));
                            if outstanding > u64::from(cfg.credits) {
                                shed = Some(ShedReason::CreditOverrun);
                            } else if shared.draining.load(Ordering::SeqCst) {
                                shed = Some(ShedReason::Draining);
                            }
                            shared.pending.fetch_add(1, Ordering::SeqCst);
                        }
                        if tx
                            .send(ConnEvent::Msg {
                                req,
                                received,
                                shed,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(err) => {
                        // Payload-level: the stream itself is still in
                        // sync — recoverable, strikes permitting.
                        if tx.send(ConnEvent::Bad { err, fatal: false }).is_err() {
                            return;
                        }
                    }
                }
            }
            Sliced::Bad(err) => {
                // Framing-level: desynchronised; the connection must die.
                let _ = tx.send(ConnEvent::Bad { err, fatal: true });
                return;
            }
            Sliced::Idle => {
                let _ = tx.send(ConnEvent::Idle);
                return;
            }
            Sliced::Eof => {
                let _ = tx.send(ConnEvent::Eof);
                return;
            }
            Sliced::Io => {
                let _ = tx.send(ConnEvent::Io);
                return;
            }
            Sliced::Shutdown => {
                let _ = tx.send(ConnEvent::Shutdown);
                return;
            }
        }
    }
}

enum Sliced {
    Frame(Vec<u8>),
    /// Framing violation (bad magic, oversized, mid-frame EOF, slow frame).
    Bad(ProtocolError),
    Idle,
    Eof,
    Io,
    Shutdown,
}

/// Reads one frame in [`READ_SLICE`] quanta, watching for idle timeout
/// (between frames), receive budget (within a frame — slow-loris), and
/// server shutdown.
fn read_frame_sliced(
    stream: &mut Stream,
    max_len: u32,
    idle_timeout: Duration,
    recv_budget: Duration,
    last_activity: &mut Instant,
    shared: &Shared,
) -> Sliced {
    use std::io::Read;

    let mut header = [0u8; 6];
    let mut filled = 0usize;
    let mut frame_started: Option<Instant> = None;
    let mut payload: Option<(Vec<u8>, usize)> = None; // (buf, got)

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Sliced::Shutdown;
        }
        let r = match &mut payload {
            None => stream.read(&mut header[filled..]),
            Some((buf, got)) => stream.read(&mut buf[*got..]),
        };
        match r {
            Ok(0) => {
                return if filled == 0 && payload.is_none() {
                    Sliced::Eof
                } else {
                    Sliced::Bad(ProtocolError::Truncated {
                        field: if payload.is_none() {
                            "frame.header"
                        } else {
                            "frame.payload"
                        },
                        needed: payload.as_ref().map_or(header.len(), |(b, _)| b.len()),
                        got: payload.as_ref().map_or(filled, |(_, g)| *g),
                    })
                };
            }
            Ok(n) => {
                *last_activity = Instant::now();
                frame_started.get_or_insert_with(Instant::now);
                match &mut payload {
                    None => {
                        filled += n;
                        if filled == header.len() {
                            let len = match parse_header(&header, max_len) {
                                Ok(len) => len as usize,
                                Err(e) => return Sliced::Bad(e),
                            };
                            if len == 0 {
                                return Sliced::Frame(Vec::new());
                            }
                            payload = Some((vec![0u8; len], 0));
                        }
                    }
                    Some((buf, got)) => {
                        *got += n;
                        if *got == buf.len() {
                            let (buf, _) = match payload.take() {
                                Some(p) => p,
                                None => unreachable!("payload just matched Some"),
                            };
                            return Sliced::Frame(buf);
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                match frame_started {
                    // Mid-frame: the sender is trickling bytes.
                    Some(started) if started.elapsed() > recv_budget => {
                        return Sliced::Bad(ProtocolError::SlowFrame {
                            budget_ms: recv_budget.as_millis() as u64,
                        });
                    }
                    // Between frames: plain idleness.
                    None if last_activity.elapsed() > idle_timeout => return Sliced::Idle,
                    _ => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Sliced::Io,
        }
    }
}
