//! Server-lifecycle errors (distinct from per-request failures, which
//! travel on the wire as typed responses).

use std::fmt;
use std::io;

/// Why the server could not start or run.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A listener could not be bound.
    Bind {
        /// Which endpoint (rendered address/path).
        endpoint: String,
        /// The underlying I/O failure.
        source: io::Error,
    },
    /// The configuration is unusable (no listeners, zero credits, …).
    Config(String),
    /// A lifecycle-level I/O failure (accept loop, socket cleanup).
    Io(io::Error),
    /// The write-ahead journal could not be opened or replayed.
    Journal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { endpoint, source } => {
                write!(f, "cannot bind {endpoint}: {source}")
            }
            ServeError::Config(why) => write!(f, "bad serve configuration: {why}"),
            ServeError::Io(e) => write!(f, "server i/o: {e}"),
            ServeError::Journal(why) => write!(f, "serve journal: {why}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
            ServeError::Config(_) | ServeError::Journal(_) => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}
