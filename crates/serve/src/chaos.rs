//! Chaos-injection engine wrapper.
//!
//! When the server runs with chaos enabled (tests, CI smoke, staging), a
//! request may carry a [`Chaos`] directive; the executor then wraps the
//! compiled engine in a [`ChaosEngine`] that panics or stalls the first
//! `n` attempts before delegating. Because injection is keyed on the
//! attempt number, the supervisor's retry ladder recovers and the
//! completed frame remains bit-identical to an undisturbed run at the
//! surviving attempt — the invariant the chaos suite pins.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ta_image::Image;
use ta_runtime::Engine;

use crate::wire::Chaos;

/// An engine decorator that injects faults into early attempts.
pub struct ChaosEngine {
    inner: Arc<dyn Engine>,
    chaos: Chaos,
}

impl ChaosEngine {
    /// Wraps `inner` with the request's chaos directive.
    pub fn new(inner: Arc<dyn Engine>, chaos: Chaos) -> Self {
        ChaosEngine { inner, chaos }
    }
}

impl Engine for ChaosEngine {
    fn run_frame(
        &self,
        image: &Image,
        seed: u64,
        attempt: u32,
    ) -> Result<ta_core::RunResult, ta_core::Error> {
        match self.chaos {
            Chaos::None => {}
            Chaos::PanicAttempts { n } => {
                if attempt < n {
                    panic!("chaos: injected panic on attempt {attempt}");
                }
            }
            Chaos::StallAttempts { n, ms } => {
                if attempt < n {
                    thread::sleep(Duration::from_millis(u64::from(ms)));
                }
            }
        }
        self.inner.run_frame(image, seed, attempt)
    }

    fn name(&self) -> &str {
        "chaos"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use ta_core::{ArchConfig, Architecture, ArithmeticMode, SystemDescription};
    use ta_image::{synth, Kernel};
    use ta_runtime::TemporalEngine;

    fn engine() -> Arc<dyn Engine> {
        let desc = SystemDescription::new(8, 8, vec![Kernel::box_filter(3)], 1).unwrap();
        let arch = Architecture::new(desc, ArchConfig::fast_1ns(7, 20)).unwrap();
        Arc::new(TemporalEngine::new(arch, ArithmeticMode::DelayExact))
    }

    #[test]
    fn panics_then_delegates_bit_identically() {
        let inner = engine();
        let img = synth::natural_image(8, 8, 1);
        let clean = inner.run_frame(&img, 7, 1).unwrap();
        let chaotic = ChaosEngine::new(inner, Chaos::PanicAttempts { n: 1 });
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chaotic.run_frame(&img, 7, 0)
        }));
        assert!(caught.is_err());
        let survived = chaotic.run_frame(&img, 7, 1).unwrap();
        assert_eq!(survived.outputs, clean.outputs);
    }

    #[test]
    fn stall_delays_but_does_not_corrupt() {
        let inner = engine();
        let img = synth::natural_image(8, 8, 1);
        let clean = inner.run_frame(&img, 7, 0).unwrap();
        let chaotic = ChaosEngine::new(inner, Chaos::StallAttempts { n: 1, ms: 10 });
        let start = std::time::Instant::now();
        let out = chaotic.run_frame(&img, 7, 0).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(out.outputs, clean.outputs);
    }
}
