//! Compiling a wire-level [`ArchSpec`] into an executable architecture:
//! kernels, the compiled `Architecture` (whose construction bakes the
//! `FramePlan`), the engine, and the trusted digital reference for
//! fallback.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use ta_baseline::digital::DigitalModel;
use ta_baseline::DigitalReference;
use ta_circuits::UnitScale;
use ta_core::{ArchConfig, Architecture, ArithmeticMode, FaultModel, SystemDescription};
use ta_image::Kernel;
use ta_runtime::{
    Engine, Fallback, FaultyTemporalEngine, RetryPolicy, Supervisor, SupervisorConfig,
    TemporalEngine, ValidationPolicy,
};

use crate::wire::{ArchSpec, MODE_APPROX, MODE_EXACT, MODE_IMPORTANCE, MODE_NOISY};

/// Fault-stream decorrelation seed for server-side faulty engines; the
/// per-request seed still mixes in at `run_frame` time, so two requests
/// with different seeds draw different fault maps while the engine stays
/// cacheable.
const SERVE_FAULT_SEED: u64 = 0xFA17;

/// Why an [`ArchSpec`] failed to compile. Travels back to the client as a
/// `BadSpec` error response.
#[derive(Debug)]
#[non_exhaustive]
pub enum SpecError {
    /// No built-in kernel set by that name.
    UnknownKernel(String),
    /// No arithmetic mode with that discriminant.
    UnknownMode(u8),
    /// A parameter is out of range.
    InvalidConfig(String),
    /// The architecture itself would not compile.
    System(ta_core::SystemError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownKernel(k) => write!(
                f,
                "unknown kernel {k:?}; try: sobel pyrdown gauss laplacian sharpen emboss box3"
            ),
            SpecError::UnknownMode(m) => write!(f, "unknown mode discriminant {m}"),
            SpecError::InvalidConfig(why) => f.write_str(why),
            SpecError::System(e) => write!(f, "architecture: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Resolves a kernel-set name to its kernels and stride (the same set the
/// CLI exposes).
///
/// # Errors
///
/// [`SpecError::UnknownKernel`] for an unknown name.
pub fn kernel_set(name: &str) -> Result<(Vec<Kernel>, usize), SpecError> {
    Ok(match name {
        "sobel" => (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1),
        "pyrdown" => (vec![Kernel::pyr_down_5x5()], 2),
        "gauss" => (vec![Kernel::gaussian(7, 0.0)], 1),
        "laplacian" => (vec![Kernel::laplacian()], 1),
        "sharpen" => (vec![Kernel::sharpen()], 1),
        "emboss" => (vec![Kernel::emboss()], 1),
        "box3" => (vec![Kernel::box_filter(3)], 1),
        other => return Err(SpecError::UnknownKernel(other.to_string())),
    })
}

/// Maps a wire mode discriminant to the engine's [`ArithmeticMode`].
///
/// # Errors
///
/// [`SpecError::UnknownMode`] for an unknown discriminant.
pub fn mode_of(mode: u8) -> Result<ArithmeticMode, SpecError> {
    Ok(match mode {
        MODE_IMPORTANCE => ArithmeticMode::ImportanceExact,
        MODE_EXACT => ArithmeticMode::DelayExact,
        MODE_APPROX => ArithmeticMode::DelayApprox,
        MODE_NOISY => ArithmeticMode::DelayApproxNoisy,
        other => return Err(SpecError::UnknownMode(other)),
    })
}

/// Retry/backoff shape applied to every served frame; kept small so a
/// flapping engine burns milliseconds, not request deadlines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPolicy {
    /// Retries after the first attempt.
    pub max_retries: u32,
    /// First-retry backoff.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Relative jitter amplitude.
    pub jitter: f64,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter: 0.5,
        }
    }
}

/// One compiled, cacheable execution target: the architecture (with its
/// baked `FramePlan`), the engine, and the digital reference. Keyed in
/// the per-connection cache by [`ArchSpec::arch_hash`].
pub struct CompiledArch {
    /// The cache key this entry was compiled under.
    pub hash: u64,
    /// Frame width the plan was compiled for.
    pub width: u32,
    /// Frame height the plan was compiled for.
    pub height: u32,
    /// The compiled architecture.
    pub arch: Architecture,
    /// The arithmetic mode frames run in.
    pub mode: ArithmeticMode,
    /// The engine every request on this spec executes through.
    pub engine: Arc<dyn Engine>,
    /// The trusted digital reference (graceful-degradation fallback).
    pub reference: Arc<DigitalReference>,
}

impl CompiledArch {
    /// Compiles `spec` for `width`×`height` frames.
    ///
    /// # Errors
    ///
    /// [`SpecError`] when the spec names unknown kernels/modes or the
    /// architecture rejects the configuration.
    pub fn compile(spec: &ArchSpec, width: u32, height: u32) -> Result<CompiledArch, SpecError> {
        let (kernels, stride) = kernel_set(&spec.kernel)?;
        let mode = mode_of(spec.mode)?;
        if !spec.unit_ns.is_finite() || spec.unit_ns <= 0.0 {
            return Err(SpecError::InvalidConfig("unit_ns must be positive".into()));
        }
        if spec.nlse_terms == 0 || spec.nlde_terms == 0 {
            return Err(SpecError::InvalidConfig(
                "nlse_terms/nlde_terms must be positive".into(),
            ));
        }
        let cfg = ArchConfig::new(
            UnitScale::new(spec.unit_ns, 50.0),
            spec.nlse_terms as usize,
            spec.nlde_terms as usize,
        );
        let desc = SystemDescription::new(width as usize, height as usize, kernels.clone(), stride)
            .map_err(SpecError::System)?;
        let arch = Architecture::new(desc, cfg).map_err(SpecError::System)?;

        let engine: Arc<dyn Engine> = if spec.fault_rate > 0.0 {
            let model = FaultModel::with_rate(spec.fault_rate)
                .map_err(|e| SpecError::InvalidConfig(e.to_string()))?;
            Arc::new(FaultyTemporalEngine::new(
                arch.clone(),
                mode,
                model,
                SERVE_FAULT_SEED,
            ))
        } else {
            Arc::new(TemporalEngine::new(arch.clone(), mode))
        };

        let reference = Arc::new(
            DigitalReference::new(DigitalModel::conventional_65nm(), kernels, stride)
                .with_pixel_floor((-arch.vtc().max_delay_units()).exp()),
        );

        Ok(CompiledArch {
            hash: spec.arch_hash(width, height),
            width,
            height,
            arch,
            mode,
            engine,
            reference,
        })
    }

    /// Builds the per-request supervisor: finite-only validation, the
    /// shared retry policy, the request's seed, the request's remaining
    /// deadline as the per-attempt watchdog budget, and the digital
    /// reference as graceful-degradation fallback.
    ///
    /// The supervised outputs are a pure function of
    /// `(spec, seed, pixels, policy)` — the bit-identity contract the
    /// chaos suite pins against serial re-execution.
    pub fn supervisor(
        &self,
        policy: &ExecPolicy,
        seed: u64,
        attempt_budget: Option<Duration>,
    ) -> Supervisor {
        Supervisor::new(SupervisorConfig {
            validation: ValidationPolicy {
                require_finite: true,
                nrmse_tolerance: None,
            },
            timeout: attempt_budget,
            retry: RetryPolicy {
                max_retries: policy.max_retries,
                base_backoff: policy.base_backoff,
                max_backoff: policy.max_backoff,
                jitter: policy.jitter,
            },
            workers: 1,
            seed,
        })
        .with_reference(self.reference.clone())
        .with_fallback(Fallback::Reference)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::wire::MODE_EXACT;

    fn spec() -> ArchSpec {
        ArchSpec {
            kernel: "box3".into(),
            mode: MODE_EXACT,
            unit_ns: 1.0,
            nlse_terms: 7,
            nlde_terms: 20,
            fault_rate: 0.0,
        }
    }

    #[test]
    fn compiles_and_hash_matches_key() {
        let c = CompiledArch::compile(&spec(), 12, 12).unwrap();
        assert_eq!(c.hash, spec().arch_hash(12, 12));
        assert_eq!((c.width, c.height), (12, 12));
        assert_eq!(c.engine.name(), "temporal");
    }

    #[test]
    fn faulty_rate_selects_the_faulty_engine() {
        let mut s = spec();
        s.fault_rate = 0.05;
        let c = CompiledArch::compile(&s, 12, 12).unwrap();
        assert_eq!(c.engine.name(), "temporal+faults");
    }

    #[test]
    fn bad_specs_are_typed() {
        let mut s = spec();
        s.kernel = "nope".into();
        assert!(matches!(
            CompiledArch::compile(&s, 12, 12),
            Err(SpecError::UnknownKernel(_))
        ));
        let mut s = spec();
        s.mode = 9;
        assert!(matches!(
            CompiledArch::compile(&s, 12, 12),
            Err(SpecError::UnknownMode(9))
        ));
        let mut s = spec();
        s.nlse_terms = 0;
        assert!(matches!(
            CompiledArch::compile(&s, 12, 12),
            Err(SpecError::InvalidConfig(_))
        ));
        let mut s = spec();
        s.fault_rate = 2.0;
        assert!(CompiledArch::compile(&s, 12, 12).is_err());
    }
}
