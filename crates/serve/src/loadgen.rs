//! Load generation against a running server: throughput/latency sweeps
//! over several connection counts plus a deliberate overload phase, the
//! numbers behind `BENCH_serve.json`.

use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use ta_telemetry::{ExactHistogram, TraceId};

use crate::client::{Client, ClientError};
use crate::wire::{ArchSpec, Chaos, Request, Response, Submit, MODE_EXACT};

/// What to drive at the server.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server TCP address.
    pub addr: String,
    /// Kernel set each frame runs.
    pub kernel: String,
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Frames per connection per sweep point.
    pub frames_per_conn: usize,
    /// Connection counts to sweep (the bench contract wants ≥ 3).
    pub sweep: Vec<usize>,
    /// Per-request deadline in ms (0 = server default).
    pub deadline_ms: u32,
    /// Overload phase: submissions pipelined per connection *without*
    /// reading responses, deliberately overrunning the credit window.
    /// 0 skips the phase.
    pub overload_burst: usize,
    /// Connections used in the overload phase.
    pub overload_connections: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:0".to_string(),
            kernel: "box3".to_string(),
            width: 16,
            height: 16,
            frames_per_conn: 20,
            sweep: vec![1, 2, 4],
            deadline_ms: 2000,
            overload_burst: 16,
            overload_connections: 4,
        }
    }
}

/// One sweep point's aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Concurrent connections driven.
    pub connections: usize,
    /// Submissions sent.
    pub frames: u64,
    /// Done responses (ok or degraded).
    pub completed: u64,
    /// Done responses served by a fallback.
    pub degraded: u64,
    /// Busy responses.
    pub shed: u64,
    /// Error responses.
    pub failed: u64,
    /// Median round-trip latency of completed frames, µs.
    pub p50_us: f64,
    /// 99th-percentile round-trip latency of completed frames, µs.
    pub p99_us: f64,
    /// Completed frames per wall-clock second for the phase.
    pub frames_per_sec: f64,
    /// True when the completed-frame p99 sat within the deadline.
    pub within_deadline_p99: bool,
}

/// The overload phase's aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadResult {
    /// Connections driven.
    pub connections: usize,
    /// Submissions sent.
    pub attempts: u64,
    /// Done responses.
    pub completed: u64,
    /// Busy responses (overload protection engaging).
    pub shed: u64,
    /// shed / attempts.
    pub shed_fraction: f64,
}

/// Journaling-overhead probe: the same single-connection sweep against a
/// journal-less and a journal-enabled server (fsync=batch), p99 compared.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalOverhead {
    /// p99 round-trip against the in-memory server, µs.
    pub p99_base_us: f64,
    /// p99 round-trip against the journaled server, µs.
    pub p99_journal_us: f64,
    /// `(journal − base) / base`; negative when the journaled run was
    /// faster (noise).
    pub delta_fraction: f64,
    /// True when the overhead sits inside [`JOURNAL_OVERHEAD_BUDGET`]
    /// (or under the absolute noise floor for sub-millisecond frames).
    pub within_budget: bool,
}

/// The bench contract: journaling with `fsync=batch` may cost at most
/// this fraction of p99.
pub const JOURNAL_OVERHEAD_BUDGET: f64 = 0.15;

/// Absolute p99 delta (µs) under which the budget check always passes —
/// at micro-frame latencies a few hundred µs of scheduler noise would
/// otherwise dominate the fraction.
pub const JOURNAL_NOISE_FLOOR_US: f64 = 500.0;

/// Everything `BENCH_serve.json` carries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Target endpoint.
    pub endpoint: String,
    /// Kernel driven.
    pub kernel: String,
    /// Frame geometry.
    pub width: u32,
    /// Frame geometry.
    pub height: u32,
    /// Deadline applied to every submission, ms.
    pub deadline_ms: u32,
    /// One entry per sweep point.
    pub sweeps: Vec<SweepResult>,
    /// The overload phase, when run.
    pub overload: Option<OverloadResult>,
    /// The journaling-overhead probe, when run (`--journal`).
    pub journal_overhead: Option<JournalOverhead>,
}

impl BenchReport {
    /// Renders the report as the `BENCH_serve.json` document (hand-rolled;
    /// the workspace carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"serve\",\n");
        s.push_str(&format!("  \"endpoint\": \"{}\",\n", self.endpoint));
        s.push_str(&format!("  \"kernel\": \"{}\",\n", self.kernel));
        s.push_str(&format!("  \"width\": {},\n", self.width));
        s.push_str(&format!("  \"height\": {},\n", self.height));
        s.push_str(&format!("  \"deadline_ms\": {},\n", self.deadline_ms));
        s.push_str("  \"sweeps\": [\n");
        for (i, sw) in self.sweeps.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"connections\": {}, \"frames\": {}, \"completed\": {}, \
                 \"degraded\": {}, \"shed\": {}, \"failed\": {}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"frames_per_sec\": {:.2}, \
                 \"within_deadline_p99\": {}}}{}\n",
                sw.connections,
                sw.frames,
                sw.completed,
                sw.degraded,
                sw.shed,
                sw.failed,
                sw.p50_us,
                sw.p99_us,
                sw.frames_per_sec,
                sw.within_deadline_p99,
                if i + 1 < self.sweeps.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        match &self.overload {
            Some(o) => s.push_str(&format!(
                "  \"overload\": {{\"connections\": {}, \"attempts\": {}, \
                 \"completed\": {}, \"shed\": {}, \"shed_fraction\": {:.4}}},\n",
                o.connections, o.attempts, o.completed, o.shed, o.shed_fraction,
            )),
            None => s.push_str("  \"overload\": null,\n"),
        }
        match &self.journal_overhead {
            Some(j) => s.push_str(&format!(
                "  \"journal_overhead\": {{\"p99_base_us\": {:.1}, \
                 \"p99_journal_us\": {:.1}, \"delta_fraction\": {:.4}, \
                 \"within_budget\": {}}}\n",
                j.p99_base_us, j.p99_journal_us, j.delta_fraction, j.within_budget,
            )),
            None => s.push_str("  \"journal_overhead\": null\n"),
        }
        s.push('}');
        s.push('\n');
        s
    }
}

fn spec_for(cfg: &LoadConfig) -> ArchSpec {
    ArchSpec {
        kernel: cfg.kernel.clone(),
        mode: MODE_EXACT,
        unit_ns: 1.0,
        nlse_terms: 7,
        nlde_terms: 20,
        fault_rate: 0.0,
    }
}

fn frame_pixels(cfg: &LoadConfig, seed: u64) -> Vec<f64> {
    ta_image::synth::natural_image(cfg.width as usize, cfg.height as usize, seed)
        .pixels()
        .to_vec()
}

struct WorkerTally {
    completed: u64,
    degraded: u64,
    shed: u64,
    failed: u64,
    latencies: Vec<Duration>,
}

/// Runs the full bench: one sweep per connection count, then the
/// overload phase.
///
/// # Errors
///
/// [`ClientError`] when the server cannot be reached at all; per-request
/// failures are tallied, not raised.
pub fn run(cfg: &LoadConfig) -> Result<BenchReport, ClientError> {
    // Fail fast (and warm the server's plan cache) before timing anything.
    let mut probe = Client::connect_tcp(&cfg.addr, "loadgen-probe")?;
    let warm = Submit {
        id: 0,
        spec: spec_for(cfg),
        seed: 1,
        deadline_ms: 0,
        want_outputs: false,
        chaos: Chaos::None,
        width: cfg.width,
        height: cfg.height,
        pixels: frame_pixels(cfg, 1),
        trace: TraceId::ZERO,
    };
    let _ = probe.submit(warm)?;
    let _ = probe.goodbye();

    let mut sweeps = Vec::new();
    for &conns in &cfg.sweep {
        sweeps.push(run_sweep(cfg, conns)?);
    }
    let overload = if cfg.overload_burst > 0 {
        Some(run_overload(cfg)?)
    } else {
        None
    };
    Ok(BenchReport {
        endpoint: cfg.addr.clone(),
        kernel: cfg.kernel.clone(),
        width: cfg.width,
        height: cfg.height,
        deadline_ms: cfg.deadline_ms,
        sweeps,
        overload,
        journal_overhead: None,
    })
}

/// Measures journaling overhead: warms and sweeps one connection against
/// the journal-less server at `base_addr`, then the same against the
/// journaled server at `journal_addr`, and compares completed-frame p99.
///
/// # Errors
///
/// [`ClientError`] when either server cannot be reached.
pub fn journal_overhead(
    cfg: &LoadConfig,
    base_addr: &str,
    journal_addr: &str,
) -> Result<JournalOverhead, ClientError> {
    let probe = |addr: &str| -> Result<f64, ClientError> {
        let mut point = cfg.clone();
        point.addr = addr.to_string();
        // Warm the plan cache so compilation never lands in the timing.
        let mut warm = Client::connect_tcp(addr, "overhead-probe")?;
        let _ = warm.submit(Submit {
            id: 0,
            spec: spec_for(&point),
            seed: 1,
            deadline_ms: 0,
            want_outputs: false,
            chaos: Chaos::None,
            width: point.width,
            height: point.height,
            pixels: frame_pixels(&point, 1),
            trace: TraceId::ZERO,
        })?;
        let _ = warm.goodbye();
        Ok(run_sweep(&point, 1)?.p99_us)
    };
    let p99_base_us = probe(base_addr)?;
    let p99_journal_us = probe(journal_addr)?;
    let delta_fraction = if p99_base_us > 0.0 {
        (p99_journal_us - p99_base_us) / p99_base_us
    } else {
        0.0
    };
    Ok(JournalOverhead {
        p99_base_us,
        p99_journal_us,
        delta_fraction,
        within_budget: delta_fraction < JOURNAL_OVERHEAD_BUDGET
            || (p99_journal_us - p99_base_us) < JOURNAL_NOISE_FLOOR_US,
    })
}

fn run_sweep(cfg: &LoadConfig, conns: usize) -> Result<SweepResult, ClientError> {
    let tallies: Mutex<Vec<WorkerTally>> = Mutex::new(Vec::new());
    let started = Instant::now();
    thread::scope(|scope| {
        for c in 0..conns {
            let tallies = &tallies;
            scope.spawn(move || {
                let mut tally = WorkerTally {
                    completed: 0,
                    degraded: 0,
                    shed: 0,
                    failed: 0,
                    latencies: Vec::with_capacity(cfg.frames_per_conn),
                };
                let tenant = format!("load-{c}");
                if let Ok(mut client) = Client::connect_tcp(&cfg.addr, &tenant) {
                    for f in 0..cfg.frames_per_conn {
                        let seed = (c as u64) << 32 | f as u64;
                        let sub = Submit {
                            id: f as u64,
                            spec: spec_for(cfg),
                            seed,
                            deadline_ms: cfg.deadline_ms,
                            want_outputs: false,
                            chaos: Chaos::None,
                            width: cfg.width,
                            height: cfg.height,
                            pixels: frame_pixels(cfg, seed),
                            trace: TraceId::ZERO,
                        };
                        let t0 = Instant::now();
                        match client.submit(sub) {
                            Ok(Response::Done { degraded, .. }) => {
                                tally.completed += 1;
                                if degraded {
                                    tally.degraded += 1;
                                }
                                tally.latencies.push(t0.elapsed());
                            }
                            Ok(Response::Busy { .. }) => tally.shed += 1,
                            _ => tally.failed += 1,
                        }
                    }
                    let _ = client.goodbye();
                } else {
                    tally.failed += cfg.frames_per_conn as u64;
                }
                if let Ok(mut all) = tallies.lock() {
                    all.push(tally);
                }
            });
        }
    });
    let wall = started.elapsed();
    let all = tallies.into_inner().unwrap_or_default();
    let mut latencies = Vec::new();
    let (mut completed, mut degraded, mut shed, mut failed) = (0, 0, 0, 0);
    for t in all {
        completed += t.completed;
        degraded += t.degraded;
        shed += t.shed;
        failed += t.failed;
        latencies.extend(t.latencies);
    }
    let hist = ExactHistogram::from_durations(&latencies);
    let (p50_us, p99_us) = if hist.is_empty() {
        (0.0, 0.0)
    } else {
        let ps = hist.percentiles(&[0.50, 0.99]);
        (ps[0] * 1e6, ps[1] * 1e6)
    };
    Ok(SweepResult {
        connections: conns,
        frames: (conns * cfg.frames_per_conn) as u64,
        completed,
        degraded,
        shed,
        failed,
        p50_us,
        p99_us,
        frames_per_sec: if wall.as_secs_f64() > 0.0 {
            completed as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        within_deadline_p99: completed == 0 || p99_us <= f64::from(cfg.deadline_ms) * 1e3,
    })
}

fn run_overload(cfg: &LoadConfig) -> Result<OverloadResult, ClientError> {
    let conns = cfg.overload_connections.max(1);
    let tallies: Mutex<Vec<(u64, u64, u64)>> = Mutex::new(Vec::new());
    thread::scope(|scope| {
        for c in 0..conns {
            let tallies = &tallies;
            scope.spawn(move || {
                let (mut completed, mut shed, mut attempts) = (0u64, 0u64, 0u64);
                let tenant = format!("burst-{c}");
                if let Ok(mut client) = Client::connect_tcp(&cfg.addr, &tenant) {
                    // Pipeline the whole burst first: everything past the
                    // credit window must come back Busy, not hang.
                    for f in 0..cfg.overload_burst {
                        let seed = 0xB000_0000u64 | (c as u64) << 16 | f as u64;
                        let sub = Submit {
                            id: f as u64,
                            spec: spec_for(cfg),
                            seed,
                            deadline_ms: cfg.deadline_ms,
                            want_outputs: false,
                            chaos: Chaos::None,
                            width: cfg.width,
                            height: cfg.height,
                            pixels: frame_pixels(cfg, seed),
                            trace: TraceId::ZERO,
                        };
                        if client.send(&Request::Submit(sub)).is_ok() {
                            attempts += 1;
                        }
                    }
                    let _ = client.set_read_timeout(Some(Duration::from_secs(30)));
                    for _ in 0..attempts {
                        match client.recv() {
                            Ok(Response::Done { .. }) => completed += 1,
                            Ok(Response::Busy { .. }) => shed += 1,
                            Ok(_) => {}
                            Err(_) => break,
                        }
                    }
                    let _ = client.goodbye();
                }
                if let Ok(mut all) = tallies.lock() {
                    all.push((attempts, completed, shed));
                }
            });
        }
    });
    let all = tallies.into_inner().unwrap_or_default();
    let (mut attempts, mut completed, mut shed) = (0, 0, 0);
    for (a, c, s) in all {
        attempts += a;
        completed += c;
        shed += s;
    }
    Ok(OverloadResult {
        connections: conns,
        attempts,
        completed,
        shed,
        shed_fraction: if attempts > 0 {
            shed as f64 / attempts as f64
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn report_renders_valid_json_shape() {
        let report = BenchReport {
            endpoint: "127.0.0.1:9".into(),
            kernel: "box3".into(),
            width: 16,
            height: 16,
            deadline_ms: 2000,
            sweeps: vec![SweepResult {
                connections: 1,
                frames: 10,
                completed: 10,
                degraded: 0,
                shed: 0,
                failed: 0,
                p50_us: 120.0,
                p99_us: 340.0,
                frames_per_sec: 80.0,
                within_deadline_p99: true,
            }],
            overload: Some(OverloadResult {
                connections: 4,
                attempts: 64,
                completed: 40,
                shed: 24,
                shed_fraction: 0.375,
            }),
            journal_overhead: Some(JournalOverhead {
                p99_base_us: 300.0,
                p99_journal_us: 320.0,
                delta_fraction: 320.0 / 300.0 - 1.0,
                within_budget: true,
            }),
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"serve\""));
        assert!(json.contains("\"shed_fraction\": 0.3750"));
        assert!(json.contains("\"journal_overhead\": {\"p99_base_us\": 300.0"));
        assert!(json.contains("\"within_budget\": true"));
        assert!(json.contains("\"within_deadline_p99\": true"));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
