//! Multi-tenant admission control.
//!
//! Two nested gates protect the engine from overload: a global in-flight
//! cap (total frames executing or queued across all connections) and a
//! per-tenant pending cap (so one aggressive tenant cannot starve the
//! rest). Both are RAII: dropping the [`Permit`] releases the slots, so
//! every exit path — success, engine failure, panic unwinding through the
//! executor — returns capacity.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::wire::ShedReason;

/// Maximum accepted tenant-name length after sanitisation.
const MAX_TENANT: usize = 64;

/// Normalises a client-supplied tenant name to a metrics-safe label:
/// `[A-Za-z0-9_-]`, everything else mapped to `_`, truncated to 64
/// bytes, empty mapped to `"anon"`.
pub fn sanitize_tenant(raw: &str) -> String {
    let cleaned: String = raw
        .chars()
        .take(MAX_TENANT)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "anon".to_string()
    } else {
        cleaned
    }
}

struct Shared {
    max_inflight: usize,
    tenant_pending: usize,
    inflight: AtomicUsize,
    per_tenant: Mutex<BTreeMap<String, usize>>,
}

/// The admission controller: shared across every connection.
#[derive(Clone)]
pub struct Admission {
    shared: Arc<Shared>,
}

/// An admitted frame's capacity reservation; dropping it releases both
/// the global slot and the tenant slot.
pub struct Permit {
    shared: Arc<Shared>,
    tenant: String,
}

impl Admission {
    /// Creates a controller with a global in-flight cap and a per-tenant
    /// pending cap (both forced to at least 1).
    pub fn new(max_inflight: usize, tenant_pending: usize) -> Self {
        Admission {
            shared: Arc::new(Shared {
                max_inflight: max_inflight.max(1),
                tenant_pending: tenant_pending.max(1),
                inflight: AtomicUsize::new(0),
                per_tenant: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Tries to admit one frame for `tenant` (already sanitised).
    ///
    /// # Errors
    ///
    /// [`ShedReason::Overloaded`] when the global cap is reached,
    /// [`ShedReason::TenantQueueFull`] when this tenant's cap is reached.
    pub fn admit(&self, tenant: &str) -> Result<Permit, ShedReason> {
        let s = &self.shared;
        // Reserve the global slot first (cheap, lock-free), then the
        // tenant slot; back out the global slot on tenant rejection.
        let mut current = s.inflight.load(Ordering::Relaxed);
        loop {
            if current >= s.max_inflight {
                return Err(ShedReason::Overloaded);
            }
            match s.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        let mut map = s.per_tenant.lock().unwrap_or_else(PoisonError::into_inner);
        let pending = map.entry(tenant.to_string()).or_insert(0);
        if *pending >= s.tenant_pending {
            drop(map);
            s.inflight.fetch_sub(1, Ordering::AcqRel);
            return Err(ShedReason::TenantQueueFull);
        }
        *pending += 1;
        drop(map);
        Ok(Permit {
            shared: s.clone(),
            tenant: tenant.to_string(),
        })
    }

    /// Frames currently admitted across all tenants.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut map = self
            .shared
            .per_tenant
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(pending) = map.get_mut(&self.tenant) {
            *pending = pending.saturating_sub(1);
            if *pending == 0 {
                map.remove(&self.tenant);
            }
        }
        drop(map);
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn tenant_names_are_sanitised() {
        assert_eq!(sanitize_tenant("cam-0"), "cam-0");
        assert_eq!(sanitize_tenant("a b/c\"d"), "a_b_c_d");
        assert_eq!(sanitize_tenant(""), "anon");
        assert_eq!(sanitize_tenant(&"x".repeat(200)).len(), MAX_TENANT);
    }

    #[test]
    fn global_cap_sheds_overloaded() {
        let adm = Admission::new(2, 8);
        let _a = adm.admit("t1").unwrap();
        let _b = adm.admit("t2").unwrap();
        assert!(matches!(adm.admit("t3"), Err(ShedReason::Overloaded)));
        assert_eq!(adm.inflight(), 2);
    }

    #[test]
    fn tenant_cap_sheds_queue_full_and_backs_out_global_slot() {
        let adm = Admission::new(8, 1);
        let _a = adm.admit("t1").unwrap();
        assert!(matches!(adm.admit("t1"), Err(ShedReason::TenantQueueFull)));
        // The failed admit must not leak its global reservation.
        assert_eq!(adm.inflight(), 1);
        let _b = adm.admit("t2").unwrap();
        assert_eq!(adm.inflight(), 2);
    }

    #[test]
    fn dropping_a_permit_releases_both_slots() {
        let adm = Admission::new(1, 1);
        let p = adm.admit("t1").unwrap();
        drop(p);
        assert_eq!(adm.inflight(), 0);
        let _again = adm.admit("t1").unwrap();
    }
}
