//! Diagnostics bundles: when an anomaly fires, the server dumps the
//! flight recorder's ring, the metrics registry, and the in-flight
//! request context to one self-contained JSONL file (DESIGN.md §5.14).
//!
//! Bundle layout (one JSON object per line):
//!
//! 1. `{"type":"bundle", ...}` — header: schema version, the anomaly
//!    kind that triggered the dump, its trace ID, and the reporter's
//!    context fields.
//! 2. `{"type":"request", ...}` — one line per in-flight request at dump
//!    time: identity, geometry, deadline, and the compiled plan's static
//!    op census and per-stage energy attribution.
//! 3. `{"type":"span"|"event", ...}` — the flight recorder's ring in
//!    capture order (the tail of recent activity leading to the anomaly).
//! 4. `{"type":"metrics", ...}` — the full registry snapshot.
//!
//! Dumps are rate-limited (one per [`BundleWriter::MIN_INTERVAL`]) so an
//! anomaly storm produces one representative bundle, not a disk full of
//! near-identical ones.

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use ta_core::{OpCounts, StageEnergy};
use ta_telemetry::{Anomaly, FlightRecorder, TraceId};

/// Bundle schema version (the `version` field of the header line).
pub const BUNDLE_VERSION: u32 = 1;

/// What the server knows about one in-flight request, captured at
/// admission so an anomaly mid-execution can attribute blame.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// Sanitized tenant.
    pub tenant: String,
    /// Client-chosen request id.
    pub id: u64,
    /// Request seed.
    pub seed: u64,
    /// Kernel-set name from the spec.
    pub kernel: String,
    /// Wire mode discriminant.
    pub mode: u8,
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Effective deadline in milliseconds.
    pub deadline_ms: u64,
    /// Static per-frame op census of the compiled plan.
    pub census: OpCounts,
    /// Per-stage energy attribution of the compiled plan.
    pub energy: StageEnergy,
}

impl RequestCtx {
    fn to_json(&self, trace_hex: &str) -> String {
        let c = &self.census;
        let e = &self.energy;
        format!(
            "{{\"type\":\"request\",\"trace\":{},\"tenant\":{},\"id\":{},\"seed\":{},\
             \"kernel\":{},\"mode\":{},\"width\":{},\"height\":{},\"deadline_ms\":{},\
             \"census\":{{\"vtc\":{},\"tdc\":{},\"nlse\":{},\"nlde\":{}}},\
             \"energy_pj\":{{\"vtc\":{:.6},\"tdc\":{:.6},\"weight_matrix\":{:.6},\
             \"nlse_tree\":{:.6},\"loop\":{:.6},\"nlde\":{:.6},\"total\":{:.6}}}}}",
            json_str(trace_hex),
            json_str(&self.tenant),
            self.id,
            self.seed,
            json_str(&self.kernel),
            self.mode,
            self.width,
            self.height,
            self.deadline_ms,
            c.vtc_conversions,
            c.tdc_conversions,
            c.nlse_ops,
            c.nlde_ops,
            e.vtc_pj,
            e.tdc_pj,
            e.weight_matrix_pj,
            e.nlse_tree_pj,
            e.loop_pj,
            e.nlde_pj,
            e.total_pj(),
        )
    }
}

/// The map of in-flight requests shared between the connection executors
/// (insert/remove) and the anomaly hook (snapshot at dump time).
pub type InFlightCtx = Arc<Mutex<HashMap<TraceId, RequestCtx>>>;

/// Writes anomaly bundles into a directory, rate-limited.
pub struct BundleWriter {
    dir: PathBuf,
    recorder: Arc<FlightRecorder>,
    contexts: InFlightCtx,
    seq: AtomicU64,
    last_dump: Mutex<Option<Instant>>,
    min_interval: Duration,
}

impl std::fmt::Debug for BundleWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BundleWriter")
            .field("dir", &self.dir)
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl BundleWriter {
    /// Default floor between two dumps.
    pub const MIN_INTERVAL: Duration = Duration::from_secs(1);

    /// A writer dumping into `dir` (created if missing), reading the ring
    /// from `recorder` and request context from `contexts`.
    pub fn new(dir: PathBuf, recorder: Arc<FlightRecorder>, contexts: InFlightCtx) -> BundleWriter {
        BundleWriter {
            dir,
            recorder,
            contexts,
            seq: AtomicU64::new(0),
            last_dump: Mutex::new(None),
            min_interval: Self::MIN_INTERVAL,
        }
    }

    /// Overrides the rate-limit floor (tests use zero).
    #[must_use]
    pub fn with_min_interval(mut self, min_interval: Duration) -> BundleWriter {
        self.min_interval = min_interval;
        self
    }

    /// Dumps one bundle for `anomaly`, unless rate-limited. Returns the
    /// bundle path on success; `None` when skipped or the write failed
    /// (a diagnostics failure must never take the server down — the
    /// failure is counted under `ta_serve_bundle_errors_total`).
    pub fn dump(&self, anomaly: &Anomaly) -> Option<PathBuf> {
        {
            let mut last = self
                .last_dump
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(at) = *last {
                if at.elapsed() < self.min_interval {
                    ta_telemetry::metrics()
                        .counter("ta_serve_bundle_rate_limited_total")
                        .inc();
                    return None;
                }
            }
            *last = Some(Instant::now());
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        match self.write_bundle(anomaly, seq) {
            Ok(path) => {
                ta_telemetry::metrics()
                    .counter("ta_serve_bundles_written_total")
                    .inc();
                Some(path)
            }
            Err(_) => {
                ta_telemetry::metrics()
                    .counter("ta_serve_bundle_errors_total")
                    .inc();
                None
            }
        }
    }

    fn write_bundle(&self, anomaly: &Anomaly, seq: u64) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let name = format!(
            "bundle-{}-{:04}-{}.jsonl",
            std::process::id(),
            seq,
            anomaly.kind.label()
        );
        let path = self.dir.join(name);
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            let mut fields = String::new();
            for (k, v) in &anomaly.fields {
                fields.push_str(&format!(",{}:{}", json_str(k), v.to_json()));
            }
            writeln!(
                f,
                "{{\"type\":\"bundle\",\"version\":{},\"kind\":{},\"trace\":{}{}}}",
                BUNDLE_VERSION,
                json_str(anomaly.kind.label()),
                json_str(&anomaly.trace_hex),
                fields
            )?;
            {
                let contexts = self.contexts.lock().unwrap_or_else(PoisonError::into_inner);
                let mut traces: Vec<&TraceId> = contexts.keys().collect();
                traces.sort_by_key(|t| t.0);
                for trace in traces {
                    if let Some(ctx) = contexts.get(trace) {
                        writeln!(f, "{}", ctx.to_json(&trace.to_hex()))?;
                    }
                }
            }
            for record in self.recorder.snapshot() {
                writeln!(f, "{}", record.to_json())?;
            }
            writeln!(
                f,
                "{{\"type\":\"metrics\",\"snapshot\":{}}}",
                ta_telemetry::metrics().to_json()
            )?;
            f.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

fn json_str(s: &str) -> String {
    ta_telemetry::sink::json_string(s)
}

// ---------------------------------------------------------------------
// Reading bundles back (tconv inspect-bundle, the smoke test)
// ---------------------------------------------------------------------

/// Why a bundle file failed inspection.
#[derive(Debug)]
pub struct BundleError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub what: String,
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bundle line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for BundleError {}

/// One parsed bundle line, reduced to what triage needs.
#[derive(Debug, Clone)]
pub struct BundleLine {
    /// The line's `type` field (`bundle`, `request`, `span`, `event`,
    /// `metrics`).
    pub kind: String,
    /// The line's `name` field, when present (spans/events).
    pub name: Option<String>,
    /// The line's `trace` field, when present and non-empty.
    pub trace: Option<String>,
}

/// A schema-checked bundle.
#[derive(Debug)]
pub struct BundleSummary {
    /// Every line, in file order.
    pub lines: Vec<BundleLine>,
    /// The header's anomaly kind.
    pub kind: String,
    /// The header's trace (empty when the anomaly was untraced).
    pub trace: String,
}

impl BundleSummary {
    /// Parses and schema-checks `text` (a bundle file's contents): every
    /// line must be a syntactically valid JSON object with a string
    /// `type`, the first line must be a `bundle` header carrying
    /// `version`, `kind`, and `trace`, and the last a `metrics` snapshot.
    ///
    /// # Errors
    ///
    /// [`BundleError`] pointing at the first offending line.
    pub fn parse(text: &str) -> Result<BundleSummary, BundleError> {
        let mut lines = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            validate_json(raw).map_err(|what| BundleError { line, what })?;
            let kind = extract_string(raw, "type").ok_or_else(|| BundleError {
                line,
                what: "missing string \"type\" field".into(),
            })?;
            lines.push(BundleLine {
                kind,
                name: extract_string(raw, "name"),
                trace: extract_string(raw, "trace").filter(|t| !t.is_empty()),
            });
        }
        let first = lines.first().ok_or(BundleError {
            line: 1,
            what: "empty bundle".into(),
        })?;
        if first.kind != "bundle" {
            return Err(BundleError {
                line: 1,
                what: format!("first line is {:?}, not the bundle header", first.kind),
            });
        }
        let header = text.lines().next().unwrap_or_default();
        let kind = extract_string(header, "kind").ok_or(BundleError {
            line: 1,
            what: "header missing \"kind\"".into(),
        })?;
        if extract_string(header, "version").is_some() {
            return Err(BundleError {
                line: 1,
                what: "header \"version\" must be a number".into(),
            });
        }
        if !header.contains("\"version\":") {
            return Err(BundleError {
                line: 1,
                what: "header missing \"version\"".into(),
            });
        }
        let trace = extract_string(header, "trace").unwrap_or_default();
        match lines.last() {
            Some(l) if l.kind == "metrics" => {}
            _ => {
                return Err(BundleError {
                    line: lines.len(),
                    what: "last line is not the metrics snapshot".into(),
                })
            }
        }
        Ok(BundleSummary { lines, kind, trace })
    }

    /// Positions (0-based line indexes) of lines whose `trace` equals
    /// `trace_hex`.
    #[must_use]
    pub fn lines_for_trace(&self, trace_hex: &str) -> Vec<usize> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.trace.as_deref() == Some(trace_hex))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Extracts the string value of a top-level-looking `"key":"value"` pair.
/// Good enough for bundle lines, whose writers never nest the keys this
/// reader asks for inside other strings.
fn extract_string(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

/// Validates that `s` is one complete JSON value (the bundle writers emit
/// one object per line). A tiny recursive-descent scanner — no values are
/// built, so arbitrarily large metrics snapshots validate cheaply.
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                parse_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                let esc = b.get(*pos + 1).ok_or("unterminated escape")?;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *pos += 2,
                    b'u' => {
                        let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at offset {pos}"));
                        }
                        *pos += 6;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            0x00..=0x1F => return Err(format!("raw control byte in string at offset {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("expected number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("expected fraction digits at offset {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("expected exponent digits at offset {pos}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use ta_telemetry::{AnomalyKind, NullSink};

    #[test]
    fn json_validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "{\"a\":1}",
            "{\"a\":[1,2.5,-3e4],\"b\":{\"c\":null,\"d\":\"x\\n\\u00e9\"}}",
            "[true,false,null]",
            "\"lone string\"",
            "-0.5e-2",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "{\"a\":01x}",
            "{\"a\":\"unterminated}",
            "{\"a\":1} trailing",
            "{\"a\":nul}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn dump_writes_a_parseable_bundle_with_request_context() {
        let dir = std::env::temp_dir().join(format!("ta-bundle-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = Arc::new(FlightRecorder::new(16, 1, Arc::new(NullSink)));
        use ta_telemetry::sink::{EventRecord, TraceSink};
        let trace = TraceId::generate();
        recorder.record_event(&EventRecord {
            name: "serve.admitted",
            at: Duration::from_micros(1),
            fields: vec![("trace", trace.to_hex().into())],
        });
        let contexts: InFlightCtx = Arc::new(Mutex::new(HashMap::new()));
        contexts.lock().unwrap().insert(
            trace,
            RequestCtx {
                tenant: "acme".into(),
                id: 7,
                seed: 9,
                kernel: "box3".into(),
                mode: 1,
                width: 12,
                height: 12,
                deadline_ms: 250,
                census: OpCounts::default(),
                energy: StageEnergy::default(),
            },
        );
        let writer =
            BundleWriter::new(dir.clone(), recorder, contexts).with_min_interval(Duration::ZERO);
        let anomaly = Anomaly {
            kind: AnomalyKind::WatchdogTimeout,
            trace_hex: trace.to_hex(),
            fields: vec![("frame", 0u64.into())],
        };
        let path = writer.dump(&anomaly).expect("bundle written");
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = BundleSummary::parse(&text).unwrap();
        assert_eq!(summary.kind, "watchdog_timeout");
        assert_eq!(summary.trace, trace.to_hex());
        let kinds: Vec<&str> = summary.lines.iter().map(|l| l.kind.as_str()).collect();
        assert_eq!(kinds, vec!["bundle", "request", "event", "metrics"]);
        assert_eq!(summary.lines_for_trace(&trace.to_hex()).len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rate_limit_swallows_back_to_back_dumps() {
        let dir = std::env::temp_dir().join(format!("ta-bundle-rl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = Arc::new(FlightRecorder::new(4, 1, Arc::new(NullSink)));
        let contexts: InFlightCtx = Arc::new(Mutex::new(HashMap::new()));
        let writer = BundleWriter::new(dir.clone(), recorder, contexts);
        let anomaly = Anomaly {
            kind: AnomalyKind::JournalError,
            trace_hex: String::new(),
            fields: vec![],
        };
        assert!(writer.dump(&anomaly).is_some());
        assert!(writer.dump(&anomaly).is_none(), "second dump rate-limited");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_bundles_are_refused() {
        assert!(BundleSummary::parse("").is_err());
        assert!(
            BundleSummary::parse("{\"type\":\"span\"}").is_err(),
            "no header"
        );
        let no_metrics = "{\"type\":\"bundle\",\"version\":1,\"kind\":\"panic\",\"trace\":\"\"}";
        assert!(BundleSummary::parse(no_metrics).is_err(), "no metrics tail");
        let ok = format!("{no_metrics}\n{{\"type\":\"metrics\",\"snapshot\":{{}}}}");
        let summary = BundleSummary::parse(&ok).unwrap();
        assert_eq!(summary.kind, "panic");
        assert!(summary.trace.is_empty());
    }
}
