//! Durable request journaling for the server: write-ahead records for
//! accepted submissions and their outcomes, so a kill -9 mid-request is
//! recoverable.
//!
//! Record stream (on top of the CRC-framed [`ta_journal::Journal`]):
//!
//! * `Meta` — serve-record codec version; always the first record.
//! * `Accepted` — tenant + the full wire encoding of the submission,
//!   appended after admission but *before* execution. A crash between
//!   this record and the outcome record leaves the request in-flight.
//! * `Completed` — the reply's identity (checksum, degraded, fallback,
//!   attempts), appended before the reply is sent. Also feeds the
//!   idempotency index: a client retrying `(tenant, id, seed)` after a
//!   crash is answered from this record, never recomputed.
//! * `Failed` — the request was answered with an error. Marks the
//!   accepted record as resolved so recovery does not re-execute it, but
//!   is deliberately *not* dedupe-cached: a retry recomputes (failures
//!   are often transient — chaos, deadline pressure).
//! * `Shed` — an in-flight record the recovery pass declined to
//!   re-execute (policy `shed`, or the request is no longer admissible,
//!   e.g. a chaos directive on a server restarted without `--chaos`).
//!
//! Recovery on open: in-flight = accepted − (completed ∪ failed ∪ shed).
//! The determinism contract makes recovery safe: a completed frame is a
//! pure function of `(spec, seed, pixels, policy)`, so re-executing an
//! in-flight frame at startup yields bit-identical outputs to what the
//! crashed process would have sent.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use ta_journal::{Journal, JournalError, JournalStats};
// Re-exported so `ServeConfig::journal_fsync` is nameable through this
// crate alone.
pub use ta_journal::FsyncPolicy;

use crate::wire::{Dec, Enc, Request, Submit};

/// Version of the serve record codec carried by the `Meta` record.
const SERVE_RECORD_VERSION: u32 = 1;

const KIND_META: u8 = 0x01;
const KIND_ACCEPTED: u8 = 0x02;
const KIND_COMPLETED: u8 = 0x03;
const KIND_FAILED: u8 = 0x04;
const KIND_SHED: u8 = 0x05;

/// What to do with journaled in-flight requests found at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Re-execute each in-flight request at startup and journal its
    /// completion, so retrying clients get the deduped answer.
    Recover,
    /// Journal a `Shed` marker for each in-flight request; retrying
    /// clients recompute from scratch.
    Shed,
}

impl RecoveryPolicy {
    /// Parses a CLI spelling (`recover` / `shed`).
    #[must_use]
    pub fn parse(s: &str) -> Option<RecoveryPolicy> {
        match s {
            "recover" => Some(RecoveryPolicy::Recover),
            "shed" => Some(RecoveryPolicy::Shed),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Recover => "recover",
            RecoveryPolicy::Shed => "shed",
        }
    }
}

/// Idempotency key: what makes two submissions "the same request".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestKey {
    /// Sanitized tenant name.
    pub tenant: String,
    /// Client-chosen request id.
    pub id: u64,
    /// Request seed (part of the key: same id with a different seed is a
    /// different computation, and must not be answered from the cache).
    pub seed: u64,
}

impl RequestKey {
    /// The key for a submission from `tenant`.
    #[must_use]
    pub fn of(tenant: &str, sub: &Submit) -> RequestKey {
        RequestKey {
            tenant: tenant.to_string(),
            id: sub.id,
            seed: sub.seed,
        }
    }
}

/// The journaled identity of a completed reply.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The request this answers.
    pub key: RequestKey,
    /// Output checksum (the client's integrity handle).
    pub checksum: u64,
    /// Whether the digital fallback produced the output.
    pub degraded: bool,
    /// Fallback engine name (empty when not degraded).
    pub fallback: String,
    /// Attempts consumed.
    pub attempts: u32,
}

/// A journaled submission that never got an outcome record.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Sanitized tenant that submitted it.
    pub tenant: String,
    /// The submission, exactly as accepted.
    pub sub: Submit,
}

/// What opening a serve journal found.
#[derive(Debug)]
pub struct ServeRecovery {
    /// Accepted-but-unresolved requests, in acceptance order.
    pub in_flight: Vec<InFlight>,
    /// Completions loaded into the idempotency index.
    pub completions: usize,
    /// Bytes of torn tail discarded by the journal layer.
    pub truncated_bytes: u64,
}

/// Why a serve journal could not be opened or written.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeJournalError {
    /// The underlying journal failed.
    Journal(JournalError),
    /// A CRC-valid record did not parse as a serve record — the file is
    /// not ours (or a codec bug), so refuse loudly rather than guess.
    Corrupt {
        /// What failed to parse.
        what: String,
    },
}

impl fmt::Display for ServeJournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeJournalError::Journal(e) => write!(f, "serve journal: {e}"),
            ServeJournalError::Corrupt { what } => {
                write!(f, "serve journal record corrupt: {what}")
            }
        }
    }
}

impl std::error::Error for ServeJournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeJournalError::Journal(e) => Some(e),
            ServeJournalError::Corrupt { .. } => None,
        }
    }
}

impl From<JournalError> for ServeJournalError {
    fn from(e: JournalError) -> Self {
        ServeJournalError::Journal(e)
    }
}

fn corrupt(what: impl Into<String>) -> ServeJournalError {
    ServeJournalError::Corrupt { what: what.into() }
}

// -- record codecs ----------------------------------------------------

fn encode_meta() -> Vec<u8> {
    let mut e = Enc::new(KIND_META);
    e.u32(SERVE_RECORD_VERSION);
    e.buf
}

fn encode_accepted(tenant: &str, sub: &Submit) -> Vec<u8> {
    let mut e = Enc::new(KIND_ACCEPTED);
    e.str(tenant);
    // The submission rides as its exact wire encoding: one codec, one
    // set of bounds checks, shared with the protocol proptests.
    e.buf
        .extend_from_slice(&Request::Submit(sub.clone()).encode());
    e.buf
}

fn encode_key(kind: u8, key: &RequestKey) -> Vec<u8> {
    let mut e = Enc::new(kind);
    e.str(&key.tenant);
    e.u64(key.id);
    e.u64(key.seed);
    e.buf
}

fn encode_completed(c: &Completion) -> Vec<u8> {
    let mut e = Enc::new(KIND_COMPLETED);
    e.str(&c.key.tenant);
    e.u64(c.key.id);
    e.u64(c.key.seed);
    e.u64(c.checksum);
    e.u8(u8::from(c.degraded));
    e.str(&c.fallback);
    e.u32(c.attempts);
    e.buf
}

fn decode_accepted(body: &[u8]) -> Result<InFlight, ServeJournalError> {
    // Tenant is a u16-length-prefixed string; the rest of the body is a
    // complete wire request.
    if body.len() < 2 {
        return Err(corrupt("accepted record truncated before tenant"));
    }
    let len = usize::from(u16::from_le_bytes([body[0], body[1]]));
    let rest = &body[2..];
    if rest.len() < len {
        return Err(corrupt("accepted record truncated inside tenant"));
    }
    let tenant = String::from_utf8(rest[..len].to_vec())
        .map_err(|_| corrupt("accepted record tenant is not UTF-8"))?;
    match Request::decode(&rest[len..]) {
        Ok(Request::Submit(sub)) => Ok(InFlight { tenant, sub }),
        Ok(_) => Err(corrupt("accepted record holds a non-Submit request")),
        Err(e) => Err(corrupt(format!("accepted record submission: {e}"))),
    }
}

fn decode_key(body: &[u8], kind: &str) -> Result<RequestKey, ServeJournalError> {
    let mut d = Dec::new(body);
    let tenant = d
        .str("tenant")
        .map_err(|e| corrupt(format!("{kind}: {e}")))?;
    let id = d.u64("id").map_err(|e| corrupt(format!("{kind}: {e}")))?;
    let seed = d.u64("seed").map_err(|e| corrupt(format!("{kind}: {e}")))?;
    d.finish().map_err(|e| corrupt(format!("{kind}: {e}")))?;
    Ok(RequestKey { tenant, id, seed })
}

fn decode_completed(body: &[u8]) -> Result<Completion, ServeJournalError> {
    let wrap = |e: crate::wire::ProtocolError| corrupt(format!("completed record: {e}"));
    let mut d = Dec::new(body);
    let tenant = d.str("tenant").map_err(wrap)?;
    let id = d.u64("id").map_err(wrap)?;
    let seed = d.u64("seed").map_err(wrap)?;
    let checksum = d.u64("checksum").map_err(wrap)?;
    let degraded = d.bool("degraded").map_err(wrap)?;
    let fallback = d.str("fallback").map_err(wrap)?;
    let attempts = d.u32("attempts").map_err(wrap)?;
    d.finish().map_err(wrap)?;
    Ok(Completion {
        key: RequestKey { tenant, id, seed },
        checksum,
        degraded,
        fallback,
        attempts,
    })
}

// -- the journal ------------------------------------------------------

struct Inner {
    journal: Journal,
    /// Idempotency index: completed request → its reply identity.
    completions: HashMap<RequestKey, Completion>,
}

/// The server's write-ahead journal plus its in-memory idempotency
/// index. All methods take `&self`; appends serialize on an internal
/// mutex (per-connection executors call in concurrently).
pub struct ServeJournal {
    inner: Mutex<Inner>,
}

impl ServeJournal {
    /// Opens (or creates) the journal at `path`, replays its records,
    /// and returns the recovery picture.
    ///
    /// # Errors
    ///
    /// [`ServeJournalError::Journal`] for journal-layer failures (I/O,
    /// foreign file, format version skew);
    /// [`ServeJournalError::Corrupt`] when a CRC-valid record is not a
    /// parseable serve record.
    pub fn open(
        path: &Path,
        policy: FsyncPolicy,
    ) -> Result<(ServeJournal, ServeRecovery), ServeJournalError> {
        let (mut journal, rec) = Journal::open(path, policy)?;
        let mut meta_seen = false;
        let mut accepted: Vec<InFlight> = Vec::new();
        let mut accepted_keys: HashSet<RequestKey> = HashSet::new();
        let mut resolved: HashSet<RequestKey> = HashSet::new();
        let mut completions: HashMap<RequestKey, Completion> = HashMap::new();

        for payload in &rec.records {
            let (&kind, body) = payload
                .split_first()
                .ok_or_else(|| corrupt("empty record"))?;
            match kind {
                KIND_META => {
                    if meta_seen {
                        return Err(corrupt("duplicate meta record"));
                    }
                    let mut d = Dec::new(body);
                    let version = d
                        .u32("version")
                        .map_err(|e| corrupt(format!("meta record: {e}")))?;
                    d.finish()
                        .map_err(|e| corrupt(format!("meta record: {e}")))?;
                    if version != SERVE_RECORD_VERSION {
                        return Err(corrupt(format!(
                            "serve record version {version} (this build writes \
                             {SERVE_RECORD_VERSION})"
                        )));
                    }
                    meta_seen = true;
                }
                _ if !meta_seen => return Err(corrupt("first record is not meta")),
                KIND_ACCEPTED => {
                    let inflight = decode_accepted(body)?;
                    let key = RequestKey::of(&inflight.tenant, &inflight.sub);
                    if accepted_keys.insert(key) {
                        accepted.push(inflight);
                    }
                }
                KIND_COMPLETED => {
                    let c = decode_completed(body)?;
                    resolved.insert(c.key.clone());
                    completions.insert(c.key.clone(), c);
                }
                KIND_FAILED => {
                    resolved.insert(decode_key(body, "failed record")?);
                }
                KIND_SHED => {
                    resolved.insert(decode_key(body, "shed record")?);
                }
                other => return Err(corrupt(format!("unknown record kind 0x{other:02x}"))),
            }
        }

        if !meta_seen {
            // Fresh (or fully torn-away) journal: stamp the codec version.
            journal.append(&encode_meta())?;
            journal.sync()?;
        }

        let in_flight: Vec<InFlight> = accepted
            .into_iter()
            .filter(|f| !resolved.contains(&RequestKey::of(&f.tenant, &f.sub)))
            .collect();
        let recovery = ServeRecovery {
            in_flight,
            completions: completions.len(),
            truncated_bytes: rec.truncated_bytes,
        };
        Ok((
            ServeJournal {
                inner: Mutex::new(Inner {
                    journal,
                    completions,
                }),
            },
            recovery,
        ))
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Journals an accepted submission (call after admission, before
    /// execution).
    ///
    /// # Errors
    ///
    /// [`ServeJournalError::Journal`] when the append fails.
    pub fn record_accepted(&self, tenant: &str, sub: &Submit) -> Result<(), ServeJournalError> {
        self.locked()
            .journal
            .append(&encode_accepted(tenant, sub))
            .map_err(ServeJournalError::from)
    }

    /// Journals a completion and indexes it for dedupe (call before
    /// sending the reply).
    ///
    /// # Errors
    ///
    /// [`ServeJournalError::Journal`] when the append fails (the
    /// completion is still indexed in memory).
    pub fn record_completion(&self, c: &Completion) -> Result<(), ServeJournalError> {
        let mut inner = self.locked();
        let append = inner.journal.append(&encode_completed(c));
        inner.completions.insert(c.key.clone(), c.clone());
        append.map(|_| ()).map_err(ServeJournalError::from)
    }

    /// Journals an error outcome: resolves the accepted record without
    /// caching an answer, so a retry recomputes.
    ///
    /// # Errors
    ///
    /// [`ServeJournalError::Journal`] when the append fails.
    pub fn record_failed(&self, key: &RequestKey) -> Result<(), ServeJournalError> {
        self.locked()
            .journal
            .append(&encode_key(KIND_FAILED, key))
            .map_err(ServeJournalError::from)
    }

    /// Journals a shed-on-recovery marker for an in-flight request the
    /// recovery pass declined to re-execute.
    ///
    /// # Errors
    ///
    /// [`ServeJournalError::Journal`] when the append fails.
    pub fn record_shed(&self, key: &RequestKey) -> Result<(), ServeJournalError> {
        self.locked()
            .journal
            .append(&encode_key(KIND_SHED, key))
            .map_err(ServeJournalError::from)
    }

    /// The deduped reply for `key`, if this exact request already
    /// completed.
    #[must_use]
    pub fn lookup(&self, key: &RequestKey) -> Option<Completion> {
        self.locked().completions.get(key).cloned()
    }

    /// Compacts the journal down to the meta record plus the completion
    /// index (accepted payloads and resolution markers are dead weight
    /// once every request is answered). Called at graceful drain.
    ///
    /// # Errors
    ///
    /// [`ServeJournalError::Journal`] when the rewrite fails (the old
    /// journal file is left intact).
    pub fn compact(&self) -> Result<(), ServeJournalError> {
        let mut inner = self.locked();
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(1 + inner.completions.len());
        payloads.push(encode_meta());
        let mut done: Vec<&Completion> = inner.completions.values().collect();
        done.sort_by(|a, b| {
            (&a.key.tenant, a.key.id, a.key.seed).cmp(&(&b.key.tenant, b.key.id, b.key.seed))
        });
        payloads.extend(done.into_iter().map(encode_completed));
        inner
            .journal
            .compact(payloads.iter().map(Vec::as_slice))
            .map_err(ServeJournalError::from)
    }

    /// Flushes buffered appends to disk.
    ///
    /// # Errors
    ///
    /// [`ServeJournalError::Journal`] when the fsync fails.
    pub fn sync(&self) -> Result<(), ServeJournalError> {
        self.locked()
            .journal
            .sync()
            .map_err(ServeJournalError::from)
    }

    /// Record/byte counts of the on-disk journal.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.locked().journal.stats()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::wire::{ArchSpec, Chaos, MODE_APPROX};
    use std::path::PathBuf;
    use ta_telemetry::TraceId;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ta-serve-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.wal"));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn submit(id: u64, seed: u64) -> Submit {
        Submit {
            id,
            spec: ArchSpec {
                kernel: "sobel".into(),
                mode: MODE_APPROX,
                unit_ns: 1.0,
                nlse_terms: 7,
                nlde_terms: 20,
                fault_rate: 0.0,
            },
            seed,
            deadline_ms: 500,
            want_outputs: false,
            chaos: Chaos::None,
            width: 3,
            height: 2,
            pixels: vec![0.0, 0.25, 0.5, 0.75, 1.0, 0.125],
            trace: TraceId::ZERO,
        }
    }

    fn completion(key: RequestKey, checksum: u64) -> Completion {
        Completion {
            key,
            checksum,
            degraded: true,
            fallback: "digital".into(),
            attempts: 2,
        }
    }

    #[test]
    fn accepted_without_outcome_is_in_flight_after_reopen() {
        let path = scratch("in-flight");
        let sub = submit(7, 99);
        {
            let (j, rec) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
            assert!(rec.in_flight.is_empty());
            j.record_accepted("acme", &sub).unwrap();
        }
        let (_, rec) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.in_flight.len(), 1);
        assert_eq!(rec.in_flight[0].tenant, "acme");
        assert_eq!(rec.in_flight[0].sub, sub);
    }

    #[test]
    fn completion_resolves_and_dedupes() {
        let path = scratch("dedupe");
        let sub = submit(7, 99);
        let key = RequestKey::of("acme", &sub);
        {
            let (j, _) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
            j.record_accepted("acme", &sub).unwrap();
            j.record_completion(&completion(key.clone(), 0xABCD))
                .unwrap();
            // Live dedupe, same process.
            assert_eq!(j.lookup(&key).unwrap().checksum, 0xABCD);
        }
        let (j, rec) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
        assert!(rec.in_flight.is_empty(), "completed request is resolved");
        assert_eq!(rec.completions, 1);
        let c = j.lookup(&key).unwrap();
        assert_eq!(c.checksum, 0xABCD);
        assert!(c.degraded);
        assert_eq!(c.fallback, "digital");
        assert_eq!(c.attempts, 2);
    }

    #[test]
    fn failed_resolves_but_is_not_dedupe_cached() {
        let path = scratch("failed");
        let sub = submit(3, 4);
        let key = RequestKey::of("acme", &sub);
        {
            let (j, _) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
            j.record_accepted("acme", &sub).unwrap();
            j.record_failed(&key).unwrap();
        }
        let (j, rec) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
        assert!(rec.in_flight.is_empty(), "failed request is resolved");
        assert!(j.lookup(&key).is_none(), "failures are recomputed on retry");
    }

    #[test]
    fn a_different_seed_is_a_different_request() {
        let path = scratch("seed-key");
        let sub = submit(7, 99);
        let key = RequestKey::of("acme", &sub);
        let (j, _) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
        j.record_completion(&completion(key, 1)).unwrap();
        let other = RequestKey::of("acme", &submit(7, 100));
        assert!(j.lookup(&other).is_none());
    }

    #[test]
    fn compaction_keeps_the_dedupe_index_only() {
        let path = scratch("compact");
        let sub = submit(1, 2);
        let key = RequestKey::of("t", &sub);
        {
            let (j, _) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
            j.record_accepted("t", &sub).unwrap();
            j.record_completion(&completion(key.clone(), 5)).unwrap();
            j.record_accepted("t", &submit(9, 9)).unwrap();
            j.record_failed(&RequestKey::of("t", &submit(9, 9)))
                .unwrap();
            let before = j.stats();
            j.compact().unwrap();
            let after = j.stats();
            assert!(after.bytes < before.bytes, "compaction shrinks the file");
            assert_eq!(after.records, 2, "meta + one completion");
        }
        let (j, rec) = ServeJournal::open(&path, FsyncPolicy::Always).unwrap();
        assert!(rec.in_flight.is_empty());
        assert_eq!(j.lookup(&key).unwrap().checksum, 5);
    }

    #[test]
    fn a_foreign_record_stream_is_refused_loudly() {
        let path = scratch("foreign");
        {
            let (mut j, _) = Journal::open(&path, FsyncPolicy::Always).unwrap();
            j.append(&[0xEE, 1, 2, 3]).unwrap();
        }
        let err = match ServeJournal::open(&path, FsyncPolicy::Always) {
            Err(e) => e,
            Ok(_) => panic!("foreign record stream accepted"),
        };
        assert!(matches!(err, ServeJournalError::Corrupt { .. }), "{err}");
    }
}
