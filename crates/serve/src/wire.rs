//! The length-prefixed binary wire protocol (DESIGN.md §5.12).
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! [0x54 0x41]  [u32 LE payload length]  [payload]
//!  magic "TA"   counts the payload only
//! ```
//!
//! The payload's first byte is the message tag; the rest is a flat
//! little-endian field encoding with no padding. Strings are
//! `u16 length + UTF-8` (≤ 256 bytes); pixel planes are
//! `u32 count + f64 × count`. The codec is hand-rolled (the workspace is
//! vendored-only) and *total*: every decoder path returns a typed
//! [`ProtocolError`] — never a panic, never a silent misparse — which the
//! `codec_roundtrip` proptest suite enforces against mutated and
//! truncated byte streams.
//!
//! Robustness rules baked into the format:
//!
//! * the magic catches stream desynchronisation and plain garbage before
//!   a length field can demand a huge allocation;
//! * the length prefix is bounds-checked against the connection's
//!   configured maximum *before* any allocation ([`ProtocolError::Oversized`]);
//! * counts inside the payload (strings, pixel planes, output lists) are
//!   re-checked against the bytes actually present, so a forged count
//!   yields [`ProtocolError::Truncated`], not an over-read;
//! * decoders must consume the payload exactly — trailing bytes are a
//!   [`ProtocolError::TrailingBytes`] violation.

use std::fmt;
use std::io::{self, Read, Write};

use ta_telemetry::TraceId;

/// Protocol revision spoken by this build. A [`Request::Hello`] carrying
/// a different major version is rejected with a typed error response.
pub const PROTO_VERSION: u32 = 1;

/// Two-byte frame magic ("TA").
pub const MAGIC: [u8; 2] = [0x54, 0x41];

/// Absolute ceiling on a frame payload, independent of configuration —
/// a second line of defence against allocation bombs.
pub const HARD_MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Largest encodable string field in bytes.
pub const MAX_STR: usize = 256;

/// Largest image edge accepted on the wire.
pub const MAX_DIM: u32 = 16_384;

/// Every way a byte stream can violate the protocol. The taxonomy is the
/// contract chaos tests pin: malformed input of any shape maps onto
/// exactly one of these, and the server's quarantine policy counts them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The frame did not start with [`MAGIC`] — garbage or a
    /// desynchronised stream.
    BadMagic {
        /// The two bytes actually seen.
        got: [u8; 2],
    },
    /// The length prefix exceeds the connection's configured maximum.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The maximum this connection accepts.
        max: u32,
    },
    /// The stream ended (or a count pointed) past the available bytes.
    Truncated {
        /// Which field was being decoded.
        field: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were available.
        got: usize,
    },
    /// The payload's message tag is not one this protocol version knows.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// A discriminant byte named no known variant.
    BadEnum {
        /// Which field was being decoded.
        field: &'static str,
        /// The offending value.
        value: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// Which field was being decoded.
        field: &'static str,
    },
    /// A count or dimension field exceeded its hard bound.
    BadCount {
        /// Which field was being decoded.
        field: &'static str,
        /// The declared count.
        count: u64,
        /// The maximum the protocol accepts.
        max: u64,
    },
    /// A numeric field held a non-finite or out-of-domain value.
    BadValue {
        /// Which field was being decoded.
        field: &'static str,
    },
    /// The decoder finished but bytes remained in the payload.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
    /// A frame's bytes stopped arriving before its declared length within
    /// the read deadline (slow-loris defence).
    SlowFrame {
        /// The per-frame receive budget that was exceeded, in ms.
        budget_ms: u64,
    },
    /// The Hello carried a protocol version this build does not speak.
    /// Version skew fails loud at the handshake instead of surfacing as
    /// an arbitrary decode error deeper in the session.
    VersionMismatch {
        /// Version the peer announced.
        got: u32,
        /// Version this build speaks ([`PROTO_VERSION`]).
        want: u32,
    },
}

impl ProtocolError {
    /// Stable numeric code for the wire (`ProtocolReject` responses) and
    /// for telemetry labels.
    pub fn code(&self) -> u8 {
        match self {
            ProtocolError::BadMagic { .. } => 1,
            ProtocolError::Oversized { .. } => 2,
            ProtocolError::Truncated { .. } => 3,
            ProtocolError::UnknownTag { .. } => 4,
            ProtocolError::BadEnum { .. } => 5,
            ProtocolError::BadUtf8 { .. } => 6,
            ProtocolError::BadCount { .. } => 7,
            ProtocolError::BadValue { .. } => 8,
            ProtocolError::TrailingBytes { .. } => 9,
            ProtocolError::SlowFrame { .. } => 10,
            ProtocolError::VersionMismatch { .. } => 11,
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic { got } => {
                write!(f, "bad frame magic {:02x}{:02x}", got[0], got[1])
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::Truncated { field, needed, got } => {
                write!(f, "truncated at {field}: needed {needed} bytes, got {got}")
            }
            ProtocolError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            ProtocolError::BadEnum { field, value } => {
                write!(f, "{field}: no variant {value}")
            }
            ProtocolError::BadUtf8 { field } => write!(f, "{field}: invalid UTF-8"),
            ProtocolError::BadCount { field, count, max } => {
                write!(f, "{field}: count {count} exceeds limit {max}")
            }
            ProtocolError::BadValue { field } => write!(f, "{field}: value out of domain"),
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after message")
            }
            ProtocolError::SlowFrame { budget_ms } => {
                write!(f, "frame not completed within {budget_ms} ms")
            }
            ProtocolError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "protocol version {got} not supported (this build speaks {want})"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------------
// Message model
// ---------------------------------------------------------------------

/// The architecture a client wants its frames executed on. Compiled
/// server-side into an `Architecture` + engine + supervisor and cached
/// per connection keyed by [`ArchSpec::arch_hash`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArchSpec {
    /// Built-in kernel-set name (`sobel`, `box3`, …).
    pub kernel: String,
    /// Arithmetic mode discriminant (see [`ArchSpec::mode_name`]).
    pub mode: u8,
    /// Unit scale in ns per delay unit.
    pub unit_ns: f64,
    /// nLSE max-approximation terms.
    pub nlse_terms: u32,
    /// nLDE inhibit terms.
    pub nlde_terms: u32,
    /// Per-site transient fault rate (0 = clean engine).
    pub fault_rate: f64,
}

/// Mode discriminants on the wire.
pub const MODE_IMPORTANCE: u8 = 0;
/// `DelayExact`.
pub const MODE_EXACT: u8 = 1;
/// `DelayApprox`.
pub const MODE_APPROX: u8 = 2;
/// `DelayApproxNoisy`.
pub const MODE_NOISY: u8 = 3;

impl ArchSpec {
    /// Human-readable mode name (diagnostics only).
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            MODE_IMPORTANCE => "importance",
            MODE_EXACT => "exact",
            MODE_APPROX => "approx",
            MODE_NOISY => "noisy",
            _ => "?",
        }
    }

    /// FNV-1a hash over the spec's canonical encoding plus the frame
    /// geometry — the key of the per-connection rolling plan cache. Two
    /// submissions share a compiled `FramePlan` iff their hashes agree.
    pub fn arch_hash(&self, width: u32, height: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.kernel.as_bytes());
        eat(&[0xff, self.mode]);
        eat(&self.unit_ns.to_bits().to_le_bytes());
        eat(&self.nlse_terms.to_le_bytes());
        eat(&self.nlde_terms.to_le_bytes());
        eat(&self.fault_rate.to_bits().to_le_bytes());
        eat(&width.to_le_bytes());
        eat(&height.to_le_bytes());
        h
    }
}

/// Chaos directives a client may attach to a submission. Honoured only
/// when the server runs with chaos enabled; otherwise rejected with a
/// typed error. They exercise the supervision machinery end to end
/// (panic isolation, watchdog, retry) without a special build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chaos {
    /// No injection.
    None,
    /// Panic inside the engine on attempts `< n`.
    PanicAttempts {
        /// Attempts that panic before one succeeds.
        n: u32,
    },
    /// Stall the engine for `ms` on attempts `< n` (drives the watchdog).
    StallAttempts {
        /// Attempts that stall.
        n: u32,
        /// Stall duration per attempt, ms.
        ms: u32,
    },
}

/// One frame-execution request.
#[derive(Debug, Clone, PartialEq)]
pub struct Submit {
    /// Client-chosen correlation id, echoed in every response.
    pub id: u64,
    /// Architecture to execute on.
    pub spec: ArchSpec,
    /// Batch seed: outputs are a pure function of `(spec, seed, pixels)`.
    pub seed: u64,
    /// Per-request deadline in ms (0 = server default). Propagates into
    /// the supervisor watchdog.
    pub deadline_ms: u32,
    /// True to receive full output planes; false for checksum-only
    /// responses (high-throughput load generation).
    pub want_outputs: bool,
    /// Chaos directive (server must be started with chaos enabled).
    pub chaos: Chaos,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Row-major pixel plane, `width × height` values.
    pub pixels: Vec<f64>,
    /// Request trace context (16 raw bytes on the wire, appended only
    /// when non-zero so pre-trace frames decode unchanged). Zero means
    /// "none": the server generates one at admission and echoes it in
    /// every response and journal record for this request.
    pub trace: TraceId,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the session: protocol version + tenant identity.
    Hello {
        /// Client's [`PROTO_VERSION`].
        proto: u32,
        /// Tenant name for admission control and per-tenant metrics.
        tenant: String,
    },
    /// Execute one frame.
    Submit(Submit),
    /// Liveness probe; echoed back as [`Response::Pong`].
    Ping {
        /// Opaque echo value.
        nonce: u64,
    },
    /// Readiness/health snapshot request.
    Health,
    /// Prometheus-text metrics scrape.
    Metrics,
    /// Polite close; server replies [`Response::Bye`] and closes.
    Goodbye,
}

/// Why a request was shed instead of executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShedReason {
    /// The server is at its connection limit.
    ConnectionLimit,
    /// This tenant's pending-work bound is full.
    TenantQueueFull,
    /// The server-wide pending-work bound is full.
    Overloaded,
    /// The client pipelined past its granted credits.
    CreditOverrun,
    /// The server is draining and accepts no new work.
    Draining,
    /// The request's deadline expired while it waited in queue.
    Expired,
}

impl ShedReason {
    fn to_u8(self) -> u8 {
        match self {
            ShedReason::ConnectionLimit => 1,
            ShedReason::TenantQueueFull => 2,
            ShedReason::Overloaded => 3,
            ShedReason::CreditOverrun => 4,
            ShedReason::Draining => 5,
            ShedReason::Expired => 6,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            1 => ShedReason::ConnectionLimit,
            2 => ShedReason::TenantQueueFull,
            3 => ShedReason::Overloaded,
            4 => ShedReason::CreditOverrun,
            5 => ShedReason::Draining,
            6 => ShedReason::Expired,
            value => {
                return Err(ProtocolError::BadEnum {
                    field: "shed_reason",
                    value,
                })
            }
        })
    }

    /// Telemetry label for this shed class.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::ConnectionLimit => "connection_limit",
            ShedReason::TenantQueueFull => "tenant_queue_full",
            ShedReason::Overloaded => "overloaded",
            ShedReason::CreditOverrun => "credit_overrun",
            ShedReason::Draining => "draining",
            ShedReason::Expired => "expired",
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Request-level (not protocol-level) failure classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The [`ArchSpec`] could not be compiled.
    BadSpec,
    /// Pixel plane does not match the declared geometry.
    DimensionMismatch,
    /// A [`Request::Hello`] was required (or repeated, or incompatible).
    BadHandshake,
    /// Chaos directive received but the server runs without `--chaos`.
    ChaosDisabled,
    /// The supervisor exhausted its budget and no fallback produced
    /// usable output.
    FrameFailed,
    /// The frame missed its deadline (watchdog fired on every attempt).
    DeadlineExceeded,
    /// Unclassified server-side failure.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadSpec => 1,
            ErrorCode::DimensionMismatch => 2,
            ErrorCode::BadHandshake => 3,
            ErrorCode::ChaosDisabled => 4,
            ErrorCode::FrameFailed => 5,
            ErrorCode::DeadlineExceeded => 6,
            ErrorCode::Internal => 7,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            1 => ErrorCode::BadSpec,
            2 => ErrorCode::DimensionMismatch,
            3 => ErrorCode::BadHandshake,
            4 => ErrorCode::ChaosDisabled,
            5 => ErrorCode::FrameFailed,
            6 => ErrorCode::DeadlineExceeded,
            7 => ErrorCode::Internal,
            value => {
                return Err(ProtocolError::BadEnum {
                    field: "error_code",
                    value,
                })
            }
        })
    }
}

/// One output plane in a [`Response::Done`].
#[derive(Debug, Clone, PartialEq)]
pub struct OutputPlane {
    /// Plane width.
    pub width: u32,
    /// Plane height.
    pub height: u32,
    /// Row-major values.
    pub pixels: Vec<f64>,
}

/// Readiness/liveness snapshot, built on the runtime's health machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// True when the server accepts new work (live and not draining).
    pub ready: bool,
    /// True once drain has begun.
    pub draining: bool,
    /// Open connections (including the one answering this probe).
    pub connections: u32,
    /// Frames currently queued or executing.
    pub in_flight: u32,
    /// Submissions admitted since startup.
    pub accepted: u64,
    /// Frames completed with usable output (ok + degraded).
    pub completed: u64,
    /// Frames served by a fallback engine.
    pub degraded: u64,
    /// Requests shed (all [`ShedReason`] classes).
    pub shed: u64,
    /// Frames with no usable output.
    pub failed: u64,
    /// Protocol violations observed.
    pub protocol_errors: u64,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    Welcome {
        /// Server's [`PROTO_VERSION`].
        proto: u32,
        /// Flow-control credits: the maximum submissions the client may
        /// have outstanding on this connection.
        credits: u32,
        /// Largest frame payload this connection accepts.
        max_frame: u32,
        /// Server build name.
        server: String,
    },
    /// Frame executed; outputs attached or checksummed.
    Done {
        /// Echoed correlation id.
        id: u64,
        /// True when a fallback engine produced the outputs.
        degraded: bool,
        /// Name of the fallback that served the frame (empty when not
        /// degraded).
        fallback: String,
        /// Supervisor attempts consumed.
        attempts: u32,
        /// Server-side latency in microseconds.
        latency_us: u64,
        /// FNV-1a over every output plane's f64 bit patterns, in order —
        /// lets checksum-only clients verify bit-identity.
        checksum: u64,
        /// Output planes (empty unless `want_outputs`).
        outputs: Vec<OutputPlane>,
        /// Echoed request trace (zero when the request carried none and
        /// the server generated none).
        trace: TraceId,
    },
    /// Request shed; retry after the hinted delay.
    Busy {
        /// Echoed correlation id (0 for connection-level shedding).
        id: u64,
        /// Why the request was shed.
        reason: ShedReason,
        /// Client backoff hint, ms.
        retry_after_ms: u32,
        /// Echoed request trace (zero for connection-level shedding of
        /// untraced requests).
        trace: TraceId,
    },
    /// Request failed for a request-level reason.
    Error {
        /// Echoed correlation id.
        id: u64,
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Echoed request trace (zero when unknown).
        trace: TraceId,
    },
    /// The previous frame violated the protocol. After
    /// `strikes_left == 0` the connection is quarantined (closed).
    ProtocolReject {
        /// [`ProtocolError::code`] of the violation.
        code: u8,
        /// Rendered violation.
        message: String,
        /// Violations remaining before quarantine.
        strikes_left: u32,
    },
    /// Liveness echo.
    Pong {
        /// Echoed nonce.
        nonce: u64,
    },
    /// Readiness/health snapshot.
    Health(HealthSnapshot),
    /// Prometheus exposition text.
    Metrics {
        /// The rendered snapshot.
        text: String,
    },
    /// Connection closing. `drained` is true when the close follows a
    /// graceful drain with every in-flight frame answered.
    Bye {
        /// Whether in-flight work was fully drained.
        drained: bool,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new(tag: u8) -> Self {
        Enc { buf: vec![tag] }
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    pub(crate) fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let take = bytes.len().min(MAX_STR);
        // Truncation at a char boundary: back off until valid.
        let mut end = take;
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        self.u16(end as u16);
        self.buf.extend_from_slice(&bytes[..end]);
    }
    pub(crate) fn plane(&mut self, pixels: &[f64]) {
        self.u32(pixels.len() as u32);
        for &p in pixels {
            self.f64(p);
        }
    }
}

pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], ProtocolError> {
        let got = self.buf.len() - self.pos;
        if got < n {
            return Err(ProtocolError::Truncated {
                field,
                needed: n,
                got,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, field: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, field)?[0])
    }
    pub(crate) fn u16(&mut self, field: &'static str) -> Result<u16, ProtocolError> {
        let b = self.take(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    pub(crate) fn u32(&mut self, field: &'static str) -> Result<u32, ProtocolError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    pub(crate) fn u64(&mut self, field: &'static str) -> Result<u64, ProtocolError> {
        let b = self.take(8, field)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    pub(crate) fn f64(&mut self, field: &'static str) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64(field)?))
    }
    pub(crate) fn bool(&mut self, field: &'static str) -> Result<bool, ProtocolError> {
        match self.u8(field)? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(ProtocolError::BadEnum { field, value }),
        }
    }
    pub(crate) fn str(&mut self, field: &'static str) -> Result<String, ProtocolError> {
        let len = usize::from(self.u16(field)?);
        if len > MAX_STR {
            return Err(ProtocolError::BadCount {
                field,
                count: len as u64,
                max: MAX_STR as u64,
            });
        }
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8 { field })
    }
    pub(crate) fn plane(
        &mut self,
        field: &'static str,
        max: u64,
    ) -> Result<Vec<f64>, ProtocolError> {
        let count = u64::from(self.u32(field)?);
        if count > max {
            return Err(ProtocolError::BadCount { field, count, max });
        }
        // The byte-availability check bounds allocation before reserving.
        let bytes = self.take((count as usize) * 8, field)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                f64::from_bits(u64::from_le_bytes(a))
            })
            .collect())
    }
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    pub(crate) fn finish(self) -> Result<(), ProtocolError> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(ProtocolError::TrailingBytes { extra });
        }
        Ok(())
    }
}

/// Appends a trace ID as 16 raw bytes — only when non-zero, keeping
/// traceless frames byte-identical to the pre-trace encoding.
pub(crate) fn enc_trace(e: &mut Enc, trace: &TraceId) {
    if !trace.is_zero() {
        e.buf.extend_from_slice(&trace.0);
    }
}

/// Reads the optional trailing trace ID: present iff exactly 16 bytes
/// remain at this point (every enclosing message ends with this field,
/// so any other remainder falls through to `finish`'s trailing-bytes
/// check). Pre-trace frames therefore decode to [`TraceId::ZERO`].
pub(crate) fn dec_trace(d: &mut Dec<'_>) -> Result<TraceId, ProtocolError> {
    if d.remaining() != 16 {
        return Ok(TraceId::ZERO);
    }
    let bytes = d.take(16, "trace")?;
    let mut raw = [0u8; 16];
    raw.copy_from_slice(bytes);
    Ok(TraceId(raw))
}

const TAG_HELLO: u8 = 0x01;
const TAG_SUBMIT: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_HEALTH: u8 = 0x04;
const TAG_METRICS: u8 = 0x05;
const TAG_GOODBYE: u8 = 0x06;

const TAG_WELCOME: u8 = 0x81;
const TAG_DONE: u8 = 0x82;
const TAG_BUSY: u8 = 0x83;
const TAG_ERROR: u8 = 0x84;
const TAG_PROTO_REJECT: u8 = 0x85;
const TAG_PONG: u8 = 0x86;
const TAG_HEALTH_RSP: u8 = 0x87;
const TAG_METRICS_RSP: u8 = 0x88;
const TAG_BYE: u8 = 0x89;

pub(crate) fn enc_spec(e: &mut Enc, s: &ArchSpec) {
    e.str(&s.kernel);
    e.u8(s.mode);
    e.f64(s.unit_ns);
    e.u32(s.nlse_terms);
    e.u32(s.nlde_terms);
    e.f64(s.fault_rate);
}

pub(crate) fn dec_spec(d: &mut Dec<'_>) -> Result<ArchSpec, ProtocolError> {
    let kernel = d.str("spec.kernel")?;
    let mode = d.u8("spec.mode")?;
    if mode > MODE_NOISY {
        return Err(ProtocolError::BadEnum {
            field: "spec.mode",
            value: mode,
        });
    }
    let unit_ns = d.f64("spec.unit_ns")?;
    if !unit_ns.is_finite() || unit_ns <= 0.0 {
        return Err(ProtocolError::BadValue {
            field: "spec.unit_ns",
        });
    }
    let nlse_terms = d.u32("spec.nlse_terms")?;
    let nlde_terms = d.u32("spec.nlde_terms")?;
    let fault_rate = d.f64("spec.fault_rate")?;
    if !fault_rate.is_finite() || !(0.0..=1.0).contains(&fault_rate) {
        return Err(ProtocolError::BadValue {
            field: "spec.fault_rate",
        });
    }
    Ok(ArchSpec {
        kernel,
        mode,
        unit_ns,
        nlse_terms,
        nlde_terms,
        fault_rate,
    })
}

impl Request {
    /// Encodes the message payload (tag + body, no frame header).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { proto, tenant } => {
                let mut e = Enc::new(TAG_HELLO);
                e.u32(*proto);
                e.str(tenant);
                e.buf
            }
            Request::Submit(s) => {
                let mut e = Enc::new(TAG_SUBMIT);
                e.u64(s.id);
                enc_spec(&mut e, &s.spec);
                e.u64(s.seed);
                e.u32(s.deadline_ms);
                e.u8(u8::from(s.want_outputs));
                match s.chaos {
                    Chaos::None => {
                        e.u8(0);
                        e.u32(0);
                        e.u32(0);
                    }
                    Chaos::PanicAttempts { n } => {
                        e.u8(1);
                        e.u32(n);
                        e.u32(0);
                    }
                    Chaos::StallAttempts { n, ms } => {
                        e.u8(2);
                        e.u32(n);
                        e.u32(ms);
                    }
                }
                e.u32(s.width);
                e.u32(s.height);
                e.plane(&s.pixels);
                enc_trace(&mut e, &s.trace);
                e.buf
            }
            Request::Ping { nonce } => {
                let mut e = Enc::new(TAG_PING);
                e.u64(*nonce);
                e.buf
            }
            Request::Health => Enc::new(TAG_HEALTH).buf,
            Request::Metrics => Enc::new(TAG_METRICS).buf,
            Request::Goodbye => Enc::new(TAG_GOODBYE).buf,
        }
    }

    /// Decodes one payload.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for any malformed byte stream.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut d = Dec::new(payload);
        let tag = d.u8("tag")?;
        let msg = match tag {
            TAG_HELLO => {
                let proto = d.u32("hello.proto")?;
                if proto != PROTO_VERSION {
                    // Checked at decode time so version skew is a typed
                    // handshake rejection (code 11), not a downstream
                    // field error on whatever the future format holds.
                    return Err(ProtocolError::VersionMismatch {
                        got: proto,
                        want: PROTO_VERSION,
                    });
                }
                let tenant = d.str("hello.tenant")?;
                Request::Hello { proto, tenant }
            }
            TAG_SUBMIT => {
                let id = d.u64("submit.id")?;
                let spec = dec_spec(&mut d)?;
                let seed = d.u64("submit.seed")?;
                let deadline_ms = d.u32("submit.deadline_ms")?;
                let want_outputs = d.bool("submit.want_outputs")?;
                let chaos_kind = d.u8("submit.chaos")?;
                let chaos_n = d.u32("submit.chaos_n")?;
                let chaos_ms = d.u32("submit.chaos_ms")?;
                let chaos = match chaos_kind {
                    0 => Chaos::None,
                    1 => Chaos::PanicAttempts { n: chaos_n },
                    2 => Chaos::StallAttempts {
                        n: chaos_n,
                        ms: chaos_ms,
                    },
                    value => {
                        return Err(ProtocolError::BadEnum {
                            field: "submit.chaos",
                            value,
                        })
                    }
                };
                let width = d.u32("submit.width")?;
                let height = d.u32("submit.height")?;
                for (field, v) in [("submit.width", width), ("submit.height", height)] {
                    if v == 0 || v > MAX_DIM {
                        return Err(ProtocolError::BadCount {
                            field,
                            count: u64::from(v),
                            max: u64::from(MAX_DIM),
                        });
                    }
                }
                let expected = u64::from(width) * u64::from(height);
                let pixels = d.plane("submit.pixels", expected)?;
                if pixels.len() as u64 != expected {
                    return Err(ProtocolError::BadCount {
                        field: "submit.pixels",
                        count: pixels.len() as u64,
                        max: expected,
                    });
                }
                let trace = dec_trace(&mut d)?;
                Request::Submit(Submit {
                    id,
                    spec,
                    seed,
                    deadline_ms,
                    want_outputs,
                    chaos,
                    width,
                    height,
                    pixels,
                    trace,
                })
            }
            TAG_PING => Request::Ping {
                nonce: d.u64("ping.nonce")?,
            },
            TAG_HEALTH => Request::Health,
            TAG_METRICS => Request::Metrics,
            TAG_GOODBYE => Request::Goodbye,
            tag => return Err(ProtocolError::UnknownTag { tag }),
        };
        d.finish()?;
        Ok(msg)
    }
}

impl Response {
    /// Encodes the message payload (tag + body, no frame header).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Welcome {
                proto,
                credits,
                max_frame,
                server,
            } => {
                let mut e = Enc::new(TAG_WELCOME);
                e.u32(*proto);
                e.u32(*credits);
                e.u32(*max_frame);
                e.str(server);
                e.buf
            }
            Response::Done {
                id,
                degraded,
                fallback,
                attempts,
                latency_us,
                checksum,
                outputs,
                trace,
            } => {
                let mut e = Enc::new(TAG_DONE);
                e.u64(*id);
                e.u8(u8::from(*degraded));
                e.str(fallback);
                e.u32(*attempts);
                e.u64(*latency_us);
                e.u64(*checksum);
                e.u16(outputs.len() as u16);
                for plane in outputs {
                    e.u32(plane.width);
                    e.u32(plane.height);
                    e.plane(&plane.pixels);
                }
                enc_trace(&mut e, trace);
                e.buf
            }
            Response::Busy {
                id,
                reason,
                retry_after_ms,
                trace,
            } => {
                let mut e = Enc::new(TAG_BUSY);
                e.u64(*id);
                e.u8(reason.to_u8());
                e.u32(*retry_after_ms);
                enc_trace(&mut e, trace);
                e.buf
            }
            Response::Error {
                id,
                code,
                message,
                trace,
            } => {
                let mut e = Enc::new(TAG_ERROR);
                e.u64(*id);
                e.u8(code.to_u8());
                e.str(message);
                enc_trace(&mut e, trace);
                e.buf
            }
            Response::ProtocolReject {
                code,
                message,
                strikes_left,
            } => {
                let mut e = Enc::new(TAG_PROTO_REJECT);
                e.u8(*code);
                e.str(message);
                e.u32(*strikes_left);
                e.buf
            }
            Response::Pong { nonce } => {
                let mut e = Enc::new(TAG_PONG);
                e.u64(*nonce);
                e.buf
            }
            Response::Health(h) => {
                let mut e = Enc::new(TAG_HEALTH_RSP);
                e.u8(u8::from(h.ready));
                e.u8(u8::from(h.draining));
                e.u32(h.connections);
                e.u32(h.in_flight);
                e.u64(h.accepted);
                e.u64(h.completed);
                e.u64(h.degraded);
                e.u64(h.shed);
                e.u64(h.failed);
                e.u64(h.protocol_errors);
                e.buf
            }
            Response::Metrics { text } => {
                let mut e = Enc::new(TAG_METRICS_RSP);
                let bytes = text.as_bytes();
                e.u32(bytes.len() as u32);
                e.buf.extend_from_slice(bytes);
                e.buf
            }
            Response::Bye { drained } => {
                let mut e = Enc::new(TAG_BYE);
                e.u8(u8::from(*drained));
                e.buf
            }
        }
    }

    /// Decodes one payload.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for any malformed byte stream.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut d = Dec::new(payload);
        let tag = d.u8("tag")?;
        let msg = match tag {
            TAG_WELCOME => Response::Welcome {
                proto: d.u32("welcome.proto")?,
                credits: d.u32("welcome.credits")?,
                max_frame: d.u32("welcome.max_frame")?,
                server: d.str("welcome.server")?,
            },
            TAG_DONE => {
                let id = d.u64("done.id")?;
                let degraded = d.bool("done.degraded")?;
                let fallback = d.str("done.fallback")?;
                let attempts = d.u32("done.attempts")?;
                let latency_us = d.u64("done.latency_us")?;
                let checksum = d.u64("done.checksum")?;
                let count = usize::from(d.u16("done.outputs")?);
                let mut outputs = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    let width = d.u32("done.plane.width")?;
                    let height = d.u32("done.plane.height")?;
                    for (field, v) in [("done.plane.width", width), ("done.plane.height", height)] {
                        if v == 0 || v > MAX_DIM {
                            return Err(ProtocolError::BadCount {
                                field,
                                count: u64::from(v),
                                max: u64::from(MAX_DIM),
                            });
                        }
                    }
                    let expected = u64::from(width) * u64::from(height);
                    let pixels = d.plane("done.plane.pixels", expected)?;
                    if pixels.len() as u64 != expected {
                        return Err(ProtocolError::BadCount {
                            field: "done.plane.pixels",
                            count: pixels.len() as u64,
                            max: expected,
                        });
                    }
                    outputs.push(OutputPlane {
                        width,
                        height,
                        pixels,
                    });
                }
                let trace = dec_trace(&mut d)?;
                Response::Done {
                    id,
                    degraded,
                    fallback,
                    attempts,
                    latency_us,
                    checksum,
                    outputs,
                    trace,
                }
            }
            TAG_BUSY => {
                let id = d.u64("busy.id")?;
                let reason = ShedReason::from_u8(d.u8("busy.reason")?)?;
                let retry_after_ms = d.u32("busy.retry_after_ms")?;
                let trace = dec_trace(&mut d)?;
                Response::Busy {
                    id,
                    reason,
                    retry_after_ms,
                    trace,
                }
            }
            TAG_ERROR => {
                let id = d.u64("error.id")?;
                let code = ErrorCode::from_u8(d.u8("error.code")?)?;
                let message = d.str("error.message")?;
                let trace = dec_trace(&mut d)?;
                Response::Error {
                    id,
                    code,
                    message,
                    trace,
                }
            }
            TAG_PROTO_REJECT => Response::ProtocolReject {
                code: d.u8("reject.code")?,
                message: d.str("reject.message")?,
                strikes_left: d.u32("reject.strikes_left")?,
            },
            TAG_PONG => Response::Pong {
                nonce: d.u64("pong.nonce")?,
            },
            TAG_HEALTH_RSP => Response::Health(HealthSnapshot {
                ready: d.bool("health.ready")?,
                draining: d.bool("health.draining")?,
                connections: d.u32("health.connections")?,
                in_flight: d.u32("health.in_flight")?,
                accepted: d.u64("health.accepted")?,
                completed: d.u64("health.completed")?,
                degraded: d.u64("health.degraded")?,
                shed: d.u64("health.shed")?,
                failed: d.u64("health.failed")?,
                protocol_errors: d.u64("health.protocol_errors")?,
            }),
            TAG_METRICS_RSP => {
                let len = d.u32("metrics.len")? as usize;
                let bytes = d.take(len, "metrics.text")?;
                Response::Metrics {
                    text: String::from_utf8(bytes.to_vec()).map_err(|_| {
                        ProtocolError::BadUtf8 {
                            field: "metrics.text",
                        }
                    })?,
                }
            }
            TAG_BYE => Response::Bye {
                drained: d.bool("bye.drained")?,
            },
            tag => return Err(ProtocolError::UnknownTag { tag }),
        };
        d.finish()?;
        Ok(msg)
    }
}

/// FNV-1a over output planes' f64 bit patterns, in plane order — the
/// checksum carried by [`Response::Done`].
pub fn output_checksum<'a>(planes: impl IntoIterator<Item = &'a [f64]>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for plane in planes {
        for &p in plane {
            for b in p.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

/// Writes one frame (header + payload) with a single `write_all`, so
/// concurrent writers serialised by a mutex never interleave frames.
///
/// # Errors
///
/// Any I/O error from the underlying stream.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(6 + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// How [`read_frame`] can fail.
#[derive(Debug)]
pub enum ReadError {
    /// Clean end of stream before any byte of a frame.
    Eof,
    /// The stream violated the protocol (bad magic, oversized frame,
    /// mid-frame EOF → [`ProtocolError::Truncated`]).
    Protocol(ProtocolError),
    /// Transport-level failure.
    Io(io::Error),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Eof => f.write_str("end of stream"),
            ReadError::Protocol(e) => write!(f, "protocol: {e}"),
            ReadError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Reads one frame from a blocking stream: magic, bounded length,
/// payload. EOF before the first header byte is a clean [`ReadError::Eof`];
/// EOF anywhere later is a typed truncation.
///
/// # Errors
///
/// [`ReadError`] as described above.
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> Result<Vec<u8>, ReadError> {
    let mut header = [0u8; 6];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Err(ReadError::Eof)
                } else {
                    Err(ReadError::Protocol(ProtocolError::Truncated {
                        field: "frame.header",
                        needed: header.len(),
                        got: filled,
                    }))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    parse_header(&header, max_len).map_err(ReadError::Protocol)?;
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(ReadError::Protocol(ProtocolError::Truncated {
                    field: "frame.payload",
                    needed: len,
                    got,
                }))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(payload)
}

/// Validates a 6-byte frame header, returning the payload length.
///
/// # Errors
///
/// [`ProtocolError::BadMagic`] / [`ProtocolError::Oversized`].
pub fn parse_header(header: &[u8; 6], max_len: u32) -> Result<u32, ProtocolError> {
    if header[0..2] != MAGIC {
        return Err(ProtocolError::BadMagic {
            got: [header[0], header[1]],
        });
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    let cap = max_len.min(HARD_MAX_FRAME);
    if len > cap {
        return Err(ProtocolError::Oversized { len, max: cap });
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn roundtrip_req(r: &Request) {
        let bytes = r.encode();
        assert_eq!(&Request::decode(&bytes).unwrap(), r);
    }

    fn roundtrip_rsp(r: &Response) {
        let bytes = r.encode();
        assert_eq!(&Response::decode(&bytes).unwrap(), r);
    }

    fn spec() -> ArchSpec {
        ArchSpec {
            kernel: "sobel".into(),
            mode: MODE_NOISY,
            unit_ns: 1.0,
            nlse_terms: 7,
            nlde_terms: 20,
            fault_rate: 0.0,
        }
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(&Request::Hello {
            proto: PROTO_VERSION,
            tenant: "acme".into(),
        });
        roundtrip_req(&Request::Ping { nonce: 0xdead_beef });
        roundtrip_req(&Request::Health);
        roundtrip_req(&Request::Metrics);
        roundtrip_req(&Request::Goodbye);
        roundtrip_req(&Request::Submit(Submit {
            id: 42,
            spec: spec(),
            seed: 7,
            deadline_ms: 250,
            want_outputs: true,
            chaos: Chaos::StallAttempts { n: 1, ms: 30 },
            width: 2,
            height: 3,
            pixels: vec![0.0, 0.25, 0.5, 0.75, 1.0, 0.125],
            trace: TraceId::ZERO,
        }));
        roundtrip_req(&Request::Submit(Submit {
            id: 43,
            spec: spec(),
            seed: 7,
            deadline_ms: 0,
            want_outputs: false,
            chaos: Chaos::None,
            width: 1,
            height: 1,
            pixels: vec![0.5],
            trace: TraceId::generate(),
        }));
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_rsp(&Response::Welcome {
            proto: 1,
            credits: 4,
            max_frame: 1 << 20,
            server: "ta-serve".into(),
        });
        roundtrip_rsp(&Response::Done {
            id: 9,
            degraded: true,
            fallback: "digital".into(),
            attempts: 3,
            latency_us: 1234,
            checksum: 0xfeed,
            outputs: vec![OutputPlane {
                width: 2,
                height: 1,
                pixels: vec![1.5, -2.5],
            }],
            trace: TraceId::generate(),
        });
        roundtrip_rsp(&Response::Busy {
            id: 1,
            reason: ShedReason::Overloaded,
            retry_after_ms: 50,
            trace: TraceId::generate(),
        });
        roundtrip_rsp(&Response::Error {
            id: 2,
            code: ErrorCode::BadSpec,
            message: "no such kernel".into(),
            trace: TraceId::ZERO,
        });
        roundtrip_rsp(&Response::ProtocolReject {
            code: 3,
            message: "truncated".into(),
            strikes_left: 2,
        });
        roundtrip_rsp(&Response::Pong { nonce: 5 });
        roundtrip_rsp(&Response::Health(HealthSnapshot {
            ready: true,
            draining: false,
            connections: 3,
            in_flight: 2,
            accepted: 100,
            completed: 97,
            degraded: 1,
            shed: 2,
            failed: 1,
            protocol_errors: 4,
        }));
        roundtrip_rsp(&Response::Metrics {
            text: "# TYPE x counter\nx 1\n".into(),
        });
        roundtrip_rsp(&Response::Bye { drained: true });
    }

    #[test]
    fn frame_io_roundtrips_and_rejects_garbage() {
        let payload = Request::Ping { nonce: 1 }.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let got = read_frame(&mut buf.as_slice(), 1 << 16).unwrap();
        assert_eq!(got, payload);

        // Garbage magic.
        let mut bad = buf.clone();
        bad[0] = 0x00;
        assert!(matches!(
            read_frame(&mut bad.as_slice(), 1 << 16),
            Err(ReadError::Protocol(ProtocolError::BadMagic { .. }))
        ));

        // Oversized length.
        let mut big = buf.clone();
        big[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut big.as_slice(), 1 << 16),
            Err(ReadError::Protocol(ProtocolError::Oversized { .. }))
        ));

        // Truncated payload (mid-frame EOF).
        let cut = &buf[..buf.len() - 2];
        assert!(matches!(
            read_frame(&mut &cut[..], 1 << 16),
            Err(ReadError::Protocol(ProtocolError::Truncated { .. }))
        ));

        // Clean EOF before any byte.
        assert!(matches!(
            read_frame(&mut &[][..], 1 << 16),
            Err(ReadError::Eof)
        ));
    }

    #[test]
    fn traceless_frames_encode_without_the_trace_tail() {
        // Byte-identical to the pre-trace (PR ≤7) encoding: a zero trace
        // adds nothing, a real trace adds exactly its 16 raw bytes.
        let mut sub = Submit {
            id: 1,
            spec: spec(),
            seed: 0,
            deadline_ms: 0,
            want_outputs: false,
            chaos: Chaos::None,
            width: 1,
            height: 1,
            pixels: vec![0.25],
            trace: TraceId::ZERO,
        };
        let bare = Request::Submit(sub.clone()).encode();
        sub.trace = TraceId::generate();
        let traced = Request::Submit(sub.clone()).encode();
        assert_eq!(traced.len(), bare.len() + 16);
        assert_eq!(&traced[..bare.len()], &bare[..]);
        assert_eq!(&traced[bare.len()..], &sub.trace.0);
        // A pre-trace frame (no tail) decodes with a zero trace.
        match Request::decode(&bare).unwrap() {
            Request::Submit(s) => assert!(s.trace.is_zero()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_tail_rides_every_reply_kind() {
        let trace = TraceId::generate();
        for rsp in [
            Response::Done {
                id: 1,
                degraded: false,
                fallback: String::new(),
                attempts: 1,
                latency_us: 10,
                checksum: 0,
                outputs: vec![],
                trace,
            },
            Response::Busy {
                id: 1,
                reason: ShedReason::Draining,
                retry_after_ms: 5,
                trace,
            },
            Response::Error {
                id: 1,
                code: ErrorCode::Internal,
                message: "x".into(),
                trace,
            },
        ] {
            let bytes = rsp.encode();
            let got = Response::decode(&bytes).unwrap();
            assert_eq!(got, rsp);
            let echoed = match got {
                Response::Done { trace, .. }
                | Response::Busy { trace, .. }
                | Response::Error { trace, .. } => trace,
                other => panic!("{other:?}"),
            };
            assert_eq!(echoed, trace);
        }
    }

    #[test]
    fn pixel_count_must_match_geometry() {
        let mut sub = Submit {
            id: 1,
            spec: spec(),
            seed: 0,
            deadline_ms: 0,
            want_outputs: false,
            chaos: Chaos::None,
            width: 2,
            height: 2,
            pixels: vec![0.0; 4],
            trace: TraceId::ZERO,
        };
        roundtrip_req(&Request::Submit(sub.clone()));
        sub.pixels.pop();
        let bytes = Request::Submit(sub).encode();
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtocolError::BadCount { .. }) | Err(ProtocolError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Goodbye.encode();
        bytes.push(0);
        assert_eq!(
            Request::decode(&bytes),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn arch_hash_separates_specs_and_geometries() {
        let a = spec();
        let mut b = spec();
        b.nlse_terms = 8;
        assert_ne!(a.arch_hash(8, 8), b.arch_hash(8, 8));
        assert_ne!(a.arch_hash(8, 8), a.arch_hash(8, 9));
        assert_eq!(a.arch_hash(8, 8), spec().arch_hash(8, 8));
    }

    #[test]
    fn every_error_variant_displays_and_codes() {
        let errs = [
            ProtocolError::BadMagic { got: [0, 1] },
            ProtocolError::Oversized { len: 9, max: 8 },
            ProtocolError::Truncated {
                field: "x",
                needed: 4,
                got: 2,
            },
            ProtocolError::UnknownTag { tag: 0x7f },
            ProtocolError::BadEnum {
                field: "x",
                value: 9,
            },
            ProtocolError::BadUtf8 { field: "x" },
            ProtocolError::BadCount {
                field: "x",
                count: 5,
                max: 4,
            },
            ProtocolError::BadValue { field: "x" },
            ProtocolError::TrailingBytes { extra: 1 },
            ProtocolError::SlowFrame { budget_ms: 5 },
            ProtocolError::VersionMismatch { got: 2, want: 1 },
        ];
        let mut seen = std::collections::BTreeSet::new();
        for e in &errs {
            assert!(!e.to_string().is_empty());
            assert!(seen.insert(e.code()), "duplicate code for {e:?}");
        }
    }
}
