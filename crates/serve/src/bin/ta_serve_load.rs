//! `ta-serve-load`: drive a `tconv serve` instance and emit
//! `BENCH_serve.json`.
//!
//! ```text
//! ta-serve-load [--addr HOST:PORT] [--out PATH] [--frames N]
//!               [--sweep 1,2,4] [--deadline-ms N] [--burst N]
//! ```
//!
//! Without `--addr` the tool spawns a hermetic in-process server (chaos
//! enabled, ephemeral port), benches it, and drains it — the mode CI's
//! `serve-smoke` job uses so the bench needs no orchestration.

use std::process::ExitCode;
use std::thread;

use ta_serve::loadgen::{self, LoadConfig};
use ta_serve::{ServeConfig, Server};

struct Args {
    addr: Option<String>,
    out: String,
    frames: usize,
    sweep: Vec<usize>,
    deadline_ms: u32,
    burst: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        out: "BENCH_serve.json".to_string(),
        frames: 20,
        sweep: vec![1, 2, 4],
        deadline_ms: 2000,
        burst: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--out" => args.out = value("--out")?,
            "--frames" => {
                args.frames = value("--frames")?
                    .parse()
                    .map_err(|_| "--frames: not a number".to_string())?;
            }
            "--sweep" => {
                args.sweep = value("--sweep")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "--sweep: comma-separated numbers".to_string())?;
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms: not a number".to_string())?;
            }
            "--burst" => {
                args.burst = value("--burst")?
                    .parse()
                    .map_err(|_| "--burst: not a number".to_string())?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: ta-serve-load [--addr HOST:PORT] [--out PATH] [--frames N] \
                     [--sweep 1,2,4] [--deadline-ms N] [--burst N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.sweep.is_empty() {
        return Err("--sweep must name at least one connection count".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(why) => {
            eprintln!("ta-serve-load: {why}");
            return ExitCode::from(2);
        }
    };

    // Hermetic mode: no --addr → run our own server for the bench.
    let (addr, hermetic) = match &args.addr {
        Some(a) => (a.clone(), None),
        None => {
            let server = match Server::bind(ServeConfig {
                chaos_enabled: true,
                ..ServeConfig::default()
            }) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ta-serve-load: cannot start hermetic server: {e}");
                    return ExitCode::from(1);
                }
            };
            let addr = match server.local_addr() {
                Some(a) => a.to_string(),
                None => {
                    eprintln!("ta-serve-load: hermetic server has no TCP address");
                    return ExitCode::from(1);
                }
            };
            let handle = server.handle();
            let runner = thread::spawn(move || server.run());
            (addr, Some((handle, runner)))
        }
    };

    let cfg = LoadConfig {
        addr: addr.clone(),
        frames_per_conn: args.frames,
        sweep: args.sweep.clone(),
        deadline_ms: args.deadline_ms,
        overload_burst: args.burst,
        ..LoadConfig::default()
    };
    let result = loadgen::run(&cfg);

    if let Some((handle, runner)) = hermetic {
        handle.begin_drain();
        match runner.join() {
            Ok(Ok(summary)) => eprintln!(
                "ta-serve-load: hermetic server drained ({} completed, {} shed)",
                summary.completed, summary.shed
            ),
            Ok(Err(e)) => eprintln!("ta-serve-load: hermetic server error: {e}"),
            Err(_) => eprintln!("ta-serve-load: hermetic server panicked"),
        }
    }

    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ta-serve-load: bench failed: {e}");
            return ExitCode::from(1);
        }
    };
    let json = report.to_json();
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("ta-serve-load: cannot write {}: {e}", args.out);
        return ExitCode::from(1);
    }
    println!("{json}");
    eprintln!("ta-serve-load: wrote {}", args.out);
    ExitCode::SUCCESS
}
