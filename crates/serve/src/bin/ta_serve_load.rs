//! `ta-serve-load`: drive a `tconv serve` instance and emit
//! `BENCH_serve.json`.
//!
//! ```text
//! ta-serve-load [--addr HOST:PORT] [--out PATH] [--frames N]
//!               [--sweep 1,2,4] [--deadline-ms N] [--burst N] [--journal]
//!               [--anomaly]
//! ```
//!
//! Without `--addr` the tool spawns a hermetic in-process server (chaos
//! enabled, ephemeral port), benches it, and drains it — the mode CI's
//! `serve-smoke` job uses so the bench needs no orchestration.
//!
//! `--journal` (hermetic mode only) additionally measures the durability
//! tax: the same single-connection sweep against a journal-less and a
//! journal-enabled server (fsync=batch), recorded as `journal_overhead`
//! in the report and asserted within the 15% p99 budget.
//!
//! `--anomaly` (requires `--addr`) skips the bench entirely and instead
//! sends one chaos-stalled submit whose deadline must blow, tripping the
//! server's watchdog so its flight recorder dumps a diagnostics bundle.
//! The probe prints `anomaly probe trace <hex>` so the caller (CI's
//! `observability-smoke` job) can join the reply against the bundle.

use std::process::ExitCode;
use std::thread;

use ta_serve::loadgen::{self, LoadConfig};
use ta_serve::{ServeConfig, Server};

struct Args {
    addr: Option<String>,
    out: String,
    frames: usize,
    sweep: Vec<usize>,
    deadline_ms: u32,
    burst: usize,
    journal: bool,
    anomaly: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        out: "BENCH_serve.json".to_string(),
        frames: 20,
        sweep: vec![1, 2, 4],
        deadline_ms: 2000,
        burst: 16,
        journal: false,
        anomaly: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--out" => args.out = value("--out")?,
            "--frames" => {
                args.frames = value("--frames")?
                    .parse()
                    .map_err(|_| "--frames: not a number".to_string())?;
            }
            "--sweep" => {
                args.sweep = value("--sweep")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "--sweep: comma-separated numbers".to_string())?;
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms: not a number".to_string())?;
            }
            "--burst" => {
                args.burst = value("--burst")?
                    .parse()
                    .map_err(|_| "--burst: not a number".to_string())?;
            }
            "--journal" => args.journal = true,
            "--anomaly" => args.anomaly = true,
            "--help" | "-h" => {
                println!(
                    "usage: ta-serve-load [--addr HOST:PORT] [--out PATH] [--frames N] \
                     [--sweep 1,2,4] [--deadline-ms N] [--burst N] [--journal] [--anomaly]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.sweep.is_empty() {
        return Err("--sweep must name at least one connection count".to_string());
    }
    if args.journal && args.addr.is_some() {
        return Err(
            "--journal is hermetic-only (it spawns its own servers); drop --addr".to_string(),
        );
    }
    if args.anomaly && args.addr.is_none() {
        return Err("--anomaly probes a running server; it needs --addr".to_string());
    }
    Ok(args)
}

type ServerRunner = thread::JoinHandle<Result<ta_serve::DrainSummary, ta_serve::ServeError>>;

/// Spawns a hermetic server and returns its address plus drain handles.
fn spawn_hermetic(
    cfg: ServeConfig,
) -> Result<(String, ta_serve::ServerHandle, ServerRunner), String> {
    let server = Server::bind(cfg).map_err(|e| format!("cannot start hermetic server: {e}"))?;
    let addr = server
        .local_addr()
        .ok_or("hermetic server has no TCP address")?
        .to_string();
    let handle = server.handle();
    let runner = thread::spawn(move || server.run());
    Ok((addr, handle, runner))
}

fn drain_hermetic(what: &str, handle: &ta_serve::ServerHandle, runner: ServerRunner) {
    handle.begin_drain();
    match runner.join() {
        Ok(Ok(summary)) => eprintln!(
            "ta-serve-load: {what} drained ({} completed, {} shed)",
            summary.completed, summary.shed
        ),
        Ok(Err(e)) => eprintln!("ta-serve-load: {what} error: {e}"),
        Err(_) => eprintln!("ta-serve-load: {what} panicked"),
    }
}

/// Sends one chaos-stalled submit that blows its deadline, so the target
/// server's watchdog anomaly path fires and dumps a diagnostics bundle.
/// Prints the probe's trace ID for the caller to join against the bundle.
/// Requires the server to run with `--chaos`.
fn run_anomaly_probe(addr: &str) -> Result<(), String> {
    use ta_serve::wire::{ArchSpec, Chaos, Response, Submit, MODE_EXACT};

    let mut client = ta_serve::client::Client::connect_tcp(addr, "anomaly-probe")
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let trace = ta_telemetry::TraceId::generate();
    // Every attempt stalls for 400 ms against a 150 ms deadline: the
    // watchdog must fire, and the first firing dumps the bundle.
    let sub = Submit {
        id: 1,
        spec: ArchSpec {
            kernel: "box3".into(),
            mode: MODE_EXACT,
            unit_ns: 1.0,
            nlse_terms: 7,
            nlde_terms: 20,
            fault_rate: 0.0,
        },
        seed: 3,
        deadline_ms: 150,
        want_outputs: false,
        chaos: Chaos::StallAttempts { n: 10, ms: 400 },
        width: 12,
        height: 12,
        pixels: ta_image::synth::natural_image(12, 12, 3).pixels().to_vec(),
        trace,
    };
    println!("anomaly probe trace {}", trace.to_hex());
    let echoed = match client.submit(sub).map_err(|e| format!("submit: {e}"))? {
        Response::Error { code, trace, .. } => {
            eprintln!("ta-serve-load: probe rejected as expected ({code:?})");
            trace
        }
        Response::Busy { .. } => {
            return Err("probe shed (server busy) — no anomaly induced".to_string());
        }
        // The supervisor may absorb the timeouts and finish degraded; the
        // watchdog still fired, which is all the probe needs. A clean
        // single-attempt Done means no anomaly — likely --chaos is off.
        Response::Done {
            degraded,
            attempts,
            trace,
            ..
        } if degraded || attempts > 1 => {
            eprintln!("ta-serve-load: probe finished degraded after {attempts} attempt(s)");
            trace
        }
        Response::Done { trace, .. } => {
            return Err(format!(
                "probe completed clean despite the stall — is --chaos on? (trace {})",
                trace.to_hex()
            ));
        }
        other => return Err(format!("unexpected probe reply {other:?}")),
    };
    if echoed != trace {
        return Err(format!(
            "reply trace {} does not echo the probe's {}",
            echoed.to_hex(),
            trace.to_hex()
        ));
    }
    let _ = client.goodbye();
    Ok(())
}

/// Runs the durability-tax probe on a fresh pair of hermetic servers.
fn run_journal_probe(cfg: &LoadConfig) -> Result<loadgen::JournalOverhead, String> {
    let wal = std::env::temp_dir().join(format!("ta-serve-load-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let (base_addr, base_handle, base_runner) = spawn_hermetic(ServeConfig::default())?;
    let (j_addr, j_handle, j_runner) = spawn_hermetic(ServeConfig {
        journal: Some(wal.clone()),
        journal_fsync: ta_serve::journal::FsyncPolicy::Batch,
        ..ServeConfig::default()
    })?;
    let probed = loadgen::journal_overhead(cfg, &base_addr, &j_addr);
    drain_hermetic("journal-probe base server", &base_handle, base_runner);
    drain_hermetic("journal-probe journaled server", &j_handle, j_runner);
    let _ = std::fs::remove_file(&wal);
    probed.map_err(|e| format!("journal probe failed: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(why) => {
            eprintln!("ta-serve-load: {why}");
            return ExitCode::from(2);
        }
    };

    if args.anomaly {
        // Anomaly-probe mode: no bench, no report — just trip the target
        // server's watchdog and exit.
        return match args.addr.as_deref().map(run_anomaly_probe) {
            Some(Ok(())) => ExitCode::SUCCESS,
            Some(Err(why)) => {
                eprintln!("ta-serve-load: anomaly probe: {why}");
                ExitCode::from(1)
            }
            None => ExitCode::from(2), // unreachable: parse_args requires --addr
        };
    }

    // Hermetic mode: no --addr → run our own server for the bench.
    let (addr, hermetic) = match &args.addr {
        Some(a) => (a.clone(), None),
        None => {
            let server = match Server::bind(ServeConfig {
                chaos_enabled: true,
                ..ServeConfig::default()
            }) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ta-serve-load: cannot start hermetic server: {e}");
                    return ExitCode::from(1);
                }
            };
            let addr = match server.local_addr() {
                Some(a) => a.to_string(),
                None => {
                    eprintln!("ta-serve-load: hermetic server has no TCP address");
                    return ExitCode::from(1);
                }
            };
            let handle = server.handle();
            let runner = thread::spawn(move || server.run());
            (addr, Some((handle, runner)))
        }
    };

    let cfg = LoadConfig {
        addr: addr.clone(),
        frames_per_conn: args.frames,
        sweep: args.sweep.clone(),
        deadline_ms: args.deadline_ms,
        overload_burst: args.burst,
        ..LoadConfig::default()
    };
    let result = loadgen::run(&cfg);

    if let Some((handle, runner)) = hermetic {
        handle.begin_drain();
        match runner.join() {
            Ok(Ok(summary)) => eprintln!(
                "ta-serve-load: hermetic server drained ({} completed, {} shed)",
                summary.completed, summary.shed
            ),
            Ok(Err(e)) => eprintln!("ta-serve-load: hermetic server error: {e}"),
            Err(_) => eprintln!("ta-serve-load: hermetic server panicked"),
        }
    }

    let mut report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ta-serve-load: bench failed: {e}");
            return ExitCode::from(1);
        }
    };

    // Durability tax: fresh server pair, single-connection sweeps, p99
    // compared. Enforced here so CI fails loudly on a regression.
    let mut over_budget = false;
    if args.journal {
        match run_journal_probe(&cfg) {
            Ok(probe) => {
                eprintln!(
                    "ta-serve-load: journal overhead p99 {:.1}µs → {:.1}µs ({:+.1}%)",
                    probe.p99_base_us,
                    probe.p99_journal_us,
                    probe.delta_fraction * 100.0,
                );
                over_budget = !probe.within_budget;
                report.journal_overhead = Some(probe);
            }
            Err(why) => {
                eprintln!("ta-serve-load: {why}");
                return ExitCode::from(1);
            }
        }
    }

    let json = report.to_json();
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("ta-serve-load: cannot write {}: {e}", args.out);
        return ExitCode::from(1);
    }
    println!("{json}");
    eprintln!("ta-serve-load: wrote {}", args.out);
    if over_budget {
        eprintln!(
            "ta-serve-load: journaling overhead exceeds the {:.0}% p99 budget",
            loadgen::JOURNAL_OVERHEAD_BUDGET * 100.0
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
