//! `ta-serve`: a fault-tolerant streaming convolution service.
//!
//! Long-running processes need more than a batch runner: this crate turns
//! the supervised temporal-convolution runtime into a server that speaks
//! a length-prefixed binary protocol over TCP and Unix-domain sockets,
//! executes frames through [`ta_runtime::Supervisor`] (watchdog, retries,
//! graceful degradation to the digital reference), and protects itself
//! from overload and malformed clients:
//!
//! * **Protocol** ([`wire`]) — hand-rolled total codec; every malformed
//!   byte stream maps to a typed [`wire::ProtocolError`], never a panic.
//! * **Plan reuse** ([`cache`]) — per-connection rolling LRU of compiled
//!   architectures keyed by [`wire::ArchSpec::arch_hash`].
//! * **Admission** ([`admission`]) — global in-flight cap plus bounded
//!   per-tenant queues; RAII permits so capacity cannot leak.
//! * **Backpressure** — credit-based flow control per connection plus
//!   typed [`wire::Response::Busy`] shedding with retry hints.
//! * **Supervision** ([`server`]) — per-request deadlines propagated into
//!   the watchdog, idle timeouts, slow-loris defence, malformed-frame
//!   quarantine, and a graceful SIGTERM drain that answers every
//!   in-flight frame before exiting.
//! * **Durability** ([`journal`]) — an optional write-ahead journal of
//!   accepted requests and completions; after a crash the server
//!   recovers (or sheds) journaled in-flight frames and answers client
//!   retries from an idempotency index, so no frame is ever computed
//!   twice or differently.
//! * **Chaos** ([`chaos`]) — opt-in fault directives carried by requests,
//!   so the chaos suite can exercise panic isolation, watchdog timeouts,
//!   and fallback end to end over the real wire.
//! * **Observability** ([`bundle`], [`slo`]) — wire-propagated trace IDs
//!   echoed in every reply, an anomaly-triggered flight recorder that
//!   dumps JSONL diagnostics bundles ([`BundleWriter`], parsed back by
//!   [`BundleSummary`] and `tconv inspect-bundle`), and per-tenant SLO
//!   burn plus energy/op census gauges ([`SloTracker`]) exported through
//!   the Metrics wire request for `tconv top`.
//!
//! Determinism contract: a completed frame's outputs are a pure function
//! of `(spec, seed, pixels, retry policy)` — bit-identical to a serial
//! [`ta_runtime::Supervisor::run_one`] with the same inputs, regardless
//! of connection interleaving or injected chaos.

pub mod admission;
pub mod bundle;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod error;
pub mod journal;
pub mod loadgen;
pub mod server;
pub mod signal;
pub mod slo;
pub mod spec;
pub mod stream;
pub mod wire;

pub use bundle::{BundleSummary, BundleWriter};
pub use client::{Client, ClientError};
pub use error::ServeError;
pub use journal::{RecoveryPolicy, ServeJournal};
pub use loadgen::{BenchReport, LoadConfig};
pub use server::{DrainSummary, ServeConfig, Server, ServerHandle};
pub use slo::SloTracker;
pub use spec::{CompiledArch, ExecPolicy, SpecError};
pub use wire::{ProtocolError, Request, Response, Submit};
