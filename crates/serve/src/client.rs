//! A small blocking client for the serve protocol — used by the load
//! generator, the chaos suite, and anyone scripting against `tconv
//! serve`.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::stream::Stream;
use crate::wire::{
    read_frame, write_frame, ProtocolError, ReadError, Request, Response, Submit, PROTO_VERSION,
};

/// Client-side failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Transport-level failure.
    Io(io::Error),
    /// The server's bytes violated the protocol.
    Protocol(ProtocolError),
    /// The server closed the connection.
    Closed,
    /// The handshake was not answered with a Welcome.
    Handshake(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Closed => f.write_str("connection closed"),
            ClientError::Handshake(why) => write!(f, "handshake failed: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ReadError> for ClientError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Eof => ClientError::Closed,
            ReadError::Protocol(p) => ClientError::Protocol(p),
            ReadError::Io(e) => ClientError::Io(e),
        }
    }
}

/// One connected, handshaken session.
pub struct Client {
    stream: Stream,
    /// Credits granted by the server's Welcome.
    pub credits: u32,
    /// Frame ceiling granted by the server's Welcome.
    pub max_frame: u32,
    /// Server build identity.
    pub server: String,
}

impl Client {
    /// Connects over TCP and performs the Hello/Welcome handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connect, transport, or handshake failure.
    pub fn connect_tcp(addr: &str, tenant: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Self::handshake(Stream::Tcp(stream), tenant)
    }

    /// Connects over a Unix-domain socket and handshakes.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connect, transport, or handshake failure.
    pub fn connect_uds(path: &Path, tenant: &str) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        Self::handshake(Stream::Unix(stream), tenant)
    }

    fn handshake(mut stream: Stream, tenant: &str) -> Result<Client, ClientError> {
        write_frame(
            &mut stream,
            &Request::Hello {
                proto: PROTO_VERSION,
                tenant: tenant.to_string(),
            }
            .encode(),
        )?;
        let payload = read_frame(&mut stream, crate::wire::HARD_MAX_FRAME)?;
        match Response::decode(&payload).map_err(ClientError::Protocol)? {
            Response::Welcome {
                credits,
                max_frame,
                server,
                ..
            } => Ok(Client {
                stream,
                credits,
                max_frame,
                server,
            }),
            Response::Error { message, .. } => Err(ClientError::Handshake(message)),
            Response::Busy { reason, .. } => Err(ClientError::Handshake(reason.to_string())),
            other => Err(ClientError::Handshake(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// Bounds how long [`Client::recv`] blocks.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    /// Sends one request without waiting for the reply (pipelining).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        Ok(())
    }

    /// Receives one response.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, close, or protocol violation.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.stream, crate::wire::HARD_MAX_FRAME)?;
        Response::decode(&payload).map_err(ClientError::Protocol)
    }

    /// Sends one request and waits for one response.
    ///
    /// # Errors
    ///
    /// [`ClientError`] as for [`Client::send`] / [`Client::recv`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    /// Submits one frame and waits for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError`] as for [`Client::call`].
    pub fn submit(&mut self, sub: Submit) -> Result<Response, ClientError> {
        self.call(&Request::Submit(sub))
    }

    /// Writes raw bytes to the socket (chaos testing: garbage injection).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        use std::io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Polite goodbye; returns the server's Bye when it arrives.
    ///
    /// # Errors
    ///
    /// [`ClientError`] as for [`Client::call`].
    pub fn goodbye(mut self) -> Result<Response, ClientError> {
        self.call(&Request::Goodbye)
    }

    /// Drops the connection without saying goodbye (chaos testing:
    /// mid-request disconnects).
    pub fn abort(self) {
        self.stream.shutdown();
    }
}
