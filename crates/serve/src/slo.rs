//! Per-tenant SLO tracking: latency-objective burn-rate counters plus
//! energy/op-census attribution, exported through the process metrics
//! registry (DESIGN.md §5.14).
//!
//! Semantics: every answered submission is an SLO *request*. A request
//! **breaches** when it misses its latency objective or fails outright;
//! shed requests are counted separately (`ta_serve_slo_shed_total`) and
//! burn no error budget — shedding is the server protecting the
//! objective, not violating it. The burn gauge is the cumulative breach
//! fraction `breaches / requests`, i.e. how fast the tenant's error
//! budget is being consumed (1.0 = every request breaches).

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use ta_core::{OpCounts, StageEnergy};

/// Per-tenant running totals behind the exported gauges.
#[derive(Debug, Default, Clone, Copy)]
struct TenantSlo {
    requests: u64,
    breaches: u64,
    energy_pj: f64,
    ops: u64,
}

/// Tracks one server's latency objective across tenants and keeps the
/// registry's per-tenant families current.
#[derive(Debug)]
pub struct SloTracker {
    /// The latency objective every completed request is judged against.
    objective: Duration,
    tenants: Mutex<HashMap<String, TenantSlo>>,
}

impl SloTracker {
    /// A tracker judging requests against `objective`.
    #[must_use]
    pub fn new(objective: Duration) -> SloTracker {
        let metrics = ta_telemetry::metrics();
        metrics.describe(
            "ta_serve_slo_requests_total",
            "Answered submissions judged against the latency objective, per tenant",
        );
        metrics.describe(
            "ta_serve_slo_breaches_total",
            "Submissions that missed the latency objective or failed, per tenant",
        );
        metrics.describe(
            "ta_serve_slo_burn",
            "Cumulative error-budget burn rate (breaches / requests), per tenant",
        );
        metrics.describe(
            "ta_serve_tenant_energy_pj_total",
            "Modelled temporal-arithmetic energy served, picojoules per tenant",
        );
        metrics.describe(
            "ta_serve_tenant_ops_total",
            "Temporal-arithmetic operations served (op census), per tenant",
        );
        SloTracker {
            objective,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The configured latency objective.
    #[must_use]
    pub fn objective(&self) -> Duration {
        self.objective
    }

    /// Records one answered submission: `latency` against the objective,
    /// `ok` whether the reply carried usable output, and (when the frame
    /// executed) the compiled architecture's census/energy attribution.
    pub fn observe(
        &self,
        tenant: &str,
        latency: Duration,
        ok: bool,
        census: Option<(&OpCounts, &StageEnergy)>,
    ) {
        let breached = !ok || latency > self.objective;
        let (requests, breaches) = {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            let slot = tenants.entry(tenant.to_string()).or_default();
            slot.requests += 1;
            if breached {
                slot.breaches += 1;
            }
            if let Some((ops, energy)) = census {
                slot.energy_pj += energy.total_pj();
                slot.ops += ops.vtc_conversions + ops.tdc_conversions + ops.nlse_ops + ops.nlde_ops;
            }
            (slot.requests, slot.breaches)
        };
        let metrics = ta_telemetry::metrics();
        metrics
            .labeled_counter("ta_serve_slo_requests_total", "tenant", tenant)
            .inc();
        if breached {
            metrics
                .labeled_counter("ta_serve_slo_breaches_total", "tenant", tenant)
                .inc();
        }
        metrics
            .labeled_gauge("ta_serve_slo_burn", "tenant", tenant)
            .set(breaches as f64 / requests as f64);
        if let Some((ops, energy)) = census {
            metrics
                .labeled_gauge("ta_serve_tenant_energy_pj_total", "tenant", tenant)
                .add(energy.total_pj());
            metrics
                .labeled_counter("ta_serve_tenant_ops_total", "tenant", tenant)
                .add(ops.vtc_conversions + ops.tdc_conversions + ops.nlse_ops + ops.nlde_ops);
        }
    }

    /// Records one shed submission (counted, but burns no error budget).
    pub fn observe_shed(&self, tenant: &str) {
        ta_telemetry::metrics()
            .labeled_counter("ta_serve_slo_shed_total", "tenant", tenant)
            .inc();
    }

    /// The cumulative burn rate for `tenant` (0.0 when unseen).
    #[must_use]
    pub fn burn(&self, tenant: &str) -> f64 {
        let tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        tenants.get(tenant).map_or(0.0, |s| {
            if s.requests == 0 {
                0.0
            } else {
                s.breaches as f64 / s.requests as f64
            }
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn burn_tracks_breach_fraction_and_sheds_burn_nothing() {
        let slo = SloTracker::new(Duration::from_millis(10));
        slo.observe("acme", Duration::from_millis(1), true, None);
        slo.observe("acme", Duration::from_millis(50), true, None); // late
        slo.observe("acme", Duration::from_millis(1), false, None); // failed
        slo.observe_shed("acme");
        assert!((slo.burn("acme") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(slo.burn("ghost"), 0.0);
        let text = ta_telemetry::metrics().to_prometheus();
        assert!(
            text.contains("ta_serve_slo_requests_total{tenant=\"acme\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("ta_serve_slo_breaches_total{tenant=\"acme\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ta_serve_slo_shed_total{tenant=\"acme\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn census_attribution_accumulates_energy_and_ops() {
        let slo = SloTracker::new(Duration::from_millis(100));
        let ops = OpCounts {
            vtc_conversions: 10,
            tdc_conversions: 0,
            edge_events: 0,
            nlse_ops: 30,
            nlde_ops: 2,
        };
        let energy = StageEnergy {
            vtc_pj: 1.5,
            ..StageEnergy::default()
        };
        slo.observe("t", Duration::from_millis(1), true, Some((&ops, &energy)));
        slo.observe("t", Duration::from_millis(1), true, Some((&ops, &energy)));
        let text = ta_telemetry::metrics().to_prometheus();
        assert!(
            text.contains("ta_serve_tenant_ops_total{tenant=\"t\"} 84"),
            "{text}"
        );
        assert!(text.contains("ta_serve_tenant_energy_pj_total{tenant=\"t\"} 3"));
    }
}
