//! A transport-neutral connection stream: TCP or Unix domain socket.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// One accepted (or dialled) connection, TCP or UDS.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Clones the underlying socket handle (shared file description), so
    /// a reader thread and a writer thread can work the same connection.
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Sets the read timeout (used as the poll slice for idle/slow-loris
    /// accounting and shutdown responsiveness).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Shuts down both directions; unblocks any peer thread in `read`.
    pub fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}
