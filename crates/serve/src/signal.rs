//! Minimal SIGTERM/SIGINT latching without a libc dependency.
//!
//! The handler only sets a static atomic flag — the single
//! async-signal-safe operation we need — and the accept loop polls it.
//! This is the one module in the crate that needs `unsafe`: registering
//! the handler through the C `signal` entry point.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod ffi {
    unsafe extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

extern "C" fn on_term(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT latch. Idempotent; later installs simply
/// re-register the same handler.
#[allow(unsafe_code)]
pub fn install_term_handler() {
    // SAFETY: `on_term` only performs an atomic store, which is
    // async-signal-safe; the handler address is a valid
    // `extern "C" fn(i32)` for the lifetime of the program.
    unsafe {
        ffi::signal(SIGTERM, on_term as *const () as usize);
        ffi::signal(SIGINT, on_term as *const () as usize);
    }
}

/// True once SIGTERM/SIGINT has been received (sticky).
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Test hook: force or clear the latch as if a signal had (not) arrived.
pub fn set_term_requested(v: bool) {
    TERM_REQUESTED.store(v, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_is_sticky_and_settable() {
        set_term_requested(false);
        assert!(!term_requested());
        set_term_requested(true);
        assert!(term_requested());
        assert!(term_requested());
        set_term_requested(false);
    }
}
