//! Per-connection rolling plan cache.
//!
//! Compiling an `Architecture` (delay tables, NLSE/NLDE series, the
//! `FramePlan`) costs orders of magnitude more than running one frame
//! through it, so a streaming client that alternates between a handful of
//! specs must not recompile per request. Each connection keeps a small
//! LRU of [`CompiledArch`] keyed by [`crate::wire::ArchSpec::arch_hash`]
//! (which folds in frame geometry, so a resized stream misses cleanly
//! instead of running a stale plan).

use std::collections::VecDeque;
use std::sync::Arc;

use crate::spec::{CompiledArch, SpecError};
use crate::wire::ArchSpec;

/// A rolling least-recently-used cache of compiled plans.
pub struct PlanCache {
    capacity: usize,
    /// Most-recently-used at the back.
    entries: VecDeque<Arc<CompiledArch>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` compiled plans
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the compiled plan for `spec` at `width`×`height`, compiling
    /// (and possibly evicting the least-recently-used entry) on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] from compilation; a failed compile is not
    /// cached.
    pub fn get(
        &mut self,
        spec: &ArchSpec,
        width: u32,
        height: u32,
    ) -> Result<Arc<CompiledArch>, SpecError> {
        let hash = spec.arch_hash(width, height);
        if let Some(pos) = self.entries.iter().position(|e| e.hash == hash) {
            self.hits += 1;
            // Refresh recency: move to the back.
            if let Some(entry) = self.entries.remove(pos) {
                self.entries.push_back(entry.clone());
                return Ok(entry);
            }
        }
        self.misses += 1;
        let compiled = Arc::new(CompiledArch::compile(spec, width, height)?);
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evictions += 1;
        }
        self.entries.push_back(compiled.clone());
        Ok(compiled)
    }

    /// Plans currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hits, misses, evictions) for this cache.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::wire::MODE_EXACT;

    fn spec(kernel: &str) -> ArchSpec {
        ArchSpec {
            kernel: kernel.into(),
            mode: MODE_EXACT,
            unit_ns: 1.0,
            nlse_terms: 7,
            nlde_terms: 20,
            fault_rate: 0.0,
        }
    }

    #[test]
    fn hit_returns_the_same_plan() {
        let mut cache = PlanCache::new(2);
        let a = cache.get(&spec("box3"), 8, 8).unwrap();
        let b = cache.get(&spec("box3"), 8, 8).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1, 0));
    }

    #[test]
    fn geometry_is_part_of_the_key() {
        let mut cache = PlanCache::new(4);
        let a = cache.get(&spec("box3"), 8, 8).unwrap();
        let b = cache.get(&spec("box3"), 8, 12).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest_plan() {
        let mut cache = PlanCache::new(2);
        cache.get(&spec("box3"), 8, 8).unwrap();
        cache.get(&spec("sharpen"), 8, 8).unwrap();
        // Touch box3 so sharpen is now coldest.
        cache.get(&spec("box3"), 8, 8).unwrap();
        cache.get(&spec("emboss"), 8, 8).unwrap();
        assert_eq!(cache.len(), 2);
        let (_, misses, evictions) = cache.stats();
        assert_eq!((misses, evictions), (3, 1));
        // box3 survived the eviction, sharpen did not.
        cache.get(&spec("box3"), 8, 8).unwrap();
        assert_eq!(cache.stats().0, 2);
        cache.get(&spec("sharpen"), 8, 8).unwrap();
        assert_eq!(cache.stats().1, 4);
    }

    #[test]
    fn failed_compiles_are_not_cached() {
        let mut cache = PlanCache::new(2);
        assert!(cache.get(&spec("nope"), 8, 8).is_err());
        assert!(cache.is_empty());
    }
}
