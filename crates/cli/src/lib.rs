//! Implementation of the `tconv` command-line tool: argument parsing and
//! the subcommand drivers, kept in a library so they can be tested.
//!
//! Subcommands:
//!
//! * `run` — convolve a PGM image through the delay-space engine;
//! * `describe` — print a compiled architecture's structure and costs;
//! * `explore` — sweep term counts / unit scales and print the Pareto set;
//! * `kernels` — list the built-in kernels.
//!
//! No third-party argument parser: flags are simple `--key value` pairs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use ta_circuits::UnitScale;
use ta_core::{exec, ArchConfig, Architecture, ArithmeticMode, SystemDescription};
use ta_image::{conv, metrics, pgm, synth, Image, Kernel};

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for CliError {}

impl CliError {
    // Deliberately returns the boxed trait object every call site wants.
    #[allow(clippy::new_ret_no_self)]
    fn new(msg: impl Into<String>) -> Box<dyn Error> {
        Box::new(CliError(msg.into()))
    }
}

/// Usage text.
pub const USAGE: &str = "\
tconv — delay-space convolution engine (temporal arithmetic, ASPLOS'24)

USAGE:
  tconv run --input in.pgm --kernel sobel [--output out.pgm] [options]
  tconv run --demo [--kernel gauss] [options]      (synthetic input)
  tconv describe --kernel sobel [--size 150] [options]
  tconv explore [--kernel sobel] [--size 72] [options]
  tconv kernels

OPTIONS (run/describe/explore):
  --kernel NAME     sobel | pyrdown | gauss | laplacian | sharpen | emboss | box3
  --unit NS         unit scale in ns per delay unit        [default: 1]
  --nlse N          number of nLSE max-terms               [default: 7]
  --nlde N          number of nLDE inhibit-terms           [default: 20]
  --mode MODE       importance | exact | approx | noisy    [default: noisy]
  --seed N          noise seed                             [default: 0]
  --size N          frame edge for --demo/describe/explore [default: 96]
";

/// Parsed `--key value` flags plus the subcommand.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand word.
    pub command: String,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error for a dangling `--flag` with no value when the
    /// flag is not a known switch.
    pub fn parse(raw: &[String]) -> Result<Args, Box<dyn Error>> {
        let mut args = Args {
            command: raw.first().cloned().unwrap_or_default(),
            ..Args::default()
        };
        let switches = ["--demo", "--help"];
        let mut i = 1;
        while i < raw.len() {
            let key = &raw[i];
            if !key.starts_with("--") {
                return Err(CliError::new(format!("unexpected argument {key:?}")));
            }
            if switches.contains(&key.as_str()) {
                args.switches.push(key.clone());
                i += 1;
            } else if i + 1 < raw.len() {
                args.flags.push((key.clone(), raw[i + 1].clone()));
                i += 2;
            } else {
                return Err(CliError::new(format!("flag {key} needs a value")));
            }
        }
        Ok(args)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, Box<dyn Error>> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("{key} expects a number, got {v:?}"))),
        }
    }
}

/// Resolves a kernel-set name.
///
/// # Errors
///
/// Returns an error listing the valid names for an unknown one.
pub fn kernel_set(name: &str) -> Result<(Vec<Kernel>, usize), Box<dyn Error>> {
    Ok(match name {
        "sobel" => (vec![Kernel::sobel_x(), Kernel::sobel_y()], 1),
        "pyrdown" => (vec![Kernel::pyr_down_5x5()], 2),
        "gauss" => (vec![Kernel::gaussian(7, 0.0)], 1),
        "laplacian" => (vec![Kernel::laplacian()], 1),
        "sharpen" => (vec![Kernel::sharpen()], 1),
        "emboss" => (vec![Kernel::emboss()], 1),
        "box3" => (vec![Kernel::box_filter(3)], 1),
        other => {
            return Err(CliError::new(format!(
                "unknown kernel {other:?}; try: sobel pyrdown gauss laplacian sharpen emboss box3"
            )))
        }
    })
}

fn mode_of(name: &str) -> Result<ArithmeticMode, Box<dyn Error>> {
    Ok(match name {
        "importance" => ArithmeticMode::ImportanceExact,
        "exact" => ArithmeticMode::DelayExact,
        "approx" => ArithmeticMode::DelayApprox,
        "noisy" => ArithmeticMode::DelayApproxNoisy,
        other => {
            return Err(CliError::new(format!(
                "unknown mode {other:?}; try: importance exact approx noisy"
            )))
        }
    })
}

fn config_of(args: &Args) -> Result<ArchConfig, Box<dyn Error>> {
    let unit: f64 = args.num("--unit", 1.0)?;
    let nlse: usize = args.num("--nlse", 7)?;
    let nlde: usize = args.num("--nlde", 20)?;
    if unit <= 0.0 || nlse == 0 || nlde == 0 {
        return Err(CliError::new("--unit/--nlse/--nlde must be positive"));
    }
    Ok(ArchConfig::new(UnitScale::new(unit, 50.0), nlse, nlde))
}

/// Entry point shared by the binary and the tests: runs a parsed command
/// and returns the text to print.
///
/// # Errors
///
/// Returns a user-facing error for bad arguments or I/O failures.
pub fn dispatch(args: &Args) -> Result<String, Box<dyn Error>> {
    if args.has("--help") || args.command.is_empty() || args.command == "help" {
        return Ok(USAGE.to_string());
    }
    match args.command.as_str() {
        "run" => cmd_run(args),
        "describe" => cmd_describe(args),
        "explore" => cmd_explore(args),
        "kernels" => Ok(cmd_kernels()),
        other => Err(CliError::new(format!(
            "unknown command {other:?} — try `tconv help`"
        ))),
    }
}

fn cmd_run(args: &Args) -> Result<String, Box<dyn Error>> {
    let (kernels, stride) = kernel_set(args.get("--kernel").unwrap_or("sobel"))?;
    let image = if args.has("--demo") {
        let size: usize = args.num("--size", 96)?;
        synth::natural_image(size, size, args.num("--seed", 0u64)?)
    } else {
        let path = args
            .get("--input")
            .ok_or_else(|| CliError::new("run needs --input in.pgm (or --demo)"))?;
        pgm::load_pgm(path)?
    };
    let mode = mode_of(args.get("--mode").unwrap_or("noisy"))?;
    let cfg = config_of(args)?;
    let desc = SystemDescription::new(image.width(), image.height(), kernels.clone(), stride)?;
    let arch = Architecture::new(desc, cfg)?;
    let run = exec::run(&arch, &image, mode, args.num("--seed", 0u64)?)?;

    let mut out = format!(
        "{} on {}×{} ({} mode)\n",
        kernels[0].name(),
        image.width(),
        image.height(),
        mode
    );
    // The engine's VTC saturates pixels below its dynamic-range floor, so
    // the software reference must see the same clipped frame (otherwise an
    // exact run over an image containing true zeros would report phantom
    // error). The importance mode bypasses the VTC and keeps raw pixels.
    let reference_image = if mode == ArithmeticMode::ImportanceExact {
        image.clone()
    } else {
        // Derive the floor from the compiled VTC rather than repeating its
        // constant: max_delay_units = -ln(min_pixel).
        let floor = (-arch.vtc().max_delay_units()).exp();
        image.map(|p| p.clamp(0.0, 1.0).max(floor))
    };
    for (k, o) in kernels.iter().zip(&run.outputs) {
        let reference = conv::convolve(&reference_image, k, stride);
        out.push_str(&format!(
            "  {:<10} {}×{}  nrmse vs software: {:.5}\n",
            k.name(),
            o.width(),
            o.height(),
            metrics::normalized_rmse(o, &reference)
        ));
    }
    out.push_str(&format!("  energy: {}\n  timing: {}\n", run.energy, run.timing));

    if let Some(path) = args.get("--output") {
        // Normalise the first output into [0,1] for the graymap.
        let o = &run.outputs[0];
        let (lo, hi) = o.min_max();
        let span = (hi - lo).max(1e-12);
        let norm = o.map(|p| (p - lo) / span);
        pgm::save_pgm(&norm, path)?;
        out.push_str(&format!("  wrote {path} (first output, range-normalised)\n"));
    }
    Ok(out)
}

fn cmd_describe(args: &Args) -> Result<String, Box<dyn Error>> {
    let (kernels, stride) = kernel_set(args.get("--kernel").unwrap_or("sobel"))?;
    let size: usize = args.num("--size", 150)?;
    let desc = SystemDescription::new(size, size, kernels, stride)?;
    let arch = Architecture::new(desc, config_of(args)?)?;
    Ok(arch.describe())
}

fn cmd_explore(args: &Args) -> Result<String, Box<dyn Error>> {
    use ta_core::dse::{explore, SweepGrid};
    let (kernels, stride) = kernel_set(args.get("--kernel").unwrap_or("sobel"))?;
    let size: usize = args.num("--size", 72)?;
    let desc = SystemDescription::new(size, size, kernels, stride)?;
    let images: Vec<Image> = (0..2)
        .map(|i| synth::natural_image(size, size, args.num("--seed", 0u64).unwrap_or(0) + i))
        .collect();
    let grid = SweepGrid {
        nlse_terms: vec![5, 7, 10, 15],
        nlde_terms: vec![10, 20],
        unit_scales_ns: vec![1.0, 5.0, 10.0],
        element_multiplier: 50.0,
        seed: args.num("--seed", 0u64)?,
    };
    let mut points = explore(&desc, &images, &grid)?;
    points.sort_by(|a, b| a.energy_uj.total_cmp(&b.energy_uj));
    let mut out = format!(
        "{:>9} {:>5} {:>5} {:>12} {:>9}  pareto\n",
        "unit(ns)", "nLSE", "nLDE", "energy(µJ)", "RMSE"
    );
    for p in &points {
        out.push_str(&format!(
            "{:>9.0} {:>5} {:>5} {:>12.2} {:>9.4}  {}\n",
            p.unit_ns,
            p.nlse_terms,
            p.nlde_terms,
            p.energy_uj,
            p.rmse,
            if p.pareto { "*" } else { "" }
        ));
    }
    Ok(out)
}

fn cmd_kernels() -> String {
    let mut out = String::from("built-in kernel sets:\n");
    for name in ["sobel", "pyrdown", "gauss", "laplacian", "sharpen", "emboss", "box3"] {
        let (ks, stride) = kernel_set(name).expect("static names are valid");
        out.push_str(&format!(
            "  {:<10} {}×{}, stride {}, {} filter(s){}\n",
            name,
            ks[0].width(),
            ks[0].height(),
            stride,
            ks.len(),
            if ks.iter().any(|k| k.has_negative_weights()) {
                ", split rails + nLDE"
            } else {
                ""
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Args {
        Args::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&argv(&["help"])).unwrap().contains("USAGE"));
        assert!(dispatch(&argv(&[])).unwrap().contains("USAGE"));
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn kernels_listing() {
        let out = dispatch(&argv(&["kernels"])).unwrap();
        for k in ["sobel", "pyrdown", "gauss", "laplacian"] {
            assert!(out.contains(k));
        }
    }

    #[test]
    fn describe_sobel() {
        let out = dispatch(&argv(&["describe", "--kernel", "sobel", "--size", "32"])).unwrap();
        assert!(out.contains("MAC blocks"));
        assert!(out.contains("nLSE tree"));
    }

    #[test]
    fn run_demo_all_modes() {
        for mode in ["importance", "exact", "approx", "noisy"] {
            let out = dispatch(&argv(&[
                "run", "--demo", "--size", "24", "--kernel", "box3", "--mode", mode,
            ]))
            .unwrap();
            assert!(out.contains("nrmse"), "mode {mode}: {out}");
        }
    }

    #[test]
    fn run_pgm_roundtrip() {
        let dir = std::env::temp_dir();
        let input = dir.join("tconv_test_in.pgm");
        let output = dir.join("tconv_test_out.pgm");
        ta_image::pgm::save_pgm(&synth::natural_image(20, 20, 1), &input).unwrap();
        let out = dispatch(&argv(&[
            "run",
            "--input",
            input.to_str().unwrap(),
            "--output",
            output.to_str().unwrap(),
            "--kernel",
            "sharpen",
            "--mode",
            "approx",
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let written = ta_image::pgm::load_pgm(&output).unwrap();
        assert_eq!((written.width(), written.height()), (18, 18));
        std::fs::remove_file(input).ok();
        std::fs::remove_file(output).ok();
    }

    #[test]
    fn bad_flags_error_cleanly() {
        assert!(Args::parse(&["run".into(), "--unit".into()]).is_err());
        assert!(dispatch(&argv(&["run", "--demo", "--kernel", "nope"])).is_err());
        assert!(dispatch(&argv(&["run", "--demo", "--mode", "nope"])).is_err());
        assert!(dispatch(&argv(&["run", "--demo", "--unit", "abc"])).is_err());
        assert!(dispatch(&argv(&["run"])).is_err()); // no input, no demo
    }

    #[test]
    fn explore_quick() {
        let out = dispatch(&argv(&[
            "explore", "--kernel", "box3", "--size", "24",
        ]))
        .unwrap();
        assert!(out.contains("pareto"));
        assert!(out.lines().count() > 10);
    }
}
